//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` implemented
//! directly over `proc_macro::TokenStream` (no syn/quote available
//! offline). Supports exactly the shapes this repository derives on:
//! non-generic named-field structs and unit-variant enums. Anything else
//! fails the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the JSON-emitting stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including expanded doc comments) and
    // visibility preceding the item keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) stand-in does not support generics (on `{name}`)");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("derive(Serialize): expected braced body for `{name}`, got {other:?}"),
    };

    let code = match kind.as_str() {
        "struct" => derive_struct(&name, body),
        "enum" => derive_enum(&name, body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    code.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Extracts the field names of a named-field struct body.
fn struct_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip per-field attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize): expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive(Serialize): expected `:` after `{fname}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level comma. Angle brackets
        // don't nest as groups in TokenStream, so track their depth.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

fn derive_struct(name: &str, body: TokenStream) -> String {
    let fields = struct_field_names(body);
    let mut emit = String::new();
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            emit.push_str("out.push(',');\n");
        }
        emit.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n\
             ::serde::Serialize::serialize_json(&self.{f}, out);\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 out.push('{{');\n\
                 {emit}\
                 out.push('}}');\n\
             }}\n\
         }}"
    )
}

/// Extracts the variant names of a unit-variant enum body.
fn enum_variant_names(name: &str, body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "derive(Serialize) stand-in supports only unit variants \
                         (enum `{name}`), got {other:?}"
                    ),
                }
            }
            other => panic!("derive(Serialize): unexpected token in enum `{name}`: {other:?}"),
        }
    }
    variants
}

fn derive_enum(name: &str, body: TokenStream) -> String {
    let variants = enum_variant_names(name, body);
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}"
    )
}
