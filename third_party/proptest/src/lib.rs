//! Offline stand-in for `proptest`: deterministic random-input test
//! harness with the strategy combinators this repository uses. Two
//! deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   test's deterministic seed instead of a minimized input.
//! * Strategies are plain generators (`generate(&mut TestRng)`), not
//!   value trees.
//!
//! Case generation is deterministic per test name, so failures reproduce
//! exactly across runs.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
        }
    }

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: mostly `Some`, occasionally `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
///
/// Plain `assert!` underneath: the runner catches the panic and reports
/// the failing case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
    )*};
}
