//! Strategies: deterministic value generators plus the combinators the
//! repository uses (`prop_map`, `prop_filter`, tuples, ranges, regex-ish
//! string patterns, weighted unions).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`; `whence` names the predicate in
    /// the panic raised if too many candidates are rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (a plain boxed trait object here; the real
/// crate wraps it in a struct).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among type-erased strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof!: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a default ("arbitrary") strategy, used via [`any`].
pub trait ArbitraryValue: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge cases in: zero, extremes, small values.
                match rng.next_u64() % 16 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    4 => rng.next_u64() as $t % 16 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: covers huge/tiny magnitudes, negative
        // zero, infinities, and NaN — like the real crate's any::<f64>().
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -1.5,
            2 => (rng.next_u64() % 1_000_000) as f64 / 128.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The default strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

// ---------------------------------------------------------------------
// Regex-ish string strategies: `"[a-c]{0,2}"`, `".*"`, `".{0,32}"`, ...
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char (mostly printable ASCII, occasionally wider).
    AnyChar,
    /// `[a-z0-9]` — one of an explicit set.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "string strategy: unterminated class in {pattern:?}"
                );
                i += 1; // skip ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(
                    i < chars.len(),
                    "string strategy: trailing backslash in {pattern:?}"
                );
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("string strategy: unterminated {{}} in {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "string strategy: bad quantifier in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_any_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        // Mostly printable ASCII...
        0..=5 => (0x20 + (rng.next_u64() % 0x5f) as u32) as u8 as char,
        // ...some control/NUL bytes to stress encoders...
        6 => (rng.next_u64() % 0x20) as u8 as char,
        // ...and some arbitrary non-surrogate unicode scalars.
        _ => loop {
            let v = (rng.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(v) {
                break c;
            }
        },
    }
}

fn gen_class_char(rng: &mut TestRng, ranges: &[(char, char)]) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
        .sum();
    let mut pick = rng.next_u64() % total.max(1);
    for &(lo, hi) in ranges {
        let span = (hi as u64) - (lo as u64) + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).expect("class char");
        }
        pick -= span;
    }
    unreachable!("class pick out of range")
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + (rng.next_u64() as usize) % (piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::AnyChar => out.push(gen_any_char(rng)),
                    Atom::Class(ranges) => out.push(gen_class_char(rng, ranges)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..500 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seed(2);
        for _ in 0..200 {
            let s = "[a-c]{0,2}".generate(&mut rng);
            assert!(
                s.len() <= 2 && s.chars().all(|c| ('a'..='c').contains(&c)),
                "{s:?}"
            );
            let t = "[a-z0-9]{0,12}".generate(&mut rng);
            assert!(
                t.len() <= 12
                    && t.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            );
            let u = ".{0,32}".generate(&mut rng);
            assert!(u.chars().count() <= 32);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::seed(3);
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let twos = (0..1000).filter(|_| u.generate(&mut rng) == 2).count();
        assert!((50..200).contains(&twos), "twos={twos}");
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = TestRng::seed(4);
        let s = any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(|f| f.abs());
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
