//! The case runner: deterministic per-test rng and the config struct.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic rng driving strategy generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng([u64; 4]);

impl TestRng {
    /// Builds an rng from a 64-bit seed via splitmix64.
    pub fn seed(seed: u64) -> TestRng {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng([next(), next(), next(), next()])
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.0;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }
}

/// Runner configuration. Only the fields this repository names exist;
/// `max_shrink_iters` is accepted for source compatibility but unused
/// (this stand-in does not shrink).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Ignored: shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Seeds are derived from the test name so each test gets a stable,
/// independent stream (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `config.cases` deterministic cases of `body`. On panic, reports
/// the failing case number and seed, then propagates the panic so the
/// test fails with the original message.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    let base = name_seed(name);
    for case in 0..config.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest stand-in: test `{name}` failed at case {case}/{} (seed {seed:#x}); \
                 no shrinking — rerun reproduces deterministically",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::seed(name_seed("t"));
        let mut b = TestRng::seed(name_seed("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "count", |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_failure() {
        run_cases(&ProptestConfig::with_cases(5), "fail", |rng| {
            if rng.next_u64() % 2 < 2 {
                panic!("boom");
            }
        });
    }
}
