//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's poison-free API. A poisoned std lock
//! (panicking thread while holding the guard) is recovered transparently,
//! matching parking_lot semantics.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutex with parking_lot's infallible `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poisoning
        assert_eq!(*m.lock(), 1);
    }
}
