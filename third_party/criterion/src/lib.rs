//! Offline stand-in for `criterion`: the `criterion_group!` /
//! `criterion_main!` macro surface plus `Bencher::{iter, iter_batched}`,
//! benchmark groups, and throughput annotation. It times a warmed-up loop
//! and prints a mean ns/iter (plus derived throughput) — no statistical
//! analysis, no HTML reports.
//!
//! Under `cargo test` (or with `--test` in the args) every benchmark runs
//! exactly one iteration, so bench targets double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for source compatibility
/// (this stand-in times each routine call individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work-per-iteration annotation; turns mean time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    mean_ns: f64,
}

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);

impl Bencher {
    /// Times `f` in a loop and records the mean ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.mean_ns = 0.0;
            return;
        }
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let iters = ((MEASURE.as_nanos() as f64 / est_ns) as u64).clamp(1, 50_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.mean_ns = 0.0;
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while total < MEASURE && wall.elapsed() < WARMUP + MEASURE * 4 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`cargo bench -- <filter>`).
    pub fn from_args() -> Criterion {
        let mut filter = None;
        let mut test_mode = cfg!(test);
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {} // ignore harness flags
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }

    fn runs(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.into();
        if self.runs(&id) {
            let mut b = Bencher {
                test_mode: self.test_mode,
                mean_ns: 0.0,
            };
            f(&mut b);
            report(&id, b.mean_ns, None, self.test_mode);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Prints the closing line (the real crate writes a summary here).
    pub fn final_summary(&mut self) {
        if !self.test_mode {
            println!("benchmarks complete (criterion stand-in: mean-only timing)");
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        if self.criterion.runs(&id) {
            let mut b = Bencher {
                test_mode: self.criterion.test_mode,
                mean_ns: 0.0,
            };
            f(&mut b);
            report(&id, b.mean_ns, self.throughput, self.criterion.test_mode);
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn report(id: &str, mean_ns: f64, throughput: Option<Throughput>, test_mode: bool) {
    if test_mode {
        println!("bench {id:<48} ok (test mode, 1 iter)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            format!("  {mibs:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (mean_ns / 1e9);
            format!("  {eps:>10.0} elem/s")
        }
        None => String::new(),
    };
    println!("bench {id:<48} {mean_ns:>14.1} ns/iter{rate}");
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("t", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_and_batched_run_in_test_mode() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut g = c.benchmark_group("g");
        let mut n = 0;
        g.throughput(Throughput::Bytes(64))
            .bench_function("b", |b| {
                b.iter_batched(|| 1, |x| n += x, BatchSize::SmallInput)
            });
        g.finish();
        assert_eq!(n, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("yes".into()),
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("no", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes/sub", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
