//! Offline stand-in for `serde_json`: `to_string` and `to_string_pretty`
//! over the JSON-emitting `serde::Serialize` stand-in trait. The pretty
//! printer re-formats the compact encoding with two-space indentation,
//! matching serde_json's layout.

use std::fmt;

/// Serialization error. The stand-in trait is infallible, so this is
/// never constructed; it exists so call sites can keep their `?`/`expect`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents compact JSON. Assumes valid input (which `to_string`
/// guarantees); strings and escapes are passed through untouched.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                let mut escaped = false;
                for s in chars.by_ref() {
                    out.push(s);
                    if escaped {
                        escaped = false;
                    } else if s == '\\' {
                        escaped = true;
                    } else if s == '"' {
                        break;
                    }
                }
            }
            '{' | '[' => {
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(c);
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    out.push(c);
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(',');
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: f64,
        label: String,
    }

    impl serde::Serialize for Point {
        fn serialize_json(&self, out: &mut String) {
            out.push('{');
            out.push_str("\"x\":");
            self.x.serialize_json(out);
            out.push(',');
            out.push_str("\"label\":");
            self.label.serialize_json(out);
            out.push('}');
        }
    }

    #[test]
    fn compact() {
        let p = Point {
            x: 1.5,
            label: "a,b:{c}".into(),
        };
        assert_eq!(to_string(&p).unwrap(), r#"{"x":1.5,"label":"a,b:{c}"}"#);
    }

    #[test]
    fn pretty() {
        let p = Point {
            x: 2.0,
            label: "hi".into(),
        };
        let expected = "{\n  \"x\": 2.0,\n  \"label\": \"hi\"\n}";
        assert_eq!(to_string_pretty(&p).unwrap(), expected);
    }

    #[test]
    fn pretty_empty_containers() {
        assert_eq!(prettify("[]"), "[]");
        assert_eq!(
            prettify(r#"{"a":[],"b":[1,2]}"#),
            "{\n  \"a\": [],\n  \"b\": [\n    1,\n    2\n  ]\n}"
        );
    }
}
