//! Offline stand-in for `rand` 0.8: the `Rng`/`SeedableRng` traits plus
//! `SmallRng` (xorshift64*) and `StdRng` (splitmix64). Implements exactly
//! the surface this repository uses: `gen`, `gen_range` over integer and
//! float ranges, and `gen_bool`. Not cryptographic; statistically fine for
//! workload generation and tests.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of rngs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an rng deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds an rng from OS-provided entropy (here: the system clock).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named rng types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast rng (xoshiro256** here).
    #[derive(Debug, Clone)]
    pub struct SmallRng([u64; 4]);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            SmallRng([
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ])
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = &mut self.0;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }

    /// The default "strong" rng (here the same family, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: i64 = a.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f64 = a.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
