//! Offline stand-in for `serde`: a serialize-only trait whose implementors
//! append compact JSON to a `String`. `serde_json` (the sibling stand-in)
//! layers `to_string` / `to_string_pretty` on top. The `derive` feature
//! re-exports a hand-rolled `#[derive(Serialize)]` for plain named-field
//! structs and unit enums — the only shapes this repository serializes.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A value that can append its compact-JSON encoding to `out`.
///
/// The real serde is format-agnostic; this stand-in is JSON-only because
/// the repository only ever serializes through `serde_json`.
pub trait Serialize {
    /// Appends this value's compact JSON to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Escapes and appends `s` as a JSON string literal.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // serde_json rejects these; null keeps us total
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // serde_json always renders floats with a decimal point or exponent.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(out, *self);
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(out, *self as f64);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(3u32), "3");
        assert_eq!(json(-4i64), "-4");
        assert_eq!(json(true), "true");
        assert_eq!(json(1.5f64), "1.5");
        assert_eq!(json(2.0f64), "2.0");
        assert_eq!(json(f64::NAN), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    fn collections() {
        assert_eq!(json(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(Option::<u32>::None), "null");
        assert_eq!(json((1.0f64, "x")), r#"[1.0,"x"]"#);
        assert_eq!(json(vec![(1.0f64, 2.0f64)]), "[[1.0,2.0]]");
    }
}
