//! A SQL shell for a local LittleTable directory.
//!
//! ```text
//! ltsql --data DIR [-e STATEMENT]...
//! echo "SHOW TABLES" | ltsql --data DIR
//! ```

use littletable::{Db, Options, Session, SqlOutput};
use std::io::BufRead;

fn print_output(out: SqlOutput) {
    match out {
        SqlOutput::Done => println!("ok"),
        SqlOutput::Count(n) => println!("{n} rows"),
        SqlOutput::Rows { columns, rows } => {
            println!("{}", columns.join(" | "));
            for row in &rows {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            println!("({} rows)", rows.len());
        }
    }
}

fn main() {
    let mut data = "./littletable-data".to_string();
    let mut statements: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data" => data = args.next().expect("--data needs a directory"),
            "-e" => statements.push(args.next().expect("-e needs a statement")),
            "--help" | "-h" => {
                eprintln!("usage: ltsql --data DIR [-e STATEMENT]...");
                eprintln!("       (reads statements from stdin when no -e is given)");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    let db = match Db::open_local(&data, Options::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open {data}: {e}");
            std::process::exit(1);
        }
    };
    let session = Session::new(db.clone());
    let run = |sql: &str| {
        let sql = sql.trim();
        if sql.is_empty() {
            return;
        }
        match session.execute(sql) {
            Ok(out) => print_output(out),
            Err(e) => eprintln!("error: {e}"),
        }
    };
    if statements.is_empty() {
        for line in std::io::stdin().lock().lines() {
            match line {
                Ok(l) => run(&l),
                Err(_) => break,
            }
        }
    } else {
        for s in &statements {
            run(s);
        }
    }
    // Politely persist memtables before exit (the engine itself would not).
    let _ = db.flush_all();
}
