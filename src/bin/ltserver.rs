//! The LittleTable server daemon: serves a data directory over TCP.
//!
//! ```text
//! ltserver [--listen ADDR] [--data DIR]
//! ```

use littletable::server::Server;
use littletable::{Db, Options};

fn main() {
    let mut listen = "127.0.0.1:6470".to_string();
    let mut data = "./littletable-data".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().expect("--listen needs an address"),
            "--data" => data = args.next().expect("--data needs a directory"),
            "--help" | "-h" => {
                eprintln!("usage: ltserver [--listen ADDR] [--data DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                std::process::exit(2);
            }
        }
    }
    let opts = Options {
        background: true,
        ..Options::default()
    };
    let db = match Db::open_local(&data, opts) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open {data}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "littletable-server: {} tables in {data}",
        db.list_tables().len()
    );
    let mut server = match Server::bind(db, &listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("listening on {}", server.local_addr());
    server.start().expect("start accept loop");
    // Serve until killed; maintenance runs on the background thread.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
