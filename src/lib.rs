//! # LittleTable
//!
//! A relational database optimized for time-series data, after
//! *"LittleTable: A Time-Series Database and Its Uses"* (Rhea, Wang,
//! Wong, Atkins, Storer — SIGMOD 2017).
//!
//! LittleTable clusters every table in **two dimensions**: rows are
//! partitioned by timestamp into tablets and sorted within each tablet by
//! a hierarchically-delineated primary key, so any rectangle of
//! (key-range × time-range) reads from a mostly contiguous region of
//! disk. It exploits the *single-writer, append-only, recoverable* nature
//! of device telemetry to drop the write-ahead log entirely: the only
//! durability guarantee is prefix durability in insertion order.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`core`] — the storage engine ([`Db`], [`Table`], [`Query`]);
//! * [`sql`] — the SQL front end ([`Session`]);
//! * [`server`] / [`client`] — the TCP boundary;
//! * [`apps`] — the paper's three applications over a simulated fleet;
//! * [`vfs`] — file-system/clock abstractions and the simulated disk;
//! * [`compress`], [`hll`], [`proto`], [`workload`] — supporting crates.
//!
//! ## Quickstart
//!
//! ```
//! use littletable::{Db, Options, Query, Session, SqlOutput};
//! use littletable::vfs::{SimClock, SimVfs};
//! use std::sync::Arc;
//!
//! // An in-memory engine (use Db::open_local for a real directory).
//! let db = Db::open(
//!     Arc::new(SimVfs::instant()),
//!     Arc::new(SimClock::new(1_700_000_000_000_000)),
//!     Options::default(),
//! ).unwrap();
//!
//! let session = Session::new(db);
//! session.execute(
//!     "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, \
//!      bytes INT64, PRIMARY KEY (network, device, ts)) TTL '390d'",
//! ).unwrap();
//! session.execute(
//!     "INSERT INTO usage (network, device, bytes) VALUES (1, 7, 4096)",
//! ).unwrap();
//! let SqlOutput::Rows { rows, .. } = session.execute(
//!     "SELECT SUM(bytes) FROM usage WHERE network = 1",
//! ).unwrap() else { unreachable!() };
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub use littletable_apps as apps;
pub use littletable_client as client;
pub use littletable_compress as compress;
pub use littletable_core as core;
pub use littletable_fleet as fleet;
pub use littletable_hll as hll;
pub use littletable_proto as proto;
pub use littletable_server as server;
pub use littletable_sql as sql;
pub use littletable_vfs as vfs;
pub use littletable_workload as workload;

pub use littletable_core::{
    BlockCache, ColumnDef, ColumnType, Db, DbStatsSnapshot, Error, InsertReport, Options, Query,
    Result, Row, Schema, SchemaRef, Table, Value,
};
pub use littletable_sql::{Session, SqlOutput};
