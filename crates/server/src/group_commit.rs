//! Group commit over per-table write shards: seal/flush/merge work is
//! coalesced across connections, and distinct tables commit on distinct
//! shards.
//!
//! Workers record how many rows each insert landed *and for which
//! table*; the table name hashes to one of a small fixed set of commit
//! shards, each with its own scheduler thread. A shard sleeps until its
//! slice has dirty work, lets a short coalescing window pass (or a row
//! threshold trip), then runs maintenance over just the tables that hash
//! to it. A hundred connections inserting concurrently therefore share
//! one seal/flush cycle per shard instead of racing per-insert — and two
//! hot tables on different shards seal and flush in parallel instead of
//! queueing behind one whole-catalog sweep. The sweep resolves its
//! tables through the Db's lock-free catalog snapshots, so shards never
//! contend with each other (or with query workers) on table resolution.

use littletable_core::db::Db;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Default)]
struct ShardState {
    /// Rows inserted into this shard's tables since its last commit pass.
    dirty_rows: u64,
    /// Set once; the shard's scheduler drains and exits.
    stopped: bool,
}

struct CommitShard {
    state: Mutex<ShardState>,
    cv: Condvar,
    /// Commit passes this shard has run (observability + tests).
    commits: AtomicU64,
}

/// Shared handle between the workers (producers of per-table dirty-row
/// counts) and the commit shard threads (consumers).
pub(crate) struct GroupCommit {
    shards: Vec<CommitShard>,
}

impl GroupCommit {
    /// Builds `shards` commit shards (at least one).
    pub fn new(shards: usize) -> GroupCommit {
        GroupCommit {
            shards: (0..shards.max(1))
                .map(|_| CommitShard {
                    state: Mutex::new(ShardState::default()),
                    cv: Condvar::new(),
                    commits: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of commit shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `table`: a stable hash of the name, so every
    /// insert into a table lands on the same shard and distinct tables
    /// spread across shards.
    pub fn shard_of(&self, table: &str) -> usize {
        let mut h = DefaultHasher::new();
        table.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Commit passes run so far, per shard.
    pub fn commit_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.commits.load(Ordering::Relaxed))
            .collect()
    }

    /// Records `n` freshly inserted rows against `table`'s shard and
    /// nudges that shard's scheduler.
    pub fn note_rows(&self, table: &str, n: u64) {
        if n == 0 {
            return;
        }
        let shard = &self.shards[self.shard_of(table)];
        let mut st = shard.state.lock().unwrap();
        st.dirty_rows += n;
        shard.cv.notify_all();
    }

    /// Asks every shard's scheduler to run one final pass and exit.
    pub fn stop(&self) {
        for shard in &self.shards {
            let mut st = shard.state.lock().unwrap();
            st.stopped = true;
            shard.cv.notify_all();
        }
    }

    /// One shard's committer body; runs on its own thread until [`stop`].
    ///
    /// Each cycle: block until the shard's tables have dirty rows,
    /// coalesce further arrivals for up to `interval` (cut short when
    /// `rows_threshold` accumulates), then run one maintenance pass over
    /// the tables that hash to this shard. Shard 0 also retunes the
    /// adaptive cache split, standing in for the embedded engine's
    /// whole-db maintenance doing so. Errors are retried implicitly by
    /// the next cycle.
    ///
    /// [`stop`]: GroupCommit::stop
    pub fn run_shard(&self, idx: usize, db: &Db, rows_threshold: u64, interval: Duration) {
        let shard = &self.shards[idx];
        loop {
            let mut st = shard.state.lock().unwrap();
            while st.dirty_rows == 0 && !st.stopped {
                st = shard.cv.wait(st).unwrap();
            }
            if st.dirty_rows == 0 && st.stopped {
                return;
            }
            let deadline = Instant::now() + interval;
            while st.dirty_rows < rows_threshold && !st.stopped {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                st = shard.cv.wait_timeout(st, left).unwrap().0;
            }
            st.dirty_rows = 0;
            let stopped = st.stopped;
            drop(st);
            // Sweep this shard's slice of the catalog. `list_tables` and
            // `maintain_table` are lock-free snapshot loads, so a sweep
            // costs nothing on other shards' tables beyond the hash.
            for name in db.list_tables() {
                if self.shard_of(&name) == idx {
                    let _ = db.maintain_table(&name);
                }
            }
            if idx == 0 {
                db.rebalance_cache();
            }
            shard.commits.fetch_add(1, Ordering::Relaxed);
            if stopped {
                return;
            }
        }
    }
}
