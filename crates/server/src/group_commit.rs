//! Group commit: one scheduler coalesces seal/flush/merge work across
//! every connection.
//!
//! Workers record how many rows each insert landed; the committer thread
//! sleeps until there is dirty work, lets a short coalescing window pass
//! (or a row threshold trip), then runs a single maintenance pass over
//! the engine. A hundred connections inserting concurrently therefore
//! share one seal/flush cycle instead of racing per-insert, which is
//! where high-frequency ingest throughput is won.

use littletable_core::db::Db;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Default)]
struct GcState {
    /// Rows inserted since the last commit pass.
    dirty_rows: u64,
    /// Set once; the scheduler drains and exits.
    stopped: bool,
}

/// Shared handle between the workers (producers of dirty-row counts) and
/// the committer thread (consumer).
#[derive(Default)]
pub(crate) struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    /// Records `n` freshly inserted rows and nudges the scheduler.
    pub fn note_rows(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut st = self.state.lock().unwrap();
        st.dirty_rows += n;
        self.cv.notify_all();
    }

    /// Asks the scheduler to run one final pass and exit.
    pub fn stop(&self) {
        let mut st = self.state.lock().unwrap();
        st.stopped = true;
        self.cv.notify_all();
    }

    /// The committer body; runs on its own thread until [`stop`].
    ///
    /// Each cycle: block until rows are dirty, coalesce further arrivals
    /// for up to `interval` (cut short when `rows_threshold` accumulates),
    /// then run one engine maintenance pass covering every table. Errors
    /// are retried implicitly by the next cycle.
    ///
    /// [`stop`]: GroupCommit::stop
    pub fn run(&self, db: &Db, rows_threshold: u64, interval: Duration) {
        loop {
            let mut st = self.state.lock().unwrap();
            while st.dirty_rows == 0 && !st.stopped {
                st = self.cv.wait(st).unwrap();
            }
            if st.dirty_rows == 0 && st.stopped {
                return;
            }
            let deadline = Instant::now() + interval;
            while st.dirty_rows < rows_threshold && !st.stopped {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                st = self.cv.wait_timeout(st, left).unwrap().0;
            }
            st.dirty_rows = 0;
            let stopped = st.stopped;
            drop(st);
            let _ = db.maintain();
            if stopped {
                return;
            }
        }
    }
}
