//! A minimal safe wrapper over `poll(2)` — the readiness primitive of the
//! hand-rolled event loop (no async runtime, no FFI crate; the symbol
//! comes from the libc the Rust standard library already links).

use std::io;
use std::os::unix::io::RawFd;

/// Readable (or a peer hangup made the fd readable-with-EOF).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, only returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Invalid fd.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

#[cfg(target_os = "macos")]
type Nfds = u32;
#[cfg(not(target_os = "macos"))]
type Nfds = std::os::raw::c_ulong;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Blocks until an fd in `fds` is ready or `timeout_ms` elapses (`-1`
/// blocks indefinitely). Retries `EINTR`. Returns the number of ready
/// entries; each entry's `revents` says which events fired.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readiness() {
        let (mut tx, rx) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no events.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        tx.write_all(&[1]).unwrap();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }
}
