//! The nonblocking ingest front end: a readiness loop over a small pool
//! of shared-nothing worker shards.
//!
//! Each worker owns a set of connections outright — their sockets, their
//! incremental frame decoders, and their write buffers — and runs a
//! `poll(2)` loop over them (see [`crate::poll`]; no async runtime). The
//! listener lives in worker 0's poll set, so accepting never busy-polls;
//! accepted connections are dealt round-robin to workers through small
//! inbox queues, with a `UnixStream` wakeup pair per worker so a sleeping
//! poll notices new work (and shutdown) immediately.
//!
//! **Pipelining.** A connection may write any number of request frames
//! before reading responses. Requests on one connection are executed in
//! arrival order and their responses appended to the connection's write
//! buffer in that same order, so response ids per connection are FIFO —
//! the ordering guarantee clients rely on to match acks to in-flight
//! batches.
//!
//! **Backpressure.** Once a connection's unwritten response bytes exceed
//! [`ServerConfig::max_conn_buffer`], the worker stops *reading* from
//! that socket (drops it from the poll read set) until the client drains
//! responses. Kernel TCP buffers then fill and the client's writes
//! block: a slow reader throttles only itself, and server memory per
//! connection stays bounded.
//!
//! **Group commit.** Workers execute inserts against the memtable
//! inline, but sealing and flushing are batched: each insert reports its
//! row count *and table* to the [`crate::group_commit`] scheduler, which
//! hashes the table onto one of [`ServerConfig::commit_shards`] per-table
//! write shards. Each shard coalesces flush/seal/merge work for its
//! tables into single maintenance passes, so batches for distinct tables
//! commit on distinct shards in parallel.

use crate::group_commit::GroupCommit;
use crate::poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::{handle_fleet_request, NodeState};
use littletable_core::db::Db;
use littletable_proto::{
    decode_request_frame, encode_response_frame, request_frame_id, ErrorKind, FrameDecoder,
    Response, MAX_FRAME_LEN,
};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for the ingest front end. The defaults suit tests and small
/// deployments; a paper-scale shard would raise `workers`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Event-loop worker shards. Each owns its connections exclusively.
    pub workers: usize,
    /// Group commit runs as soon as this many rows are dirty, without
    /// waiting out the coalescing interval.
    pub group_commit_rows: u64,
    /// Group-commit coalescing window: dirty rows wait at most this long
    /// before a maintenance pass seals and flushes them.
    pub group_commit_interval_ms: u64,
    /// Per-table write shards for group commit: each table hashes to one
    /// shard, and each shard runs its own committer thread, so distinct
    /// tables' batches seal and flush in parallel.
    pub commit_shards: usize,
    /// Per-connection cap on buffered response bytes before the worker
    /// stops reading that socket (pipelining backpressure).
    pub max_conn_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            group_commit_rows: 4096,
            group_commit_interval_ms: 20,
            commit_shards: 2,
            max_conn_buffer: 1 << 20,
        }
    }
}

/// Worker-shared state: the shutdown flag, the group-commit handle, and
/// one inbox (connection queue + wakeup pipe) per worker.
struct Shared {
    shutdown: AtomicBool,
    group: GroupCommit,
    inboxes: Vec<Inbox>,
    /// Round-robin counter for dealing accepted connections to workers.
    next_conn: AtomicUsize,
}

struct Inbox {
    queue: Mutex<Vec<TcpStream>>,
    /// Write end of the worker's wakeup pair (nonblocking; a full pipe
    /// means a wakeup is already pending, so failed writes are ignored).
    wake_tx: UnixStream,
}

impl Shared {
    fn wake(&self, worker: usize) {
        let _ = (&self.inboxes[worker].wake_tx).write(&[1]);
    }

    fn wake_all(&self) {
        for i in 0..self.inboxes.len() {
            self.wake(i);
        }
    }
}

/// A TCP server wrapping a [`Db`]: nonblocking readiness loop, pipelined
/// request handling, group-committed flushes.
pub struct Server {
    db: Db,
    addr: SocketAddr,
    cfg: ServerConfig,
    node: Arc<NodeState>,
    listener: Option<TcpListener>,
    wake_rxs: Vec<UnixStream>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    committers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with default
    /// configuration, without starting the event loop.
    pub fn bind(db: Db, addr: &str) -> io::Result<Server> {
        Server::bind_with(db, addr, ServerConfig::default())
    }

    /// Binds with explicit [`ServerConfig`], as a standalone primary.
    pub fn bind_with(db: Db, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        Server::bind_as(db, addr, cfg, Arc::new(NodeState::default()))
    }

    /// Binds as a fleet member: the node's role decides which requests
    /// the dispatcher fences (see [`handle_fleet_request`]). The caller
    /// keeps a clone of `node` to promote/demote the server at runtime.
    pub fn bind_as(
        db: Db,
        addr: &str,
        cfg: ServerConfig,
        node: Arc<NodeState>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let mut inboxes = Vec::with_capacity(workers);
        let mut wake_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            inboxes.push(Inbox {
                queue: Mutex::new(Vec::new()),
                wake_tx: tx,
            });
            wake_rxs.push(rx);
        }
        let commit_shards = cfg.commit_shards;
        Ok(Server {
            db,
            addr,
            cfg,
            node,
            listener: Some(listener),
            wake_rxs,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                group: GroupCommit::new(commit_shards),
                inboxes,
                next_conn: AtomicUsize::new(0),
            }),
            workers: Vec::new(),
            committers: Vec::new(),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database this server fronts.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The node's fleet state (role, epoch, shard).
    pub fn node_state(&self) -> &Arc<NodeState> {
        &self.node
    }

    /// Starts the worker shards and the group-commit scheduler.
    pub fn start(&mut self) -> io::Result<()> {
        let listener = self
            .listener
            .take()
            .ok_or_else(|| io::Error::other("server already started"))?;
        listener.set_nonblocking(true)?;
        let mut listener = Some(listener);
        for (idx, wake_rx) in self.wake_rxs.drain(..).enumerate() {
            let worker = Worker {
                idx,
                db: self.db.clone(),
                node: self.node.clone(),
                shared: self.shared.clone(),
                listener: if idx == 0 { listener.take() } else { None },
                wake_rx,
                conns: Vec::new(),
                max_conn_buffer: self.cfg.max_conn_buffer.max(1),
            };
            self.workers.push(
                std::thread::Builder::new()
                    .name(format!("lt-ingest-{idx}"))
                    .spawn(move || worker.run())?,
            );
        }
        let rows = self.cfg.group_commit_rows.max(1);
        let interval = Duration::from_millis(self.cfg.group_commit_interval_ms);
        for idx in 0..self.shared.group.shard_count() {
            let db = self.db.clone();
            let shared = self.shared.clone();
            self.committers.push(
                std::thread::Builder::new()
                    .name(format!("lt-commit-{idx}"))
                    .spawn(move || shared.group.run_shard(idx, &db, rows, interval))?,
            );
        }
        Ok(())
    }

    /// Commit passes run so far by each per-table write shard. A batch
    /// for table `t` always commits on shard `hash(t) % len`, so two
    /// tables on different shards show independent counts.
    pub fn commit_shard_counts(&self) -> Vec<u64> {
        self.shared.group.commit_counts()
    }

    /// The group-commit shard that owns `table` (for tests and
    /// observability: distinct values mean distinct committer threads).
    pub fn commit_shard_of(&self, table: &str) -> usize {
        self.shared.group.shard_of(table)
    }

    /// Stops the event loop: open connections are closed promptly (no
    /// waiting out read timeouts), the group-commit scheduler runs one
    /// final pass, and every thread is joined. Unflushed rows follow the
    /// engine's durability model — call [`Db::flush_all`] first for a
    /// polite shutdown.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.group.stop();
        self.shared.wake_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for h in self.committers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection owned by a worker: socket, partial-frame decoder, and
/// pending response bytes.
struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Encoded-but-unwritten response frames; `out[out_pos..]` is pending.
    out: Vec<u8>,
    out_pos: usize,
    /// The peer half-closed its write side; serve buffered requests,
    /// flush, then close.
    peer_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            peer_closed: false,
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Appends one framed response. False when the response exceeds the
    /// frame limit (the connection can only be dropped).
    fn push_response(&mut self, id: u64, resp: &Response) -> bool {
        let payload = encode_response_frame(id, resp);
        if payload.len() > MAX_FRAME_LEN {
            return false;
        }
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&payload);
        true
    }

    /// Writes pending bytes until the socket would block. True means the
    /// connection is dead.
    fn flush_out(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return true,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 1 << 16 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        false
    }
}

/// What a poll entry refers to.
enum Token {
    Wake,
    Listener,
    Conn(usize),
}

struct Worker {
    idx: usize,
    db: Db,
    node: Arc<NodeState>,
    shared: Arc<Shared>,
    /// Worker 0 owns the listener; the others only serve connections.
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    max_conn_buffer: usize,
}

impl Worker {
    fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                // Dropping `self` closes every connection (and the
                // listener) immediately — no read timeouts to wait out.
                return;
            }
            self.drain_inbox();

            fds.clear();
            tokens.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            tokens.push(Token::Wake);
            if let Some(l) = &self.listener {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                tokens.push(Token::Listener);
            }
            for (i, slot) in self.conns.iter().enumerate() {
                let Some(c) = slot else { continue };
                let mut events = 0i16;
                if !c.peer_closed && c.pending_out() < self.max_conn_buffer {
                    events |= POLLIN;
                }
                if c.pending_out() > 0 {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(c.stream.as_raw_fd(), events));
                    tokens.push(Token::Conn(i));
                }
            }

            // The 500 ms cap is a safety net; wakeup bytes end sleeps
            // early for new connections and shutdown.
            if poll_fds(&mut fds, 500).is_err() {
                continue;
            }
            for (fd, token) in fds.iter().zip(&tokens) {
                if fd.revents == 0 {
                    continue;
                }
                match token {
                    Token::Wake => self.drain_wakeups(),
                    Token::Listener => self.accept_ready(),
                    Token::Conn(i) => self.conn_ready(*i, fd.revents),
                }
            }
        }
    }

    fn drain_wakeups(&mut self) {
        let mut scratch = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut scratch) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_inbox(&mut self) {
        let streams: Vec<TcpStream> =
            std::mem::take(&mut *self.shared.inboxes[self.idx].queue.lock());
        for s in streams {
            self.add_conn(s);
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn = Conn::new(stream);
        match self.conns.iter_mut().find(|slot| slot.is_none()) {
            Some(slot) => *slot = Some(conn),
            None => self.conns.push(Some(conn)),
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    let n = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    let target = n % self.shared.inboxes.len();
                    if target == self.idx {
                        self.add_conn(stream);
                    } else {
                        self.shared.inboxes[target].queue.lock().push(stream);
                        self.shared.wake(target);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, i: usize, revents: i16) {
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        let mut dead = false;
        if revents & POLLNVAL != 0 {
            dead = true;
        }
        if !dead && revents & (POLLIN | POLLHUP | POLLERR) != 0 && !conn.peer_closed {
            dead = read_and_process(
                &self.db,
                &self.node,
                &self.shared.group,
                conn,
                self.max_conn_buffer,
            );
        }
        if !dead {
            dead = conn.flush_out();
        }
        if dead || (conn.peer_closed && conn.pending_out() == 0) {
            self.conns[i] = None;
        }
    }
}

/// Reads until the socket would block (or backpressure engages),
/// executing every complete frame in arrival order. True means the
/// connection is dead.
fn read_and_process(
    db: &Db,
    node: &NodeState,
    group: &GroupCommit,
    conn: &mut Conn,
    max_buffer: usize,
) -> bool {
    loop {
        if conn.pending_out() >= max_buffer {
            break;
        }
        match conn.dec.read_from(&mut conn.stream) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(_) => {
                if process_frames(db, node, group, conn) {
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    process_frames(db, node, group, conn)
}

/// Drains complete frames from the decoder. True means the connection is
/// dead (untrustworthy length prefix or an unsendable response).
fn process_frames(db: &Db, node: &NodeState, group: &GroupCommit, conn: &mut Conn) -> bool {
    loop {
        match conn.dec.next_frame() {
            Ok(Some(payload)) => {
                let (id, resp) = execute(db, node, group, &payload);
                if !conn.push_response(id, &resp) {
                    return true;
                }
            }
            Ok(None) => return false,
            Err(_) => return true,
        }
    }
}

/// Decodes and executes one request frame; malformed bodies become typed
/// error responses carrying the frame's id when it was readable.
fn execute(db: &Db, node: &NodeState, group: &GroupCommit, payload: &[u8]) -> (u64, Response) {
    match decode_request_frame(payload) {
        Ok((id, req)) => {
            // Remember which table an insert lands in before the request
            // is consumed: the row count is credited to that table's
            // commit shard.
            let insert_table = match &req {
                littletable_proto::Request::Insert { table, .. } => Some(table.clone()),
                _ => None,
            };
            let resp = handle_fleet_request(db, node, req);
            if let Response::InsertResult { inserted, .. } = &resp {
                if let Some(table) = &insert_table {
                    group.note_rows(table, *inserted);
                }
            }
            (id, resp)
        }
        Err(e) => (
            request_frame_id(payload).unwrap_or(0),
            Response::Error {
                kind: ErrorKind::Internal,
                message: format!("malformed request: {e}"),
            },
        ),
    }
}
