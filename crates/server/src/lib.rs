//! The LittleTable server: the engine behind a framed TCP protocol.
//!
//! LittleTable runs as an independent server process; clients interact
//! with it over a persistent TCP connection (§3.1). This crate provides
//! both the connection-handling server and [`handle_request`], the pure
//! request dispatcher, which in-process tests and the SQL layer reuse
//! without a socket.

#![warn(missing_docs)]

use littletable_core::db::Db;
use littletable_core::error::Error;
use littletable_core::value::Value;
use littletable_proto::{read_frame, write_frame, ErrorKind, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Executes one request against the engine. This is the entire server
/// semantics; the TCP layer just frames it.
pub fn handle_request(db: &Db, req: Request) -> Response {
    match try_handle(db, req) {
        Ok(resp) => resp,
        Err(e) => Response::Error {
            kind: ErrorKind::of(&e),
            message: e.to_string(),
        },
    }
}

fn try_handle(db: &Db, req: Request) -> littletable_core::Result<Response> {
    Ok(match req {
        Request::Ping => Response::Pong,
        Request::ListTables => Response::Tables {
            names: db.list_tables(),
        },
        Request::GetSchema { table } => {
            let t = db.table(&table)?;
            Response::SchemaInfo {
                schema: (*t.schema()).clone(),
                ttl: t.ttl(),
            }
        }
        Request::CreateTable { table, schema, ttl } => {
            db.create_table(&table, schema, ttl)?;
            Response::Ok
        }
        Request::DropTable { table } => {
            db.drop_table(&table)?;
            Response::Ok
        }
        Request::AddColumn { table, column } => {
            db.table(&table)?.add_column(column)?;
            Response::Ok
        }
        Request::WidenColumn { table, column } => {
            db.table(&table)?.widen_column(&column)?;
            Response::Ok
        }
        Request::SetTtl { table, ttl } => {
            db.table(&table)?.set_ttl(ttl)?;
            Response::Ok
        }
        Request::Insert {
            table,
            mut rows,
            server_sets_ts,
        } => {
            let t = db.table(&table)?;
            if server_sets_ts {
                // §3.1: a client may omit a row's timestamp, in which case
                // the server sets it to the current time.
                let ts_index = t.schema().ts_index();
                let now = t.now();
                for row in &mut rows {
                    if let Some(slot) = row.get_mut(ts_index) {
                        *slot = Value::Timestamp(now);
                    } else {
                        return Err(Error::invalid("row shorter than schema"));
                    }
                }
            }
            let report = t.insert(rows)?;
            Response::InsertResult {
                inserted: report.inserted as u64,
                duplicates: report.duplicates as u64,
            }
        }
        Request::Query { table, query } => {
            let t = db.table(&table)?;
            let mut cur = t.query(&query)?;
            let mut rows = Vec::new();
            while let Some(row) = cur.next_row()? {
                rows.push(row.values);
            }
            Response::Rows {
                rows,
                more_available: cur.more_available(),
            }
        }
        Request::Latest { table, prefix } => {
            let t = db.table(&table)?;
            Response::LatestRow {
                row: t.latest(&prefix)?.map(|r| r.values),
            }
        }
        Request::Stats { table } => {
            let t = db.table(&table)?;
            let s = t.stats().snapshot();
            Response::Stats {
                rows_inserted: s.rows_inserted,
                duplicate_keys: s.duplicate_keys,
                rows_scanned: s.rows_scanned,
                rows_returned: s.rows_returned,
                tablets_flushed: s.tablets_flushed,
                merges: s.merges,
                disk_tablets: t.num_disk_tablets() as u64,
                disk_bytes: t.disk_bytes(),
            }
        }
    })
}

/// A TCP server wrapping a [`Db`].
pub struct Server {
    db: Db,
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) without starting
    /// the accept loop.
    pub fn bind(db: Db, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            db,
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            accept_thread: None,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database this server fronts.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Starts accepting connections on a background thread, one handler
    /// thread per connection (the paper's deployment sees a handful of
    /// long-lived connections per shard, not thousands).
    pub fn start(&mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let listener = self.listener.try_clone()?;
        let db = self.db.clone();
        let shutdown = self.shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("littletable-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let db = db.clone();
                            let shutdown = shutdown.clone();
                            conns.push(
                                std::thread::Builder::new()
                                    .name("littletable-conn".into())
                                    .spawn(move || {
                                        let _ = serve_connection(&db, stream, &shutdown);
                                    })
                                    .expect("spawn connection thread"),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                    conns.retain(|h| !h.is_finished());
                }
                for h in conns {
                    let _ = h.join();
                }
            })?;
        self.accept_thread = Some(handle);
        Ok(())
    }

    /// Stops accepting and waits for the accept loop to finish. Open
    /// connections end when their clients disconnect or their next read
    /// fails.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(db: &Db, mut stream: TcpStream, shutdown: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // client closed cleanly
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => handle_request(db, req),
            Err(e) => Response::Error {
                kind: ErrorKind::Internal,
                message: format!("malformed request: {e}"),
            },
        };
        write_frame(&mut stream, &resp.encode())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::schema::{ColumnDef, Schema};
    use littletable_core::value::ColumnType;
    use littletable_core::{Options, Query};
    use littletable_vfs::{SimClock, SimVfs};

    fn test_db() -> Db {
        Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            Options::small_for_tests(),
        )
        .unwrap()
    }

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn dispatcher_full_flow() {
        let db = test_db();
        // Create.
        let resp = handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        assert_eq!(resp, Response::Ok);
        // Duplicate create fails with the right kind.
        match handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        ) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TableExists),
            r => panic!("unexpected {r:?}"),
        }
        // Insert with explicit timestamps.
        let resp = handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Value::I64(1), Value::Timestamp(100), Value::I64(10)],
                    vec![Value::I64(2), Value::Timestamp(200), Value::I64(20)],
                ],
                server_sets_ts: false,
            },
        );
        assert_eq!(
            resp,
            Response::InsertResult {
                inserted: 2,
                duplicates: 0
            }
        );
        // Insert with a server-stamped timestamp.
        let resp = handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![vec![Value::I64(3), Value::Timestamp(0), Value::I64(30)]],
                server_sets_ts: true,
            },
        );
        assert!(matches!(resp, Response::InsertResult { inserted: 1, .. }));
        // Query everything.
        match handle_request(
            &db,
            Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows {
                rows,
                more_available,
            } => {
                assert_eq!(rows.len(), 3);
                assert!(!more_available);
                // The stamped row carries the engine clock's time.
                assert_eq!(rows[2][1], Value::Timestamp(1_700_000_000_000_000));
            }
            r => panic!("unexpected {r:?}"),
        }
        // Latest for prefix.
        match handle_request(
            &db,
            Request::Latest {
                table: "t".into(),
                prefix: vec![Value::I64(1)],
            },
        ) {
            Response::LatestRow { row: Some(row) } => assert_eq!(row[2], Value::I64(10)),
            r => panic!("unexpected {r:?}"),
        }
        // Schema info.
        match handle_request(&db, Request::GetSchema { table: "t".into() }) {
            Response::SchemaInfo { schema: s, ttl } => {
                assert_eq!(s.num_columns(), 3);
                assert_eq!(ttl, None);
            }
            r => panic!("unexpected {r:?}"),
        }
        // List and drop.
        assert_eq!(
            handle_request(&db, Request::ListTables),
            Response::Tables {
                names: vec!["t".into()]
            }
        );
        assert_eq!(
            handle_request(&db, Request::DropTable { table: "t".into() }),
            Response::Ok
        );
        match handle_request(&db, Request::GetSchema { table: "t".into() }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NoSuchTable),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn malformed_frames_get_error_responses_and_connection_survives() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Garbage payload: server answers with an Error frame.
        littletable_proto::write_frame(&mut stream, &[0xFF, 0x00, 0x13, 0x37]).unwrap();
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        let payload = littletable_proto::read_frame(&mut reader).unwrap().unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Internal),
            r => panic!("unexpected {r:?}"),
        }
        // The connection still works afterwards.
        littletable_proto::write_frame(&mut stream, &Request::Ping.encode()).unwrap();
        let payload = littletable_proto::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), Response::Pong);
        server.shutdown();
    }

    #[test]
    fn stats_reflect_activity() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Value::I64(1), Value::Timestamp(1), Value::I64(1)],
                    vec![Value::I64(1), Value::Timestamp(1), Value::I64(1)], // dup
                ],
                server_sets_ts: false,
            },
        );
        match handle_request(&db, Request::Stats { table: "t".into() }) {
            Response::Stats {
                rows_inserted,
                duplicate_keys,
                ..
            } => {
                assert_eq!(rows_inserted, 1);
                assert_eq!(duplicate_keys, 1);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn tcp_round_trip() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let send = |stream: &mut TcpStream, req: &Request| -> Response {
            write_frame(stream, &req.encode()).unwrap();
            let mut reader = io::BufReader::new(stream.try_clone().unwrap());
            let payload = read_frame(&mut reader).unwrap().unwrap();
            Response::decode(&payload).unwrap()
        };
        assert_eq!(send(&mut stream, &Request::Ping), Response::Pong);
        assert_eq!(
            send(
                &mut stream,
                &Request::CreateTable {
                    table: "t".into(),
                    schema: schema(),
                    ttl: None,
                }
            ),
            Response::Ok
        );
        assert!(matches!(
            send(
                &mut stream,
                &Request::Insert {
                    table: "t".into(),
                    rows: vec![vec![Value::I64(1), Value::Timestamp(5), Value::I64(50)]],
                    server_sets_ts: false,
                }
            ),
            Response::InsertResult { inserted: 1, .. }
        ));
        match send(
            &mut stream,
            &Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            r => panic!("unexpected {r:?}"),
        }
        drop(stream);
        server.shutdown();
    }
}
