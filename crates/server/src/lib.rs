//! The LittleTable server: the engine behind a framed TCP protocol.
//!
//! LittleTable runs as an independent server process; clients interact
//! with it over a persistent TCP connection (§3.1). This crate provides
//! [`handle_request`], the pure request dispatcher (which in-process
//! tests and the SQL layer reuse without a socket), and [`Server`], a
//! nonblocking readiness-loop ingest front end: a small pool of
//! shared-nothing worker shards polling their own connection sets,
//! pipelined request handling with bounded backpressure, and a
//! group-commit scheduler coalescing flush work across sessions (see
//! [`net`] for the full design).

#![warn(missing_docs)]

mod group_commit;
pub mod net;
mod poll;

pub use net::{Server, ServerConfig};

use littletable_core::db::Db;
use littletable_core::error::Error;
use littletable_core::value::Value;
use littletable_proto::{ErrorKind, Request, Response};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A node's position in the fleet: which shard it serves, its fencing
/// epoch, and whether it is currently the shard's primary or its warm
/// spare. Spares answer reads (possibly stale) but *fence* writes with
/// [`ErrorKind::NotPrimary`] — the invariant that makes failover safe:
/// after a promotion, the demoted/restarted old primary can no longer
/// accept inserts that would silently diverge from the new primary.
///
/// The epoch is bumped on every role change; promotion and demotion are
/// serialized by whatever coordinates the fleet (the failover driver),
/// so the two fields don't need to change atomically together — a
/// request racing a role flip either lands before it (old role, old
/// epoch) or after (new role), both of which the client handles.
#[derive(Debug)]
pub struct NodeState {
    node: u64,
    shard: u32,
    epoch: AtomicU64,
    primary: AtomicBool,
}

impl NodeState {
    /// A standalone/primary node at epoch 0 — the default for servers
    /// outside any fleet, where every request is allowed.
    pub fn primary(node: u64, shard: u32) -> NodeState {
        NodeState {
            node,
            shard,
            epoch: AtomicU64::new(0),
            primary: AtomicBool::new(true),
        }
    }

    /// A warm spare at the given epoch: serves reads, fences writes.
    pub fn spare(node: u64, shard: u32, epoch: u64) -> NodeState {
        NodeState {
            node,
            shard,
            epoch: AtomicU64::new(epoch),
            primary: AtomicBool::new(false),
        }
    }

    /// Stable node id within the fleet.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The shard this node serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// True when this node is its shard's primary.
    pub fn is_primary(&self) -> bool {
        self.primary.load(Ordering::SeqCst)
    }

    /// Promotes the node to primary at `epoch` (a failover).
    pub fn promote(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        self.primary.store(true, Ordering::SeqCst);
    }

    /// Demotes the node to spare at `epoch` (fencing an old primary).
    pub fn demote(&self, epoch: u64) {
        self.primary.store(false, Ordering::SeqCst);
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    /// The node's answer to [`Request::NodeStatus`].
    pub fn status(&self) -> Response {
        Response::NodeStatus {
            node: self.node,
            shard: self.shard,
            epoch: self.epoch(),
            primary: self.is_primary(),
        }
    }
}

impl Default for NodeState {
    fn default() -> NodeState {
        NodeState::primary(0, 0)
    }
}

/// True for requests that mutate the database and therefore must be
/// fenced on non-primary nodes. Reads are deliberately allowed on
/// spares — a warm spare is only as stale as the last archive pass, and
/// serving (possibly stale) reads from it matches the paper's relaxed
/// consistency stance (§2.2).
fn is_write(req: &Request) -> bool {
    matches!(
        req,
        Request::Insert { .. }
            | Request::CreateTable { .. }
            | Request::DropTable { .. }
            | Request::AddColumn { .. }
            | Request::WidenColumn { .. }
            | Request::SetTtl { .. }
            | Request::CreateRollup { .. }
            | Request::DropRollup { .. }
    )
}

/// Executes one request against the engine. This is the entire server
/// semantics; the TCP layer just frames it.
pub fn handle_request(db: &Db, req: Request) -> Response {
    match try_handle(db, req) {
        Ok(resp) => resp,
        Err(e) => Response::Error {
            kind: ErrorKind::of(&e),
            message: e.to_string(),
        },
    }
}

/// Fleet-aware dispatch: answers [`Request::NodeStatus`] from `node`,
/// fences writes on non-primary nodes with [`ErrorKind::NotPrimary`],
/// and otherwise delegates to [`handle_request`].
pub fn handle_fleet_request(db: &Db, node: &NodeState, req: Request) -> Response {
    if let Request::NodeStatus = req {
        return node.status();
    }
    if is_write(&req) && !node.is_primary() {
        return Response::Error {
            kind: ErrorKind::NotPrimary,
            message: format!(
                "node {} is a spare for shard {} (epoch {}); writes are fenced",
                node.node(),
                node.shard(),
                node.epoch()
            ),
        };
    }
    handle_request(db, req)
}

fn try_handle(db: &Db, req: Request) -> littletable_core::Result<Response> {
    Ok(match req {
        Request::Ping => Response::Pong,
        Request::ListTables => Response::Tables {
            names: db.list_tables(),
        },
        Request::GetSchema { table } => {
            let t = db.table(&table)?;
            Response::SchemaInfo {
                schema: (*t.schema()).clone(),
                ttl: t.ttl(),
            }
        }
        Request::CreateTable { table, schema, ttl } => {
            db.create_table(&table, schema, ttl)?;
            Response::Ok
        }
        Request::DropTable { table } => {
            db.drop_table(&table)?;
            Response::Ok
        }
        Request::AddColumn { table, column } => {
            db.table(&table)?.add_column(column)?;
            Response::Ok
        }
        Request::WidenColumn { table, column } => {
            db.table(&table)?.widen_column(&column)?;
            Response::Ok
        }
        Request::SetTtl { table, ttl } => {
            db.table(&table)?.set_ttl(ttl)?;
            Response::Ok
        }
        Request::Insert { table, rows } => {
            let t = db.table(&table)?;
            let schema = t.schema();
            let ncols = schema.num_columns();
            let ts_index = schema.ts_index();
            // Validate the whole batch before touching the memtable so a
            // malformed batch rejects atomically instead of half-applying.
            for row in &rows {
                if row.len() != ncols {
                    return Err(Error::invalid(format!(
                        "row has {} values but schema has {} columns",
                        row.len(),
                        ncols
                    )));
                }
                for (i, cell) in row.iter().enumerate() {
                    match cell {
                        // §3.1: only the timestamp may be omitted; the
                        // server stamps it. The engine itself has no NULLs
                        // (§3.5), so any other absent cell is an error.
                        None if i == ts_index => {}
                        None => {
                            return Err(Error::invalid(format!(
                                "null value in non-timestamp column {}",
                                schema.columns()[i].name
                            )))
                        }
                        Some(v) => {
                            if !v.fits(schema.columns()[i].ty) {
                                return Err(Error::invalid(format!(
                                    "type mismatch in column {}",
                                    schema.columns()[i].name
                                )));
                            }
                        }
                    }
                }
            }
            // Stamp only rows that omitted their timestamp; explicit
            // timestamps in the same batch are preserved.
            let now = t.now();
            let rows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|cell| cell.unwrap_or(Value::Timestamp(now)))
                        .collect()
                })
                .collect();
            let report = t.insert(rows)?;
            Response::InsertResult {
                inserted: report.inserted as u64,
                duplicates: report.duplicates as u64,
            }
        }
        Request::Query { table, query } => {
            let t = db.table(&table)?;
            let mut cur = t.query(&query)?;
            let mut rows = Vec::new();
            while let Some(row) = cur.next_row()? {
                rows.push(row.values);
            }
            Response::Rows {
                rows,
                more_available: cur.more_available(),
            }
        }
        Request::Latest { table, prefix } => {
            let t = db.table(&table)?;
            Response::LatestRow {
                row: t.latest(&prefix)?.map(|r| r.values),
            }
        }
        Request::Stats { table } => {
            let t = db.table(&table)?;
            let s = t.stats().snapshot();
            Response::Stats {
                rows_inserted: s.rows_inserted,
                duplicate_keys: s.duplicate_keys,
                rows_scanned: s.rows_scanned,
                rows_returned: s.rows_returned,
                tablets_flushed: s.tablets_flushed,
                merges: s.merges,
                disk_tablets: t.num_disk_tablets() as u64,
                disk_bytes: t.disk_bytes(),
            }
        }
        Request::CreateRollup {
            name,
            base,
            period,
            value_cols,
            distinct_cols,
        } => {
            db.create_rollup(&name, &base, period, value_cols, distinct_cols)?;
            Response::Ok
        }
        Request::DropRollup { name } => {
            db.drop_rollup(&name)?;
            Response::Ok
        }
        // A server outside any fleet answers as a standalone primary;
        // fleet members answer from their real NodeState via
        // [`handle_fleet_request`] before dispatch reaches here.
        Request::NodeStatus => NodeState::default().status(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::schema::{ColumnDef, Schema};
    use littletable_core::value::ColumnType;
    use littletable_core::{Options, Query};
    use littletable_proto::{decode_response_frame, encode_request_frame, read_frame, write_frame};
    use littletable_vfs::{SimClock, SimVfs};
    use std::io::{self, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn test_db() -> Db {
        Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            Options::small_for_tests(),
        )
        .unwrap()
    }

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn some_row(vals: Vec<Value>) -> Vec<Option<Value>> {
        vals.into_iter().map(Some).collect()
    }

    /// Sends one enveloped request and reads one enveloped response.
    fn send(stream: &mut TcpStream, id: u64, req: &Request) -> (u64, Response) {
        write_frame(stream, &encode_request_frame(id, req)).unwrap();
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        let payload = read_frame(&mut reader).unwrap().unwrap();
        decode_response_frame(&payload).unwrap()
    }

    #[test]
    fn dispatcher_full_flow() {
        let db = test_db();
        // Create.
        let resp = handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        assert_eq!(resp, Response::Ok);
        // Duplicate create fails with the right kind.
        match handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        ) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TableExists),
            r => panic!("unexpected {r:?}"),
        }
        // Insert with explicit timestamps.
        let resp = handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    some_row(vec![Value::I64(1), Value::Timestamp(100), Value::I64(10)]),
                    some_row(vec![Value::I64(2), Value::Timestamp(200), Value::I64(20)]),
                ],
            },
        );
        assert_eq!(
            resp,
            Response::InsertResult {
                inserted: 2,
                duplicates: 0
            }
        );
        // Insert with a server-stamped timestamp (omitted ts cell).
        let resp = handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![vec![Some(Value::I64(3)), None, Some(Value::I64(30))]],
            },
        );
        assert!(matches!(resp, Response::InsertResult { inserted: 1, .. }));
        // Query everything.
        match handle_request(
            &db,
            Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows {
                rows,
                more_available,
            } => {
                assert_eq!(rows.len(), 3);
                assert!(!more_available);
                // The stamped row carries the engine clock's time.
                assert_eq!(rows[2][1], Value::Timestamp(1_700_000_000_000_000));
            }
            r => panic!("unexpected {r:?}"),
        }
        // Latest for prefix.
        match handle_request(
            &db,
            Request::Latest {
                table: "t".into(),
                prefix: vec![Value::I64(1)],
            },
        ) {
            Response::LatestRow { row: Some(row) } => assert_eq!(row[2], Value::I64(10)),
            r => panic!("unexpected {r:?}"),
        }
        // Schema info.
        match handle_request(&db, Request::GetSchema { table: "t".into() }) {
            Response::SchemaInfo { schema: s, ttl } => {
                assert_eq!(s.num_columns(), 3);
                assert_eq!(ttl, None);
            }
            r => panic!("unexpected {r:?}"),
        }
        // List and drop.
        assert_eq!(
            handle_request(&db, Request::ListTables),
            Response::Tables {
                names: vec!["t".into()]
            }
        );
        assert_eq!(
            handle_request(&db, Request::DropTable { table: "t".into() }),
            Response::Ok
        );
        match handle_request(&db, Request::GetSchema { table: "t".into() }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NoSuchTable),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn dispatcher_rollup_lifecycle() {
        let db = test_db();
        assert_eq!(
            handle_request(
                &db,
                Request::CreateTable {
                    table: "t".into(),
                    schema: schema(),
                    ttl: None,
                },
            ),
            Response::Ok
        );
        handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![some_row(vec![
                    Value::I64(1),
                    Value::Timestamp(1),
                    Value::I64(10),
                ])],
            },
        );
        assert_eq!(
            handle_request(
                &db,
                Request::CreateRollup {
                    name: "t_1h".into(),
                    base: "t".into(),
                    period: 3_600_000_000,
                    value_cols: vec!["v".into()],
                    distinct_cols: vec![],
                },
            ),
            Response::Ok
        );
        // The rollup is a real table: listed and queryable.
        match handle_request(&db, Request::ListTables) {
            Response::Tables { names } => assert_eq!(names, vec!["t".to_string(), "t_1h".into()]),
            r => panic!("unexpected {r:?}"),
        }
        match handle_request(
            &db,
            Request::Query {
                table: "t_1h".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            r => panic!("unexpected {r:?}"),
        }
        // Rollups cannot stack, and drop removes the table.
        match handle_request(
            &db,
            Request::CreateRollup {
                name: "t_1d".into(),
                base: "t_1h".into(),
                period: 86_400_000_000,
                value_cols: vec![],
                distinct_cols: vec![],
            },
        ) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Invalid),
            r => panic!("unexpected {r:?}"),
        }
        assert_eq!(
            handle_request(
                &db,
                Request::DropRollup {
                    name: "t_1h".into()
                }
            ),
            Response::Ok
        );
        match handle_request(
            &db,
            Request::GetSchema {
                table: "t_1h".into(),
            },
        ) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NoSuchTable),
            r => panic!("unexpected {r:?}"),
        }
    }

    /// Regression for the `server_sets_ts` clobber bug: a mixed batch
    /// keeps its explicit timestamps and stamps only the omitted ones.
    #[test]
    fn mixed_batch_stamps_only_omitted_timestamps() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        let resp = handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    some_row(vec![Value::I64(1), Value::Timestamp(42), Value::I64(1)]),
                    vec![Some(Value::I64(1)), None, Some(Value::I64(2))],
                    some_row(vec![Value::I64(1), Value::Timestamp(99), Value::I64(3)]),
                ],
            },
        );
        assert!(matches!(resp, Response::InsertResult { inserted: 3, .. }));
        match handle_request(
            &db,
            Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows { rows, .. } => {
                let ts: Vec<&Value> = rows.iter().map(|r| &r[1]).collect();
                assert!(ts.contains(&&Value::Timestamp(42)), "explicit ts clobbered");
                assert!(ts.contains(&&Value::Timestamp(99)), "explicit ts clobbered");
                assert!(
                    ts.contains(&&Value::Timestamp(1_700_000_000_000_000)),
                    "omitted ts not stamped"
                );
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    /// Malformed batches reject atomically: wrong-length rows, nulls
    /// outside the timestamp column, and type mismatches insert nothing.
    #[test]
    fn malformed_insert_batches_reject_atomically() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        let bad_batches: Vec<Vec<Vec<Option<Value>>>> = vec![
            // Good row first, short row second: neither may apply.
            vec![
                some_row(vec![Value::I64(1), Value::Timestamp(1), Value::I64(1)]),
                vec![Some(Value::I64(2)), Some(Value::Timestamp(2))],
            ],
            // Row longer than the schema.
            vec![some_row(vec![
                Value::I64(1),
                Value::Timestamp(1),
                Value::I64(1),
                Value::I64(9),
            ])],
            // Null outside the timestamp column.
            vec![vec![None, Some(Value::Timestamp(1)), Some(Value::I64(1))]],
            // Type mismatch.
            vec![some_row(vec![
                Value::Str("x".into()),
                Value::Timestamp(1),
                Value::I64(1),
            ])],
        ];
        for batch in bad_batches {
            match handle_request(
                &db,
                Request::Insert {
                    table: "t".into(),
                    rows: batch,
                },
            ) {
                Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Invalid),
                r => panic!("unexpected {r:?}"),
            }
        }
        match handle_request(
            &db,
            Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows { rows, .. } => assert!(rows.is_empty(), "bad batch half-applied"),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn malformed_frames_get_error_responses_and_connection_survives() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Garbage body after a valid id: server answers with an Error
        // frame echoing the id.
        write_frame(&mut stream, &[0x07, 0xFF, 0x00, 0x13, 0x37]).unwrap();
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        let payload = read_frame(&mut reader).unwrap().unwrap();
        let (id, resp) = decode_response_frame(&payload).unwrap();
        assert_eq!(id, 0x07);
        match resp {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Internal),
            r => panic!("unexpected {r:?}"),
        }
        // The connection still works afterwards.
        let (id, resp) = send(&mut stream, 8, &Request::Ping);
        assert_eq!((id, resp), (8, Response::Pong));
        server.shutdown();
    }

    #[test]
    fn stats_reflect_activity() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        handle_request(
            &db,
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    some_row(vec![Value::I64(1), Value::Timestamp(1), Value::I64(1)]),
                    some_row(vec![Value::I64(1), Value::Timestamp(1), Value::I64(1)]), // dup
                ],
            },
        );
        match handle_request(&db, Request::Stats { table: "t".into() }) {
            Response::Stats {
                rows_inserted,
                duplicate_keys,
                ..
            } => {
                assert_eq!(rows_inserted, 1);
                assert_eq!(duplicate_keys, 1);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    /// Spares fence writes with NotPrimary, serve reads, and answer
    /// NodeStatus; promotion flips all of that at a new epoch.
    #[test]
    fn spare_fences_writes_until_promoted() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        let node = NodeState::spare(7, 3, 2);
        // Status reflects the spare role.
        assert_eq!(
            handle_fleet_request(&db, &node, Request::NodeStatus),
            Response::NodeStatus {
                node: 7,
                shard: 3,
                epoch: 2,
                primary: false,
            }
        );
        // Writes are fenced...
        match handle_fleet_request(
            &db,
            &node,
            Request::Insert {
                table: "t".into(),
                rows: vec![some_row(vec![
                    Value::I64(1),
                    Value::Timestamp(1),
                    Value::I64(1),
                ])],
            },
        ) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NotPrimary),
            r => panic!("unexpected {r:?}"),
        }
        match handle_fleet_request(&db, &node, Request::DropTable { table: "t".into() }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NotPrimary),
            r => panic!("unexpected {r:?}"),
        }
        // ...reads are not.
        match handle_fleet_request(
            &db,
            &node,
            Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            Response::Rows { rows, .. } => assert!(rows.is_empty()),
            r => panic!("unexpected {r:?}"),
        }
        // Promotion unfences at the new epoch.
        node.promote(3);
        assert!(node.is_primary());
        assert_eq!(node.epoch(), 3);
        assert!(matches!(
            handle_fleet_request(
                &db,
                &node,
                Request::Insert {
                    table: "t".into(),
                    rows: vec![some_row(vec![
                        Value::I64(1),
                        Value::Timestamp(1),
                        Value::I64(1),
                    ])],
                },
            ),
            Response::InsertResult { inserted: 1, .. }
        ));
        // Demotion fences again (failback).
        node.demote(4);
        match handle_fleet_request(
            &db,
            &node,
            Request::Insert {
                table: "t".into(),
                rows: vec![some_row(vec![
                    Value::I64(9),
                    Value::Timestamp(9),
                    Value::I64(9),
                ])],
            },
        ) {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::NotPrimary);
                assert!(message.contains("epoch 4"), "{message}");
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    /// A fleet-bound TCP server fences over the wire too, and a
    /// standalone server answers NodeStatus as a primary.
    #[test]
    fn tcp_server_respects_node_state() {
        let db = test_db();
        handle_request(
            &db,
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: None,
            },
        );
        let node = Arc::new(NodeState::spare(1, 0, 5));
        let mut server =
            Server::bind_as(db, "127.0.0.1:0", ServerConfig::default(), node.clone()).unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        match send(&mut stream, 1, &Request::NodeStatus) {
            (
                1,
                Response::NodeStatus {
                    node: 1,
                    shard: 0,
                    epoch: 5,
                    primary: false,
                },
            ) => {}
            r => panic!("unexpected {r:?}"),
        }
        match send(
            &mut stream,
            2,
            &Request::Insert {
                table: "t".into(),
                rows: vec![some_row(vec![
                    Value::I64(1),
                    Value::Timestamp(1),
                    Value::I64(1),
                ])],
            },
        ) {
            (2, Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::NotPrimary),
            r => panic!("unexpected {r:?}"),
        }
        // Promote through the shared handle: the live server unfences.
        node.promote(6);
        assert!(matches!(
            send(
                &mut stream,
                3,
                &Request::Insert {
                    table: "t".into(),
                    rows: vec![some_row(vec![
                        Value::I64(1),
                        Value::Timestamp(1),
                        Value::I64(1),
                    ])],
                },
            ),
            (3, Response::InsertResult { inserted: 1, .. })
        ));
        server.shutdown();

        // Standalone servers answer as primary without any fleet wiring.
        let db2 = test_db();
        let mut standalone = Server::bind(db2, "127.0.0.1:0").unwrap();
        standalone.start().unwrap();
        let mut s2 = TcpStream::connect(standalone.local_addr()).unwrap();
        match send(&mut s2, 1, &Request::NodeStatus) {
            (1, Response::NodeStatus { primary: true, .. }) => {}
            r => panic!("unexpected {r:?}"),
        }
        standalone.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(send(&mut stream, 1, &Request::Ping), (1, Response::Pong));
        assert_eq!(
            send(
                &mut stream,
                2,
                &Request::CreateTable {
                    table: "t".into(),
                    schema: schema(),
                    ttl: None,
                }
            ),
            (2, Response::Ok)
        );
        assert!(matches!(
            send(
                &mut stream,
                3,
                &Request::Insert {
                    table: "t".into(),
                    rows: vec![some_row(vec![
                        Value::I64(1),
                        Value::Timestamp(5),
                        Value::I64(50)
                    ])],
                }
            ),
            (3, Response::InsertResult { inserted: 1, .. })
        ));
        match send(
            &mut stream,
            4,
            &Request::Query {
                table: "t".into(),
                query: Query::all(),
            },
        ) {
            (4, Response::Rows { rows, .. }) => assert_eq!(rows.len(), 1),
            r => panic!("unexpected {r:?}"),
        }
        drop(stream);
        server.shutdown();
    }

    /// Pipelining: many requests written back-to-back before any response
    /// is read come back in FIFO order with matching ids.
    #[test]
    fn pipelined_requests_answer_in_fifo_order() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        write_frame(
            &mut stream,
            &encode_request_frame(
                1,
                &Request::CreateTable {
                    table: "t".into(),
                    schema: schema(),
                    ttl: None,
                },
            ),
        )
        .unwrap();
        for id in 2..=33u64 {
            write_frame(
                &mut stream,
                &encode_request_frame(
                    id,
                    &Request::Insert {
                        table: "t".into(),
                        rows: vec![some_row(vec![
                            Value::I64(id as i64),
                            Value::Timestamp(id as i64),
                            Value::I64(0),
                        ])],
                    },
                ),
            )
            .unwrap();
        }
        write_frame(&mut stream, &encode_request_frame(34, &Request::Ping)).unwrap();

        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        for want in 1..=34u64 {
            let payload = read_frame(&mut reader).unwrap().unwrap();
            let (id, resp) = decode_response_frame(&payload).unwrap();
            assert_eq!(id, want, "responses out of order");
            match (want, resp) {
                (1, Response::Ok) | (34, Response::Pong) => {}
                (_, Response::InsertResult { inserted: 1, .. }) => {}
                (w, r) => panic!("unexpected response {r:?} for id {w}"),
            }
        }
        server.shutdown();
    }

    /// The old `serve_connection` loop: 200 ms read timeout with a bare
    /// `continue` on mid-frame timeouts. Kept as a test fixture to show
    /// the desync bug the incremental decoder fixes.
    fn old_style_serve(db: &Db, mut stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut reader = io::BufReader::new(stream.try_clone()?);
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(p)) => p,
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // BUG: read_frame may already have consumed the header
                    // and part of the payload; retrying from scratch
                    // desyncs the stream.
                    continue;
                }
                Err(e) => return Err(e),
            };
            let (id, resp) = match littletable_proto::decode_request_frame(&payload) {
                Ok((id, req)) => (id, handle_request(db, req)),
                Err(e) => (
                    0,
                    Response::Error {
                        kind: ErrorKind::Internal,
                        message: format!("malformed request: {e}"),
                    },
                ),
            };
            write_frame(
                &mut stream,
                &littletable_proto::encode_response_frame(id, &resp),
            )?;
        }
    }

    /// Writes one valid frame in two halves, split mid-payload, with a
    /// pause longer than the old loop's 200 ms read timeout.
    fn write_split_frame(stream: &mut TcpStream, payload: &[u8], pause: Duration) {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(payload);
        let cut = 4 + 2; // header plus two payload bytes
        stream.write_all(&framed[..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(pause);
        stream.write_all(&framed[cut..]).unwrap();
        stream.flush().unwrap();
    }

    /// Regression: a slow writer that pauses mid-frame desyncs the old
    /// blocking loop (consumed bytes are lost on timeout) …
    #[test]
    fn slow_writer_desyncs_old_blocking_loop() {
        let db = test_db();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            old_style_serve(&db, stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let payload = encode_request_frame(
            1,
            &Request::GetSchema {
                table: "zzzzzz".into(),
            },
        );
        write_split_frame(&mut stream, &payload, Duration::from_millis(350));
        // The old loop lost the two payload bytes it consumed before the
        // timeout, then misread the remaining payload as a frame header —
        // a bogus length it rejects, killing the connection without ever
        // answering.
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        if let Ok(Some(_)) = read_frame(&mut reader) {
            panic!("old loop unexpectedly answered a split frame");
        } // Ok(None) / Err: connection died — the desync
        assert!(
            handle.join().unwrap().is_err(),
            "old loop should error out on the desynced stream"
        );
    }

    /// … while the incremental decoder preserves partial state across
    /// arbitrarily slow writers and answers correctly.
    #[test]
    fn slow_writer_is_fine_with_incremental_decoder() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let payload = encode_request_frame(
            1,
            &Request::GetSchema {
                table: "zzzzzz".into(),
            },
        );
        write_split_frame(&mut stream, &payload, Duration::from_millis(350));
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        let resp = read_frame(&mut reader).unwrap().unwrap();
        let (id, resp) = decode_response_frame(&resp).unwrap();
        assert_eq!(id, 1);
        match resp {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NoSuchTable),
            r => panic!("unexpected {r:?}"),
        }
        // And the connection keeps working.
        assert_eq!(send(&mut stream, 2, &Request::Ping), (2, Response::Pong));
        server.shutdown();
    }

    /// Regression for the hung/slow shutdown: with an idle client still
    /// connected, shutdown must complete well under a second (the old
    /// accept loop joined connection threads that sat in read timeouts).
    #[test]
    fn shutdown_with_idle_client_is_prompt() {
        let db = test_db();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(send(&mut stream, 1, &Request::Ping), (1, Response::Pong));
        // Client now sits idle; shutdown must not wait for it.
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "shutdown took {:?} with an idle client connected",
            t0.elapsed()
        );
    }

    /// The group-commit scheduler flushes sealed work without any client
    /// asking for it.
    #[test]
    fn group_commit_flushes_in_background() {
        let db = test_db();
        let mut server = Server::bind_with(
            db,
            "127.0.0.1:0",
            ServerConfig {
                group_commit_rows: 64,
                group_commit_interval_ms: 5,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        assert_eq!(
            send(
                &mut stream,
                1,
                &Request::CreateTable {
                    table: "t".into(),
                    schema: schema(),
                    ttl: None,
                }
            ),
            (1, Response::Ok)
        );
        // Push enough data through the server to roll the 64 kB memtable
        // over into sealed tablets; the committer must flush them.
        let rows: Vec<Vec<Option<Value>>> = (0..1000)
            .map(|i| {
                some_row(vec![
                    Value::I64(i),
                    Value::Timestamp(i),
                    Value::I64(i * 1_000_003),
                ])
            })
            .collect();
        for id in 2u64..10 {
            let resp = send(
                &mut stream,
                id,
                &Request::Insert {
                    table: "t".into(),
                    rows: rows
                        .iter()
                        .map(|r| {
                            let mut r = r.clone();
                            r[1] = Some(Value::Timestamp(id as i64 * 1_000_000));
                            r
                        })
                        .collect(),
                },
            );
            assert!(matches!(resp.1, Response::InsertResult { .. }));
        }
        let table = server.db().table("t").unwrap();
        let t0 = Instant::now();
        while table.num_disk_tablets() == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "group commit never flushed sealed tablets"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    /// Batches for distinct tables commit on distinct write shards: each
    /// table hashes to one shard, and inserting into two tables on
    /// different shards advances both shards' commit counters
    /// independently.
    #[test]
    fn distinct_tables_commit_on_distinct_shards() {
        let db = test_db();
        let mut server = Server::bind_with(
            db,
            "127.0.0.1:0",
            ServerConfig {
                group_commit_rows: 4,
                group_commit_interval_ms: 5,
                commit_shards: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        server.start().unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        // Create tables until two land on different commit shards (the
        // hash is table-name driven, so a handful of names suffices).
        let mut picked: Vec<(String, usize)> = Vec::new();
        for i in 0.. {
            let name = format!("t{i}");
            assert_eq!(
                send(
                    &mut stream,
                    i + 1,
                    &Request::CreateTable {
                        table: name.clone(),
                        schema: schema(),
                        ttl: None,
                    }
                )
                .1,
                Response::Ok
            );
            let shard = server.commit_shard_of(&name);
            if !picked.iter().any(|(_, s)| *s == shard) {
                picked.push((name, shard));
            }
            if picked.len() == 2 {
                break;
            }
            assert!(i < 64, "never found two tables on distinct shards");
        }
        assert_ne!(picked[0].1, picked[1].1);

        let before = server.commit_shard_counts();
        for (id, (name, _)) in picked.iter().enumerate() {
            let resp = send(
                &mut stream,
                100 + id as u64,
                &Request::Insert {
                    table: name.clone(),
                    rows: (0..8)
                        .map(|i| {
                            some_row(vec![
                                Value::I64(i),
                                Value::Timestamp(i * 1_000),
                                Value::I64(i),
                            ])
                        })
                        .collect(),
                },
            );
            assert!(matches!(resp.1, Response::InsertResult { .. }));
        }
        // Each table's rows must wake its own shard: both shard counters
        // advance, and shards owning no dirty table stay untouched by
        // these inserts (they may still be zero).
        let t0 = Instant::now();
        loop {
            let now = server.commit_shard_counts();
            let woke = picked.iter().filter(|(_, s)| now[*s] > before[*s]).count();
            if woke == 2 {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "commit shards never ran: before={before:?} now={now:?} picked={picked:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }
}
