//! SQL front end for LittleTable.
//!
//! The paper's first query language was XML-based and "developer uptake
//! was sluggish until a subsequent version added SQL support" (§2.3.2).
//! This crate is that subsequent version: a hand-written lexer and
//! recursive-descent parser for a pragmatic dialect, a planner that turns
//! `WHERE` conjunctions into the engine's two-dimensional bounding boxes,
//! and an executor with sort-order-aware projection and aggregation
//! (COUNT / SUM / MIN / MAX / AVG with GROUP BY).
//!
//! ```
//! use littletable_sql::{Session, SqlOutput};
//! use littletable_core::{Db, Options};
//! use littletable_vfs::{SimVfs, SimClock};
//! use std::sync::Arc;
//!
//! let db = Db::open(
//!     Arc::new(SimVfs::instant()),
//!     Arc::new(SimClock::new(1_700_000_000_000_000)),
//!     Options::small_for_tests(),
//! ).unwrap();
//! let session = Session::new(db);
//! session.execute(
//!     "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP,
//!      bytes INT64, PRIMARY KEY (network, device, ts)) TTL '390d'",
//! ).unwrap();
//! session.execute(
//!     "INSERT INTO usage (network, device, bytes) VALUES (1, 2, 4096)",
//! ).unwrap();
//! match session.execute("SELECT device, SUM(bytes) FROM usage \
//!                        WHERE network = 1 GROUP BY device").unwrap() {
//!     SqlOutput::Rows { rows, .. } => assert_eq!(rows.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use exec::{Session, SqlOutput};
pub use parser::{parse, parse_duration};
