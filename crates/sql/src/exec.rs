//! Statement execution against an embedded engine [`Db`].

use crate::ast::{AggFunc, CmpOp, ColumnAst, GroupExpr, Literal, Select, SelectItem, Statement};
use crate::plan::{cmp_values, plan_select, Residual};
use littletable_core::db::Db;
use littletable_core::error::{Error, Result};
use littletable_core::keyenc;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::{ColumnPredicate, PredOp, PushdownRequest, ScanUnit};
use littletable_core::value::{ColumnType, Value};
use std::collections::BTreeMap;

/// Lowers a residual WHERE conjunct to an engine pushdown predicate.
/// The two evaluate identically (same `cmp_values` semantics), which is
/// what lets the engine's zone maps prune blocks for them soundly.
fn to_predicate(r: &Residual) -> ColumnPredicate {
    ColumnPredicate {
        col: r.col,
        op: match r.op {
            CmpOp::Eq => PredOp::Eq,
            CmpOp::Ne => PredOp::Ne,
            CmpOp::Lt => PredOp::Lt,
            CmpOp::Le => PredOp::Le,
            CmpOp::Gt => PredOp::Gt,
            CmpOp::Ge => PredOp::Ge,
        },
        value: r.value.clone(),
    }
}

/// One resolved GROUP BY expression: a column, optionally rounded down
/// to `bucket`-micro boundaries (TIME_BUCKET).
struct GroupSpec {
    col: usize,
    bucket: Option<i64>,
}

impl GroupSpec {
    /// The group value this expression yields for a row value.
    fn value(&self, v: &Value) -> Result<Value> {
        match self.bucket {
            None => Ok(v.clone()),
            Some(w) => {
                let ts = v.as_timestamp()?;
                Ok(Value::Timestamp(ts - ts.rem_euclid(w)))
            }
        }
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// DDL succeeded.
    Done,
    /// Rows affected (INSERT reports accepted rows; duplicates are
    /// silently skipped per the engine's uniqueness semantics).
    Count(u64),
    /// A result set.
    Rows {
        /// Column labels.
        columns: Vec<String>,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
}

/// A SQL session over an engine handle.
pub struct Session {
    db: Db,
}

impl Session {
    /// Creates a session.
    pub fn new(db: Db) -> Session {
        Session { db }
    }

    /// The underlying database.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Parses and executes one statement.
    pub fn execute(&self, sql: &str) -> Result<SqlOutput> {
        let stmt = crate::parser::parse(sql)?;
        self.run(stmt)
    }

    fn run(&self, stmt: Statement) -> Result<SqlOutput> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                ttl,
            } => {
                let now = self.db.now();
                let cols: Vec<ColumnDef> = columns
                    .iter()
                    .map(|c| self.column_def(c, now))
                    .collect::<Result<_>>()?;
                let keys: Vec<&str> = primary_key.iter().map(String::as_str).collect();
                let schema = Schema::new(cols, &keys)?;
                self.db.create_table(&name, schema, ttl)?;
                Ok(SqlOutput::Done)
            }
            Statement::DropTable { name } => {
                self.db.drop_table(&name)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterAddColumn { name, column } => {
                let now = self.db.now();
                let col = self.column_def(&column, now)?;
                self.db.table(&name)?.add_column(col)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterWidenColumn { name, column } => {
                self.db.table(&name)?.widen_column(&column)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterSetTtl { name, ttl } => {
                self.db.table(&name)?.set_ttl(ttl)?;
                Ok(SqlOutput::Done)
            }
            Statement::Insert {
                name,
                columns,
                rows,
            } => self.insert(&name, columns, rows),
            Statement::Select(sel) => self.select(&sel),
            Statement::ShowTables => Ok(SqlOutput::Rows {
                columns: vec!["table".into()],
                rows: self
                    .db
                    .list_tables()
                    .into_iter()
                    .map(|n| vec![Value::Str(n)])
                    .collect(),
            }),
            Statement::Describe { name } => {
                let t = self.db.table(&name)?;
                let schema = t.schema();
                let rows = schema
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let key_pos = schema.key_indices().iter().position(|&k| k == i);
                        vec![
                            Value::Str(c.name.clone()),
                            Value::Str(c.ty.to_string()),
                            Value::Str(key_pos.map(|p| format!("key[{p}]")).unwrap_or_default()),
                            Value::Str(c.default.to_string()),
                        ]
                    })
                    .collect();
                Ok(SqlOutput::Rows {
                    columns: vec![
                        "column".into(),
                        "type".into(),
                        "key".into(),
                        "default".into(),
                    ],
                    rows,
                })
            }
        }
    }

    fn column_def(&self, c: &ColumnAst, now: i64) -> Result<ColumnDef> {
        Ok(match &c.default {
            None => ColumnDef::new(&c.name, c.ty),
            Some(lit) => ColumnDef::with_default(&c.name, c.ty, lit.to_value(c.ty, now)?),
        })
    }

    fn insert(
        &self,
        name: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Literal>>,
    ) -> Result<SqlOutput> {
        let t = self.db.table(name)?;
        let schema = t.schema();
        let now = self.db.now();
        // Map listed columns to schema slots.
        let slots: Vec<usize> = match &columns {
            None => (0..schema.num_columns()).collect(),
            Some(names) => names
                .iter()
                .map(|n| {
                    schema
                        .column_index(n)
                        .ok_or_else(|| Error::invalid(format!("no column {n:?}")))
                })
                .collect::<Result<_>>()?,
        };
        let ts_index = schema.ts_index();
        let mut full_rows = Vec::with_capacity(rows.len());
        for lits in rows {
            if lits.len() != slots.len() {
                return Err(Error::invalid(format!(
                    "row has {} values but {} columns are listed",
                    lits.len(),
                    slots.len()
                )));
            }
            let mut values: Vec<Option<Value>> = vec![None; schema.num_columns()];
            for (lit, &slot) in lits.iter().zip(&slots) {
                let ty = schema.columns()[slot].ty;
                values[slot] = Some(lit.to_value(ty, now)?);
            }
            // Unlisted columns: the timestamp gets "now" (§3.1: clients may
            // omit it); everything else takes its schema default.
            let row: Vec<Value> = values
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    v.unwrap_or_else(|| {
                        if i == ts_index {
                            Value::Timestamp(now)
                        } else {
                            schema.columns()[i].default.clone()
                        }
                    })
                })
                .collect();
            full_rows.push(row);
        }
        let report = t.insert(full_rows)?;
        Ok(SqlOutput::Count(report.inserted as u64))
    }

    fn select(&self, sel: &Select) -> Result<SqlOutput> {
        let t = self.db.table(&sel.table)?;
        let schema = t.schema();
        let now = self.db.now();
        let mut plan = plan_select(sel, &schema, now)?;

        let has_aggregates = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        let grouped = has_aggregates || !sel.group_by.is_empty();

        // The engine's limit counts pre-residual/pre-aggregation rows, so
        // only push it down for plain scans with no residual filters.
        if grouped || !plan.residual.is_empty() {
            plan.query.limit = None;
        } else {
            plan.query.limit = sel.limit;
        }

        if !grouped {
            return self.plain_select(sel, &schema, plan);
        }

        // Validate the projection: bare columns and time buckets must be
        // grouped.
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::invalid("* cannot be mixed with aggregates"))
                }
                SelectItem::Column(name) => {
                    let grouped = sel
                        .group_by
                        .iter()
                        .any(|g| matches!(g, GroupExpr::Column(n) if n == name));
                    if !grouped {
                        return Err(Error::invalid(format!(
                            "column {name:?} must appear in GROUP BY"
                        )));
                    }
                }
                SelectItem::TimeBucket {
                    column,
                    width_micros,
                } => {
                    let grouped = sel.group_by.iter().any(|g| {
                        matches!(g, GroupExpr::TimeBucket { column: c, width_micros: w }
                            if c == column && w == width_micros)
                    });
                    if !grouped {
                        return Err(Error::invalid(
                            "TIME_BUCKET in SELECT must appear in GROUP BY",
                        ));
                    }
                }
                SelectItem::Aggregate { .. } => {}
            }
        }
        let group_specs: Vec<GroupSpec> = sel
            .group_by
            .iter()
            .map(|g| {
                let (name, bucket) = match g {
                    GroupExpr::Column(n) => (n, None),
                    GroupExpr::TimeBucket {
                        column,
                        width_micros,
                    } => (column, Some(*width_micros)),
                };
                let col = schema
                    .column_index(name)
                    .ok_or_else(|| Error::invalid(format!("no column {name:?}")))?;
                let ty = schema.columns()[col].ty;
                if bucket.is_some() && ty != ColumnType::Timestamp {
                    return Err(Error::invalid("TIME_BUCKET requires a TIMESTAMP column"));
                }
                if bucket.is_none() && ty == ColumnType::F64 {
                    return Err(Error::invalid("cannot GROUP BY a double column"));
                }
                Ok(GroupSpec { col, bucket })
            })
            .collect::<Result<_>>()?;
        let agg_specs: Vec<(AggFunc, Option<usize>)> = sel
            .items
            .iter()
            .filter_map(|item| match item {
                SelectItem::Aggregate { func, column } => Some((func, column)),
                _ => None,
            })
            .map(|(func, column)| {
                let idx = match column {
                    None => None,
                    Some(n) => Some(
                        schema
                            .column_index(n)
                            .ok_or_else(|| Error::invalid(format!("no column {n:?}")))?,
                    ),
                };
                Ok((*func, idx))
            })
            .collect::<Result<_>>()?;

        // COUNT/MIN/MAX over an ungrouped scan can be answered from
        // footer statistics alone; SUM/AVG (and any GROUP BY) must see
        // the values.
        let stats_cols: Option<Vec<usize>> = if group_specs.is_empty() {
            let mut cols = Vec::new();
            let mut ok = true;
            for (f, c) in &agg_specs {
                match (f, c) {
                    (AggFunc::Count, _) => {}
                    (AggFunc::Min | AggFunc::Max, Some(i)) => cols.push(*i),
                    _ => ok = false,
                }
            }
            ok.then_some(cols)
        } else {
            None
        };

        // Aggregate via the engine's columnar pushdown: footer stats and
        // decoded column slices where possible, materialized rows only at
        // box boundaries and for pre-columnar tablets.
        let req = PushdownRequest {
            query: plan.query.clone(),
            predicates: plan.residual.iter().map(to_predicate).collect(),
            stats_cols,
        };
        // Group on the memcmp encoding of the group-by values so groups
        // come out in key-compatible order.
        let mut groups: BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = BTreeMap::new();
        let new_states =
            || -> Vec<AggState> { agg_specs.iter().map(|(f, _)| AggState::new(*f)).collect() };
        t.pushdown_scan(&req, &mut |unit| {
            match unit {
                ScanUnit::Stats { rows, zones } => {
                    // Only issued when group_specs is empty: one group.
                    let entry = groups
                        .entry(Vec::new())
                        .or_insert_with(|| (Vec::new(), new_states()));
                    for (state, (_, col)) in entry.1.iter_mut().zip(&agg_specs) {
                        state.update_stats(rows, col.and_then(|c| zones[c].as_ref()))?;
                    }
                }
                ScanUnit::Block { block, uncertain } => {
                    let slice = |c: usize| {
                        block
                            .column(c)
                            .ok_or_else(|| Error::invalid("columnar block is missing a column"))
                    };
                    for ri in 0..block.len() {
                        let mut pass = true;
                        for &pi in &uncertain {
                            let p = &req.predicates[pi];
                            if !p.matches(&slice(p.col)?.value(ri)) {
                                pass = false;
                                break;
                            }
                        }
                        if !pass {
                            continue;
                        }
                        let mut key = Vec::new();
                        let mut vals = Vec::with_capacity(group_specs.len());
                        for spec in &group_specs {
                            let v = spec.value(&slice(spec.col)?.value(ri))?;
                            keyenc::encode_component(&mut key, &v)?;
                            vals.push(v);
                        }
                        let entry = groups.entry(key).or_insert_with(|| (vals, new_states()));
                        for (state, (_, col)) in entry.1.iter_mut().zip(&agg_specs) {
                            let v = match col {
                                Some(c) => Some(slice(*c)?.value(ri)),
                                None => None,
                            };
                            state.update(v.as_ref())?;
                        }
                    }
                }
                ScanUnit::Rows(rows) => {
                    // Already filtered by bounds and every predicate.
                    for row in rows {
                        let mut key = Vec::new();
                        let mut vals = Vec::with_capacity(group_specs.len());
                        for spec in &group_specs {
                            let v = spec.value(&row.values[spec.col])?;
                            keyenc::encode_component(&mut key, &v)?;
                            vals.push(v);
                        }
                        let entry = groups.entry(key).or_insert_with(|| (vals, new_states()));
                        for (state, (_, col)) in entry.1.iter_mut().zip(&agg_specs) {
                            state.update(col.map(|c| &row.values[c]))?;
                        }
                    }
                }
            }
            Ok(())
        })?;

        // Assemble output in SELECT-list order.
        let mut columns = Vec::new();
        for item in &sel.items {
            columns.push(match item {
                SelectItem::Column(n) => n.clone(),
                SelectItem::TimeBucket { column, .. } => format!("time_bucket({column})"),
                SelectItem::Aggregate { func, column } => format!(
                    "{}({})",
                    match func {
                        AggFunc::Count => "count",
                        AggFunc::Sum => "sum",
                        AggFunc::Min => "min",
                        AggFunc::Max => "max",
                        AggFunc::Avg => "avg",
                    },
                    column.as_deref().unwrap_or("*")
                ),
                SelectItem::Wildcard => unreachable!(),
            });
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (_, (group_vals, states)) in groups {
            let mut out = Vec::with_capacity(sel.items.len());
            let mut agg_i = 0;
            for item in &sel.items {
                match item {
                    SelectItem::Column(n) => {
                        let pos = sel
                            .group_by
                            .iter()
                            .position(|g| matches!(g, GroupExpr::Column(gn) if gn == n))
                            .unwrap();
                        out.push(group_vals[pos].clone());
                    }
                    SelectItem::TimeBucket {
                        column,
                        width_micros,
                    } => {
                        let pos = sel
                            .group_by
                            .iter()
                            .position(|g| {
                                matches!(g, GroupExpr::TimeBucket { column: c, width_micros: w }
                                    if c == column && w == width_micros)
                            })
                            .unwrap();
                        out.push(group_vals[pos].clone());
                    }
                    SelectItem::Aggregate { .. } => {
                        out.push(states[agg_i].finish());
                        agg_i += 1;
                    }
                    SelectItem::Wildcard => unreachable!(),
                }
            }
            rows.push(out);
            if let Some(limit) = sel.limit {
                if rows.len() >= limit {
                    break;
                }
            }
        }
        Ok(SqlOutput::Rows { columns, rows })
    }

    fn plain_select(
        &self,
        sel: &Select,
        schema: &Schema,
        plan: crate::plan::Plan,
    ) -> Result<SqlOutput> {
        // Projection slots.
        let mut columns = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.columns().iter().enumerate() {
                        columns.push(c.name.clone());
                        slots.push(i);
                    }
                }
                SelectItem::Column(n) => {
                    let i = schema
                        .column_index(n)
                        .ok_or_else(|| Error::invalid(format!("no column {n:?}")))?;
                    columns.push(n.clone());
                    slots.push(i);
                }
                SelectItem::TimeBucket { .. } => {
                    return Err(Error::invalid("TIME_BUCKET requires GROUP BY"))
                }
                SelectItem::Aggregate { .. } => unreachable!("handled by caller"),
            }
        }
        let t = self.db.table(&sel.table)?;
        let mut cur = t.query(&plan.query)?;
        let mut rows = Vec::new();
        while let Some(row) = cur.next_row()? {
            if !plan.residual.iter().all(|r| r.matches(&row.values)) {
                continue;
            }
            rows.push(slots.iter().map(|&i| row.values[i].clone()).collect());
            if let Some(limit) = sel.limit {
                if rows.len() >= limit {
                    break;
                }
            }
        }
        Ok(SqlOutput::Rows { columns, rows })
    }
}

/// Streaming aggregate state.
#[derive(Debug)]
enum AggState {
    Count(u64),
    SumInt(i64, bool),
    SumFloat(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, u64),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            // SUM starts integral and switches to float on first float.
            AggFunc::Sum => AggState::SumInt(0, false),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc, seen) => match value {
                Some(Value::I32(v)) => {
                    *acc += *v as i64;
                    *seen = true;
                }
                Some(Value::I64(v)) | Some(Value::Timestamp(v)) => {
                    *acc += v;
                    *seen = true;
                }
                Some(Value::F64(v)) => {
                    *self = AggState::SumFloat(*acc as f64 + v);
                }
                Some(v) => return Err(Error::invalid(format!("SUM over non-numeric value {v}"))),
                None => return Err(Error::invalid("SUM requires a column")),
            },
            AggState::SumFloat(acc) => match value {
                Some(Value::I32(v)) => *acc += *v as f64,
                Some(Value::I64(v)) | Some(Value::Timestamp(v)) => *acc += *v as f64,
                Some(Value::F64(v)) => *acc += v,
                Some(v) => return Err(Error::invalid(format!("SUM over non-numeric value {v}"))),
                None => return Err(Error::invalid("SUM requires a column")),
            },
            AggState::Min(cur) => {
                let v = value.ok_or_else(|| Error::invalid("MIN requires a column"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => cmp_values(v, c) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = value.ok_or_else(|| Error::invalid("MAX requires a column"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => cmp_values(v, c) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Avg(acc, n) => {
                let v = value.ok_or_else(|| Error::invalid("AVG requires a column"))?;
                let x = match v {
                    Value::I32(v) => *v as f64,
                    Value::I64(v) => *v as f64,
                    Value::Timestamp(v) => *v as f64,
                    Value::F64(v) => *v,
                    v => return Err(Error::invalid(format!("AVG over non-numeric value {v}"))),
                };
                *acc += x;
                *n += 1;
            }
        }
        Ok(())
    }

    /// Folds a whole block's footer statistics into the state: `rows`
    /// rows whose aggregated column spans `zone`. Only COUNT/MIN/MAX
    /// can do this — the scan never produces stats units otherwise.
    fn update_stats(&mut self, rows: u64, zone: Option<&(Value, Value)>) -> Result<()> {
        let v = match self {
            AggState::Count(n) => {
                *n += rows;
                return Ok(());
            }
            AggState::Min(_) => zone.map(|(lo, _)| lo.clone()),
            AggState::Max(_) => zone.map(|(_, hi)| hi.clone()),
            _ => return Err(Error::invalid("aggregate cannot fold footer statistics")),
        };
        let v = v.ok_or_else(|| Error::invalid("stats scan unit without a zone map"))?;
        self.update(Some(&v))
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::I64(*n as i64),
            AggState::SumInt(acc, _) => Value::I64(*acc),
            AggState::SumFloat(acc) => Value::F64(*acc),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::I64(0)),
            AggState::Avg(acc, n) => {
                if *n == 0 {
                    Value::F64(0.0)
                } else {
                    Value::F64(acc / *n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::Options;
    use littletable_vfs::{SimClock, SimVfs};
    use std::sync::Arc;

    const START: i64 = 1_700_000_000_000_000;

    fn session() -> (Session, SimClock) {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (Session::new(db), clock)
    }

    fn rows(out: SqlOutput) -> Vec<Vec<Value>> {
        match out {
            SqlOutput::Rows { rows, .. } => rows,
            o => panic!("expected rows, got {o:?}"),
        }
    }

    fn setup_usage(s: &Session) {
        s.execute(
            "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, \
             bytes INT64, PRIMARY KEY (network, device, ts))",
        )
        .unwrap();
        // 2 networks x 3 devices x 5 samples.
        for net in 1..=2 {
            for dev in 1..=3 {
                for i in 0..5 {
                    s.execute(&format!(
                        "INSERT INTO usage VALUES ({net}, {dev}, {}, {})",
                        START + i * 1_000_000,
                        100 * dev + i
                    ))
                    .unwrap();
                }
            }
        }
    }

    #[test]
    fn create_insert_select_round_trip() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(s.execute("SELECT * FROM usage WHERE network = 1").unwrap());
        assert_eq!(got.len(), 15);
        let got = rows(
            s.execute("SELECT bytes FROM usage WHERE network = 1 AND device = 2")
                .unwrap(),
        );
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], vec![Value::I64(200)]);
    }

    #[test]
    fn aggregates_with_group_by() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute(
                "SELECT device, SUM(bytes), COUNT(*) FROM usage \
                 WHERE network = 1 GROUP BY device",
            )
            .unwrap(),
        );
        assert_eq!(got.len(), 3);
        // device 1: 100+101+102+103+104 = 510
        assert_eq!(got[0], vec![Value::I64(1), Value::I64(510), Value::I64(5)]);
        assert_eq!(got[1][0], Value::I64(2));
        assert_eq!(got[1][1], Value::I64(1010));
    }

    #[test]
    fn global_aggregates_without_group_by() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute("SELECT COUNT(*), MIN(bytes), MAX(bytes), AVG(device) FROM usage")
                .unwrap(),
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0], Value::I64(30));
        assert_eq!(got[0][1], Value::I64(100));
        assert_eq!(got[0][2], Value::I64(304));
        assert_eq!(got[0][3], Value::F64(2.0));
    }

    #[test]
    fn time_bounds_and_now() {
        let (s, clock) = session();
        setup_usage(&s);
        clock.set(START + 10_000_000);
        // Last 3 seconds relative to NOW(): samples i=2,3,4 are at
        // START+2s..START+4s; NOW()-8s = START+2s.
        let got = rows(
            s.execute(
                "SELECT * FROM usage WHERE network = 1 AND device = 1 \
                 AND ts >= NOW() - INTERVAL '8s'",
            )
            .unwrap(),
        );
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn order_and_limit() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute("SELECT device FROM usage WHERE network = 1 ORDER BY network DESC LIMIT 4")
                .unwrap(),
        );
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], vec![Value::I64(3)]);
        // Residual filter + limit: limit applies after filtering.
        let got = rows(
            s.execute("SELECT device, bytes FROM usage WHERE bytes >= 300 LIMIT 3")
                .unwrap(),
        );
        assert_eq!(got.len(), 3);
        for r in &got {
            assert!(matches!(r[1], Value::I64(b) if b >= 300));
        }
    }

    #[test]
    fn insert_defaults_and_server_timestamp() {
        let (s, clock) = session();
        s.execute(
            "CREATE TABLE ev (n INT64, ts TIMESTAMP, msg TEXT DEFAULT 'none', \
             PRIMARY KEY (n, ts))",
        )
        .unwrap();
        clock.set(START + 42);
        s.execute("INSERT INTO ev (n) VALUES (7)").unwrap();
        let got = rows(s.execute("SELECT * FROM ev").unwrap());
        assert_eq!(
            got[0],
            vec![
                Value::I64(7),
                Value::Timestamp(START + 42),
                Value::Str("none".into())
            ]
        );
    }

    #[test]
    fn ddl_statements() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, c INT32, PRIMARY KEY (n, ts))")
            .unwrap();
        s.execute("ALTER TABLE t ADD COLUMN note TEXT DEFAULT '-'")
            .unwrap();
        s.execute("ALTER TABLE t WIDEN COLUMN c").unwrap();
        s.execute("ALTER TABLE t SET TTL '90d'").unwrap();
        let desc = rows(s.execute("DESCRIBE t").unwrap());
        assert_eq!(desc.len(), 4);
        assert_eq!(desc[2][1], Value::Str("int64".into())); // widened
        let tables = rows(s.execute("SHOW TABLES").unwrap());
        assert_eq!(tables.len(), 1);
        s.execute("DROP TABLE t").unwrap();
        assert!(s.execute("SELECT * FROM t").is_err());
    }

    #[test]
    fn duplicate_inserts_are_skipped() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, PRIMARY KEY (n, ts))")
            .unwrap();
        assert_eq!(
            s.execute("INSERT INTO t VALUES (1, 5), (1, 5), (2, 5)")
                .unwrap(),
            SqlOutput::Count(2)
        );
    }

    #[test]
    fn errors_are_reported() {
        let (s, _) = session();
        assert!(s.execute("SELECT * FROM missing").is_err());
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, v DOUBLE, PRIMARY KEY (n, ts))")
            .unwrap();
        assert!(s.execute("SELECT nope FROM t").is_err());
        assert!(s.execute("SELECT n, SUM(v) FROM t").is_err()); // n not grouped
        assert!(s.execute("SELECT *, COUNT(*) FROM t").is_err());
        assert!(s.execute("SELECT v, COUNT(*) FROM t GROUP BY v").is_err()); // group by double
        assert!(s.execute("INSERT INTO t (n) VALUES (1, 2)").is_err()); // arity
        assert!(s.execute("INSERT INTO t VALUES ('x', 1, 2.0)").is_err()); // type
    }

    #[test]
    fn sum_switches_to_float() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, v DOUBLE, PRIMARY KEY (n, ts))")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 1, 1.5), (1, 2, 2.5)")
            .unwrap();
        let got = rows(s.execute("SELECT SUM(v) FROM t").unwrap());
        assert_eq!(got[0][0], Value::F64(4.0));
    }

    #[test]
    fn time_bucket_group_by() {
        let (s, _) = session();
        s.execute("CREATE TABLE m (n INT64, ts TIMESTAMP, v INT64, PRIMARY KEY (n, ts))")
            .unwrap();
        // 4 samples per hour across 3 hours, aligned to START.
        for h in 0..3i64 {
            for i in 0..4i64 {
                s.execute(&format!(
                    "INSERT INTO m VALUES (1, {}, {})",
                    START + h * 3_600_000_000 + i * 60_000_000,
                    h * 10 + i
                ))
                .unwrap();
            }
        }
        let q = "SELECT TIME_BUCKET(ts, INTERVAL '1h'), COUNT(*), SUM(v) FROM m \
                 GROUP BY TIME_BUCKET(ts, INTERVAL '1h')";
        let expect = |got: Vec<Vec<Value>>| {
            assert_eq!(got.len(), 3);
            for (h, row) in got.iter().enumerate() {
                let h = h as i64;
                let bucket = START + h * 3_600_000_000;
                let bucket = bucket - bucket.rem_euclid(3_600_000_000);
                assert_eq!(
                    row,
                    &vec![
                        Value::Timestamp(bucket),
                        Value::I64(4),
                        Value::I64(40 * h + 6)
                    ]
                );
            }
        };
        expect(rows(s.execute(q).unwrap()));
        // Same answer from disk, where the pushdown path takes over.
        s.db().flush_all().unwrap();
        expect(rows(s.execute(q).unwrap()));
        // TIME_BUCKET must be grouped, and must see a timestamp column.
        assert!(s
            .execute("SELECT TIME_BUCKET(ts, INTERVAL '1h') FROM m")
            .is_err());
        assert!(s
            .execute(
                "SELECT TIME_BUCKET(v, INTERVAL '1h'), COUNT(*) FROM m \
                 GROUP BY TIME_BUCKET(v, INTERVAL '1h')"
            )
            .is_err());
    }

    #[test]
    fn count_min_max_answer_from_footer_stats() {
        let (s, _) = session();
        setup_usage(&s);
        s.db().flush_all().unwrap();
        let before = s.db().table("usage").unwrap().stats().snapshot();
        let got = rows(
            s.execute("SELECT COUNT(*), MIN(bytes), MAX(bytes) FROM usage")
                .unwrap(),
        );
        assert_eq!(
            got[0],
            vec![Value::I64(30), Value::I64(100), Value::I64(304)]
        );
        let after = s.db().table("usage").unwrap().stats().snapshot();
        assert_eq!(after.pushdown_scans, before.pushdown_scans + 1);
        assert_eq!(
            after.rows_materialized, before.rows_materialized,
            "COUNT/MIN/MAX over the whole table must not materialize rows"
        );
    }

    #[test]
    fn pushdown_aggregates_match_row_path() {
        let (s, _) = session();
        setup_usage(&s);
        let q = "SELECT device, SUM(bytes), COUNT(*), AVG(bytes) FROM usage \
                 WHERE network = 2 AND bytes >= 102 GROUP BY device";
        let mem = rows(s.execute(q).unwrap());
        s.db().flush_all().unwrap();
        let disk = rows(s.execute(q).unwrap());
        assert_eq!(mem, disk);
        assert_eq!(disk.len(), 3);
        // device 1: bytes 102,103,104 → sum 309, count 3.
        assert_eq!(disk[0][1], Value::I64(309));
        assert_eq!(disk[0][2], Value::I64(3));
    }

    #[test]
    fn select_survives_flush() {
        let (s, _) = session();
        setup_usage(&s);
        s.db().flush_all().unwrap();
        let got = rows(
            s.execute("SELECT device, SUM(bytes) FROM usage WHERE network = 2 GROUP BY device")
                .unwrap(),
        );
        assert_eq!(got.len(), 3);
    }
}
