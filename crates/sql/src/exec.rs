//! Statement execution against an embedded engine [`Db`].

use crate::ast::{AggFunc, CmpOp, ColumnAst, GroupExpr, Literal, Select, SelectItem, Statement};
use crate::plan::{cmp_values, plan_select, Plan, Residual};
use littletable_core::db::Db;
use littletable_core::error::{Error, Result};
use littletable_core::keyenc;
use littletable_core::query::Query;
use littletable_core::resultcache::{CachedRows, ResultKey};
use littletable_core::rollup::{bucket_of, distinct_bytes};
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::stats::TableStats;
use littletable_core::table::{ColumnPredicate, PredOp, PushdownRequest, ScanUnit, Table};
use littletable_core::value::{ColumnType, Value};
use littletable_hll::HyperLogLog;
use littletable_vfs::Micros;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lowers a residual WHERE conjunct to an engine pushdown predicate.
/// The two evaluate identically (same `cmp_values` semantics), which is
/// what lets the engine's zone maps prune blocks for them soundly.
fn to_predicate(r: &Residual) -> ColumnPredicate {
    ColumnPredicate {
        col: r.col,
        op: match r.op {
            CmpOp::Eq => PredOp::Eq,
            CmpOp::Ne => PredOp::Ne,
            CmpOp::Lt => PredOp::Lt,
            CmpOp::Le => PredOp::Le,
            CmpOp::Gt => PredOp::Gt,
            CmpOp::Ge => PredOp::Ge,
        },
        value: r.value.clone(),
    }
}

/// One resolved GROUP BY expression: a column, optionally rounded down
/// to `bucket`-micro boundaries (TIME_BUCKET).
struct GroupSpec {
    col: usize,
    bucket: Option<i64>,
}

impl GroupSpec {
    /// The group value this expression yields for a row value.
    fn value(&self, v: &Value) -> Result<Value> {
        match self.bucket {
            None => Ok(v.clone()),
            Some(w) => {
                let ts = v.as_timestamp()?;
                Ok(Value::Timestamp(ts - ts.rem_euclid(w)))
            }
        }
    }
}

/// One resolved aggregate in the SELECT list.
struct AggSpec {
    func: AggFunc,
    col: Option<usize>,
    distinct: bool,
}

/// Where a GROUP BY expression reads from when serving off a rollup
/// table: a dimension column (same index as in the base key prefix) or
/// the bucket-start timestamp re-bucketed to the query's width.
enum GroupSrc {
    Dim(usize),
    Bucket(i64),
}

/// Where one aggregate reads from in a rollup row.
enum RollupAgg {
    /// COUNT(*) / COUNT(col): the `rows` column.
    Rows,
    /// SUM(v): the `{v}_sum` column (partial sums add).
    Sum(usize),
    /// MIN(v): the `{v}_min` column.
    Min(usize),
    /// MAX(v): the `{v}_max` column.
    Max(usize),
    /// AVG(v): `{v}_sum` with the `rows` count.
    Avg(usize),
    /// COUNT(DISTINCT d): the `{d}_hll` sketch column.
    Hll(usize),
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// DDL succeeded.
    Done,
    /// Rows affected (INSERT reports accepted rows; duplicates are
    /// silently skipped per the engine's uniqueness semantics).
    Count(u64),
    /// A result set.
    Rows {
        /// Column labels.
        columns: Vec<String>,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
}

/// A SQL session over an engine handle.
pub struct Session {
    db: Db,
}

impl Session {
    /// Creates a session.
    pub fn new(db: Db) -> Session {
        Session { db }
    }

    /// The underlying database.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Parses and executes one statement.
    pub fn execute(&self, sql: &str) -> Result<SqlOutput> {
        let stmt = crate::parser::parse(sql)?;
        self.run(stmt)
    }

    fn run(&self, stmt: Statement) -> Result<SqlOutput> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                ttl,
            } => {
                let now = self.db.now();
                let cols: Vec<ColumnDef> = columns
                    .iter()
                    .map(|c| self.column_def(c, now))
                    .collect::<Result<_>>()?;
                let keys: Vec<&str> = primary_key.iter().map(String::as_str).collect();
                let schema = Schema::new(cols, &keys)?;
                self.db.create_table(&name, schema, ttl)?;
                Ok(SqlOutput::Done)
            }
            Statement::DropTable { name } => {
                self.db.drop_table(&name)?;
                Ok(SqlOutput::Done)
            }
            Statement::CreateRollup {
                name,
                base,
                period_micros,
                value_cols,
                distinct_cols,
            } => {
                self.db
                    .create_rollup(&name, &base, period_micros, value_cols, distinct_cols)?;
                Ok(SqlOutput::Done)
            }
            Statement::DropRollup { name } => {
                self.db.drop_rollup(&name)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterAddColumn { name, column } => {
                let now = self.db.now();
                let col = self.column_def(&column, now)?;
                self.db.table(&name)?.add_column(col)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterWidenColumn { name, column } => {
                self.db.table(&name)?.widen_column(&column)?;
                Ok(SqlOutput::Done)
            }
            Statement::AlterSetTtl { name, ttl } => {
                self.db.table(&name)?.set_ttl(ttl)?;
                Ok(SqlOutput::Done)
            }
            Statement::Insert {
                name,
                columns,
                rows,
            } => self.insert(&name, columns, rows),
            Statement::Select(sel) => self.select(&sel),
            Statement::ShowTables => Ok(SqlOutput::Rows {
                columns: vec!["table".into()],
                rows: self
                    .db
                    .list_tables()
                    .into_iter()
                    .map(|n| vec![Value::Str(n)])
                    .collect(),
            }),
            Statement::Describe { name } => {
                let t = self.db.table(&name)?;
                let schema = t.schema();
                let rows = schema
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let key_pos = schema.key_indices().iter().position(|&k| k == i);
                        vec![
                            Value::Str(c.name.clone()),
                            Value::Str(c.ty.to_string()),
                            Value::Str(key_pos.map(|p| format!("key[{p}]")).unwrap_or_default()),
                            Value::Str(c.default.to_string()),
                        ]
                    })
                    .collect();
                Ok(SqlOutput::Rows {
                    columns: vec![
                        "column".into(),
                        "type".into(),
                        "key".into(),
                        "default".into(),
                    ],
                    rows,
                })
            }
        }
    }

    fn column_def(&self, c: &ColumnAst, now: i64) -> Result<ColumnDef> {
        Ok(match &c.default {
            None => ColumnDef::new(&c.name, c.ty),
            Some(lit) => ColumnDef::with_default(&c.name, c.ty, lit.to_value(c.ty, now)?),
        })
    }

    fn insert(
        &self,
        name: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Literal>>,
    ) -> Result<SqlOutput> {
        let t = self.db.table(name)?;
        let schema = t.schema();
        let now = self.db.now();
        // Map listed columns to schema slots.
        let slots: Vec<usize> = match &columns {
            None => (0..schema.num_columns()).collect(),
            Some(names) => names
                .iter()
                .map(|n| {
                    schema
                        .column_index(n)
                        .ok_or_else(|| Error::invalid(format!("no column {n:?}")))
                })
                .collect::<Result<_>>()?,
        };
        let ts_index = schema.ts_index();
        let mut full_rows = Vec::with_capacity(rows.len());
        for lits in rows {
            if lits.len() != slots.len() {
                return Err(Error::invalid(format!(
                    "row has {} values but {} columns are listed",
                    lits.len(),
                    slots.len()
                )));
            }
            let mut values: Vec<Option<Value>> = vec![None; schema.num_columns()];
            for (lit, &slot) in lits.iter().zip(&slots) {
                let ty = schema.columns()[slot].ty;
                values[slot] = Some(lit.to_value(ty, now)?);
            }
            // Unlisted columns: the timestamp gets "now" (§3.1: clients may
            // omit it); everything else takes its schema default.
            let row: Vec<Value> = values
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    v.unwrap_or_else(|| {
                        if i == ts_index {
                            Value::Timestamp(now)
                        } else {
                            schema.columns()[i].default.clone()
                        }
                    })
                })
                .collect();
            full_rows.push(row);
        }
        let report = t.insert(full_rows)?;
        Ok(SqlOutput::Count(report.inserted as u64))
    }

    fn select(&self, sel: &Select) -> Result<SqlOutput> {
        let t = self.db.table(&sel.table)?;
        let schema = t.schema();
        let now = self.db.now();
        let mut plan = plan_select(sel, &schema, now)?;

        let has_aggregates = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        let grouped = has_aggregates || !sel.group_by.is_empty();

        // The engine's limit counts pre-residual/pre-aggregation rows, so
        // only push it down for plain scans with no residual filters.
        if grouped || !plan.residual.is_empty() {
            plan.query.limit = None;
        } else {
            plan.query.limit = sel.limit;
        }

        if !grouped {
            return self.plain_select(sel, &schema, plan);
        }

        // Validate the projection: bare columns and time buckets must be
        // grouped.
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::invalid("* cannot be mixed with aggregates"))
                }
                SelectItem::Column(name) => {
                    let grouped = sel
                        .group_by
                        .iter()
                        .any(|g| matches!(g, GroupExpr::Column(n) if n == name));
                    if !grouped {
                        return Err(Error::invalid(format!(
                            "column {name:?} must appear in GROUP BY"
                        )));
                    }
                }
                SelectItem::TimeBucket {
                    column,
                    width_micros,
                } => {
                    let grouped = sel.group_by.iter().any(|g| {
                        matches!(g, GroupExpr::TimeBucket { column: c, width_micros: w }
                            if c == column && w == width_micros)
                    });
                    if !grouped {
                        return Err(Error::invalid(
                            "TIME_BUCKET in SELECT must appear in GROUP BY",
                        ));
                    }
                }
                SelectItem::Aggregate { .. } => {}
            }
        }
        let group_specs: Vec<GroupSpec> = sel
            .group_by
            .iter()
            .map(|g| {
                let (name, bucket) = match g {
                    GroupExpr::Column(n) => (n, None),
                    GroupExpr::TimeBucket {
                        column,
                        width_micros,
                    } => (column, Some(*width_micros)),
                };
                let col = schema
                    .column_index(name)
                    .ok_or_else(|| Error::invalid(format!("no column {name:?}")))?;
                let ty = schema.columns()[col].ty;
                if bucket.is_some() && ty != ColumnType::Timestamp {
                    return Err(Error::invalid("TIME_BUCKET requires a TIMESTAMP column"));
                }
                if bucket.is_none() && ty == ColumnType::F64 {
                    return Err(Error::invalid("cannot GROUP BY a double column"));
                }
                Ok(GroupSpec { col, bucket })
            })
            .collect::<Result<_>>()?;
        let agg_specs: Vec<AggSpec> = sel
            .items
            .iter()
            .filter_map(|item| match item {
                SelectItem::Aggregate {
                    func,
                    column,
                    distinct,
                } => Some((func, column, *distinct)),
                _ => None,
            })
            .map(|(func, column, distinct)| {
                let idx = match column {
                    None => None,
                    Some(n) => Some(
                        schema
                            .column_index(n)
                            .ok_or_else(|| Error::invalid(format!("no column {n:?}")))?,
                    ),
                };
                Ok(AggSpec {
                    func: *func,
                    col: idx,
                    distinct,
                })
            })
            .collect::<Result<_>>()?;

        // Grouped/aggregate results are cached keyed on the table's
        // identity (generation), write position (insert sequence), TTL
        // horizon, and the normalized question; any of those changing
        // invalidates the entry by missing.
        let ttl_cutoff = t
            .ttl()
            .map(|ttl| now.saturating_sub(ttl))
            .unwrap_or(Micros::MIN);
        let cache = self.db.result_cache().cloned();
        let cache_key = cache.as_ref().map(|_| ResultKey {
            generation: t.generation(),
            insert_seq: t.insert_seq(),
            ttl_cutoff,
            question: question_bytes(sel, &schema, &plan, &group_specs, &agg_specs),
        });
        if let (Some(rc), Some(key)) = (&cache, &cache_key) {
            if let Some(hit) = rc.get(key) {
                TableStats::add(&t.stats().result_cache_hits, 1);
                return Ok(SqlOutput::Rows {
                    columns: hit.columns.clone(),
                    rows: hit.rows.clone(),
                });
            }
            TableStats::add(&t.stats().result_cache_misses, 1);
        }

        // Group on the memcmp encoding of the group-by values so groups
        // come out in key-compatible order. Prefer serving off a rollup
        // table (pre-aggregated partials plus un-rolled-up tail scans);
        // fall back to the engine's columnar pushdown over the base.
        let mut groups: BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = BTreeMap::new();
        let rollup_served = self.try_rollup_groups(
            &t,
            &sel.table,
            &schema,
            &plan,
            &group_specs,
            &agg_specs,
            &mut groups,
        )?;
        if !rollup_served {
            self.scan_groups(
                &t,
                plan.query.clone(),
                &plan.residual,
                &group_specs,
                &agg_specs,
                &mut groups,
            )?;
        }

        // Assemble output in SELECT-list order.
        let mut columns = Vec::new();
        for item in &sel.items {
            columns.push(match item {
                SelectItem::Column(n) => n.clone(),
                SelectItem::TimeBucket { column, .. } => format!("time_bucket({column})"),
                SelectItem::Aggregate {
                    func,
                    column,
                    distinct,
                } => format!(
                    "{}({}{})",
                    match func {
                        AggFunc::Count => "count",
                        AggFunc::Sum => "sum",
                        AggFunc::Min => "min",
                        AggFunc::Max => "max",
                        AggFunc::Avg => "avg",
                    },
                    if *distinct { "distinct " } else { "" },
                    column.as_deref().unwrap_or("*")
                ),
                SelectItem::Wildcard => unreachable!(),
            });
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (_, (group_vals, states)) in groups {
            let mut out = Vec::with_capacity(sel.items.len());
            let mut agg_i = 0;
            for item in &sel.items {
                match item {
                    SelectItem::Column(n) => {
                        let pos = sel
                            .group_by
                            .iter()
                            .position(|g| matches!(g, GroupExpr::Column(gn) if gn == n))
                            .unwrap();
                        out.push(group_vals[pos].clone());
                    }
                    SelectItem::TimeBucket {
                        column,
                        width_micros,
                    } => {
                        let pos = sel
                            .group_by
                            .iter()
                            .position(|g| {
                                matches!(g, GroupExpr::TimeBucket { column: c, width_micros: w }
                                    if c == column && w == width_micros)
                            })
                            .unwrap();
                        out.push(group_vals[pos].clone());
                    }
                    SelectItem::Aggregate { .. } => {
                        out.push(states[agg_i].finish());
                        agg_i += 1;
                    }
                    SelectItem::Wildcard => unreachable!(),
                }
            }
            rows.push(out);
            if let Some(limit) = sel.limit {
                if rows.len() >= limit {
                    break;
                }
            }
        }
        if let (Some(rc), Some(key)) = (cache, cache_key) {
            // Quiescence guard: only cache if no insert landed while the
            // scan ran, so an entry never claims a write position it did
            // not actually observe.
            if t.insert_seq() == key.insert_seq {
                rc.put(
                    key,
                    Arc::new(CachedRows {
                        columns: columns.clone(),
                        rows: rows.clone(),
                    }),
                );
            }
        }
        Ok(SqlOutput::Rows { columns, rows })
    }

    fn plain_select(
        &self,
        sel: &Select,
        schema: &Schema,
        plan: crate::plan::Plan,
    ) -> Result<SqlOutput> {
        // Projection slots.
        let mut columns = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.columns().iter().enumerate() {
                        columns.push(c.name.clone());
                        slots.push(i);
                    }
                }
                SelectItem::Column(n) => {
                    let i = schema
                        .column_index(n)
                        .ok_or_else(|| Error::invalid(format!("no column {n:?}")))?;
                    columns.push(n.clone());
                    slots.push(i);
                }
                SelectItem::TimeBucket { .. } => {
                    return Err(Error::invalid("TIME_BUCKET requires GROUP BY"))
                }
                SelectItem::Aggregate { .. } => unreachable!("handled by caller"),
            }
        }
        let t = self.db.table(&sel.table)?;
        let mut cur = t.query(&plan.query)?;
        let mut rows = Vec::new();
        while let Some(row) = cur.next_row()? {
            if !plan.residual.iter().all(|r| r.matches(&row.values)) {
                continue;
            }
            rows.push(slots.iter().map(|&i| row.values[i].clone()).collect());
            if let Some(limit) = sel.limit {
                if rows.len() >= limit {
                    break;
                }
            }
        }
        Ok(SqlOutput::Rows { columns, rows })
    }

    /// Aggregates base-table rows matching `query` into `groups` via the
    /// engine's columnar pushdown: footer stats and decoded column slices
    /// where possible, materialized rows only at box boundaries and for
    /// pre-columnar tablets.
    fn scan_groups(
        &self,
        t: &Arc<Table>,
        query: Query,
        residual: &[Residual],
        group_specs: &[GroupSpec],
        agg_specs: &[AggSpec],
        groups: &mut BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>,
    ) -> Result<()> {
        // COUNT/MIN/MAX over an ungrouped scan can be answered from
        // footer statistics alone; SUM/AVG/DISTINCT (and any GROUP BY)
        // must see the values.
        let stats_cols: Option<Vec<usize>> = if group_specs.is_empty() {
            let mut cols = Vec::new();
            let mut ok = true;
            for a in agg_specs {
                match (a.func, a.col, a.distinct) {
                    (_, _, true) => ok = false,
                    (AggFunc::Count, _, _) => {}
                    (AggFunc::Min | AggFunc::Max, Some(i), _) => cols.push(i),
                    _ => ok = false,
                }
            }
            ok.then_some(cols)
        } else {
            None
        };
        let req = PushdownRequest {
            query,
            predicates: residual.iter().map(to_predicate).collect(),
            stats_cols,
        };
        let new_states = || -> Vec<AggState> { agg_specs.iter().map(AggState::new).collect() };
        t.pushdown_scan(&req, &mut |unit| {
            match unit {
                ScanUnit::Stats { rows, zones } => {
                    // Only issued when group_specs is empty: one group.
                    let entry = groups
                        .entry(Vec::new())
                        .or_insert_with(|| (Vec::new(), new_states()));
                    for (state, a) in entry.1.iter_mut().zip(agg_specs) {
                        state.update_stats(rows, a.col.and_then(|c| zones[c].as_ref()))?;
                    }
                }
                ScanUnit::Block { block, uncertain } => {
                    let slice = |c: usize| {
                        block
                            .column(c)
                            .ok_or_else(|| Error::invalid("columnar block is missing a column"))
                    };
                    for ri in 0..block.len() {
                        let mut pass = true;
                        for &pi in &uncertain {
                            let p = &req.predicates[pi];
                            if !p.matches(&slice(p.col)?.value(ri)) {
                                pass = false;
                                break;
                            }
                        }
                        if !pass {
                            continue;
                        }
                        let mut key = Vec::new();
                        let mut vals = Vec::with_capacity(group_specs.len());
                        for spec in group_specs {
                            let v = spec.value(&slice(spec.col)?.value(ri))?;
                            keyenc::encode_component(&mut key, &v)?;
                            vals.push(v);
                        }
                        let entry = groups.entry(key).or_insert_with(|| (vals, new_states()));
                        for (state, a) in entry.1.iter_mut().zip(agg_specs) {
                            let v = match a.col {
                                Some(c) => Some(slice(c)?.value(ri)),
                                None => None,
                            };
                            state.update(v.as_ref())?;
                        }
                    }
                }
                ScanUnit::Rows(rows) => {
                    // Already filtered by bounds and every predicate.
                    for row in rows {
                        let mut key = Vec::new();
                        let mut vals = Vec::with_capacity(group_specs.len());
                        for spec in group_specs {
                            let v = spec.value(&row.values[spec.col])?;
                            keyenc::encode_component(&mut key, &v)?;
                            vals.push(v);
                        }
                        let entry = groups.entry(key).or_insert_with(|| (vals, new_states()));
                        for (state, a) in entry.1.iter_mut().zip(agg_specs) {
                            state.update(a.col.map(|c| &row.values[c]))?;
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// Tries to answer a grouped aggregate from one of the base table's
    /// rollups. Returns `true` when `groups` was fully populated (rollup
    /// partials plus un-rolled-up tail scans of the base); `false` means
    /// no registered rollup can serve this query and the caller should
    /// run the ordinary pushdown.
    #[allow(clippy::too_many_arguments)]
    fn try_rollup_groups(
        &self,
        t: &Arc<Table>,
        table_name: &str,
        schema: &Schema,
        plan: &Plan,
        group_specs: &[GroupSpec],
        agg_specs: &[AggSpec],
        groups: &mut BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>,
    ) -> Result<bool> {
        // Residual predicates reference raw rows the rollup no longer
        // has; any residual disqualifies the rewrite.
        if !plan.residual.is_empty() {
            return Ok(false);
        }
        let mut specs = self.db.rollup_specs_for(table_name);
        if specs.is_empty() {
            return Ok(false);
        }
        // Coarser periods mean fewer partial rows to merge; try those
        // first.
        specs.sort_by_key(|s| std::cmp::Reverse(s.period));
        let key_cols = schema.key_indices();
        let n_dims = key_cols.len() - 1;
        let ts_idx = schema.ts_index();
        'spec: for spec in specs {
            if spec.period <= 0 {
                continue;
            }
            // Every GROUP BY expression must be answerable from the
            // rollup key: a dim column verbatim, or TIME_BUCKET whose
            // width is a whole multiple of the rollup period.
            let mut group_srcs = Vec::with_capacity(group_specs.len());
            for g in group_specs {
                match g.bucket {
                    Some(w) => {
                        if g.col != ts_idx || w <= 0 || w % spec.period != 0 {
                            continue 'spec;
                        }
                        group_srcs.push(GroupSrc::Bucket(w));
                    }
                    None => match key_cols[..n_dims].iter().position(|&k| k == g.col) {
                        Some(j) => group_srcs.push(GroupSrc::Dim(j)),
                        None => continue 'spec,
                    },
                }
            }
            // Every aggregate must map onto a maintained stat column.
            let stats_base = n_dims + 3;
            let n_vals = spec.value_cols.len();
            let mut aggs = Vec::with_capacity(agg_specs.len());
            for a in agg_specs {
                let src = if a.distinct {
                    let name = match a.col {
                        Some(c) => schema.columns()[c].name.as_str(),
                        None => continue 'spec,
                    };
                    match spec.distinct_cols.iter().position(|c| c == name) {
                        Some(di) => RollupAgg::Hll(stats_base + 3 * n_vals + di),
                        None => continue 'spec,
                    }
                } else if a.func == AggFunc::Count {
                    // The engine has no NULLs, so COUNT(col) == COUNT(*).
                    RollupAgg::Rows
                } else {
                    let name = match a.col {
                        Some(c) => schema.columns()[c].name.as_str(),
                        None => continue 'spec,
                    };
                    let Some(vi) = spec.value_cols.iter().position(|c| c == name) else {
                        continue 'spec;
                    };
                    let base = stats_base + 3 * vi;
                    match a.func {
                        AggFunc::Sum => RollupAgg::Sum(base),
                        AggFunc::Min => RollupAgg::Min(base + 1),
                        AggFunc::Max => RollupAgg::Max(base + 2),
                        AggFunc::Avg => RollupAgg::Avg(base),
                        AggFunc::Count => unreachable!(),
                    }
                };
                aggs.push(src);
            }
            let Ok(rtable) = self.db.table(&spec.name) else {
                continue 'spec;
            };
            if self.serve_rollup(
                t,
                &rtable,
                spec.period,
                n_dims,
                &group_srcs,
                &aggs,
                plan,
                group_specs,
                agg_specs,
                groups,
            )? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serves one eligible grouped aggregate off `rtable`. The timestamp
    /// window splits three ways: whole rollup buckets inside
    /// `[r_lo, r_hi)` come from the rollup's partials, and the ragged
    /// ends — below the first whole bucket (bounded additionally by the
    /// base's TTL horizon) and at or above the rollup watermark — are
    /// scanned from the base. Partial aggregates are additive, so a
    /// group straddling the split merges correctly. Returns `false`
    /// when the window contains no whole bucket (caller falls back).
    #[allow(clippy::too_many_arguments)]
    fn serve_rollup(
        &self,
        t: &Arc<Table>,
        rtable: &Arc<Table>,
        period: Micros,
        n_dims: usize,
        group_srcs: &[GroupSrc],
        aggs: &[RollupAgg],
        plan: &Plan,
        group_specs: &[GroupSpec],
        agg_specs: &[AggSpec],
        groups: &mut BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>,
    ) -> Result<bool> {
        let now = self.db.now();
        let (q_lo, q_hi) = plan.query.ts_interval();
        if q_lo > q_hi {
            return Ok(false);
        }
        // Buckets straddling the base's TTL horizon would resurrect
        // expired rows; the low tail scan below re-applies the TTL
        // filter row by row instead.
        let cutoff = t
            .ttl()
            .map(|ttl| now.saturating_sub(ttl))
            .unwrap_or(Micros::MIN);
        let watermark = t.rollup_watermark();
        // 128-bit arithmetic so bucket alignment cannot overflow at the
        // extremes of the timestamp range.
        let p = period as i128;
        let floor_p = |x: i128| -> i128 { x.div_euclid(p) * p };
        let lo = q_lo.max(cutoff) as i128;
        let r_lo = {
            let f = floor_p(lo);
            if f == lo {
                f
            } else {
                f + p
            }
        };
        let r_hi = floor_p(q_hi as i128 + 1).min(floor_p(watermark as i128));
        if r_hi <= r_lo {
            return Ok(false);
        }
        let (r_lo, r_hi) = (r_lo as Micros, r_hi as Micros);

        // Whole buckets from the rollup. The plan's key bounds only ever
        // name dim columns, which lead the rollup's key too, so they
        // transfer verbatim.
        let mut rq = Query::all()
            .with_ts_min(r_lo, true)
            .with_ts_max(r_hi, false);
        rq.key_min = plan.query.key_min.clone();
        rq.key_max = plan.query.key_max.clone();
        let new_states = || -> Vec<AggState> { agg_specs.iter().map(AggState::new).collect() };
        let mut cur = rtable.query(&rq)?;
        while let Some(row) = cur.next_row()? {
            let bucket_ts = match &row.values[n_dims + 1] {
                Value::Timestamp(b) => *b,
                v => return Err(Error::corrupt(format!("bad rollup bucket value {v}"))),
            };
            let rows_n = match &row.values[n_dims + 2] {
                Value::I64(n) => *n,
                v => return Err(Error::corrupt(format!("bad rollup row count {v}"))),
            };
            let mut key = Vec::new();
            let mut vals = Vec::with_capacity(group_srcs.len());
            for gs in group_srcs {
                let v = match gs {
                    GroupSrc::Dim(j) => row.values[*j].clone(),
                    GroupSrc::Bucket(w) => Value::Timestamp(bucket_of(bucket_ts, *w)),
                };
                keyenc::encode_component(&mut key, &v)?;
                vals.push(v);
            }
            let entry = groups.entry(key).or_insert_with(|| (vals, new_states()));
            for (state, src) in entry.1.iter_mut().zip(aggs) {
                match src {
                    RollupAgg::Rows => {
                        if let AggState::Count(n) = state {
                            *n += rows_n as u64;
                        }
                    }
                    RollupAgg::Sum(c) | RollupAgg::Min(c) | RollupAgg::Max(c) => {
                        state.update(Some(&row.values[*c]))?;
                    }
                    RollupAgg::Avg(c) => {
                        let s = match &row.values[*c] {
                            Value::I64(v) => *v as f64,
                            Value::F64(v) => *v,
                            v => return Err(Error::corrupt(format!("bad rollup sum value {v}"))),
                        };
                        if let AggState::Avg(acc, n) = state {
                            *acc += s;
                            *n += rows_n as u64;
                        }
                    }
                    RollupAgg::Hll(c) => {
                        let Value::Blob(b) = &row.values[*c] else {
                            return Err(Error::corrupt("bad rollup sketch column"));
                        };
                        let h = HyperLogLog::from_bytes(b)
                            .ok_or_else(|| Error::corrupt("undecodable rollup HLL sketch"))?;
                        if let AggState::Distinct(d) = state {
                            d.merge(&h);
                        }
                    }
                }
            }
        }

        // Ragged ends from the base table (skipped when empty, so a
        // fully covered window reads zero base-table blocks).
        if q_lo < r_lo {
            let q1 = plan.query.clone().with_ts_max(r_lo - 1, true);
            self.scan_groups(t, q1, &plan.residual, group_specs, agg_specs, groups)?;
        }
        if r_hi <= q_hi {
            let q2 = plan.query.clone().with_ts_min(r_hi, true);
            self.scan_groups(t, q2, &plan.residual, group_specs, agg_specs, groups)?;
        }
        TableStats::add(&t.stats().rollup_hits, 1);
        Ok(true)
    }
}

/// Serializes everything that determines a grouped query's answer
/// besides the table's contents, for use as a result-cache key. Two
/// queries with equal bytes and an unchanged table return the same
/// rows.
fn question_bytes(
    sel: &Select,
    schema: &Schema,
    plan: &Plan,
    group_specs: &[GroupSpec],
    agg_specs: &[AggSpec],
) -> Vec<u8> {
    let mut q = Vec::new();
    q.extend_from_slice(&schema.version().to_le_bytes());
    let (lo, hi) = plan.query.ts_interval();
    q.extend_from_slice(&lo.to_le_bytes());
    q.extend_from_slice(&hi.to_le_bytes());
    q.push(plan.query.descending as u8);
    let put_value = |q: &mut Vec<u8>, v: &Value| {
        let d = distinct_bytes(v);
        q.extend_from_slice(&(d.len() as u32).to_le_bytes());
        q.extend_from_slice(&d);
    };
    for bound in [&plan.query.key_min, &plan.query.key_max] {
        match bound {
            None => q.push(0),
            Some(b) => {
                q.push(1 + b.inclusive as u8);
                q.extend_from_slice(&(b.values.len() as u32).to_le_bytes());
                for v in &b.values {
                    put_value(&mut q, v);
                }
            }
        }
    }
    q.extend_from_slice(&(plan.residual.len() as u32).to_le_bytes());
    for r in &plan.residual {
        q.extend_from_slice(&(r.col as u32).to_le_bytes());
        q.push(r.op as u8);
        put_value(&mut q, &r.value);
    }
    q.extend_from_slice(&(group_specs.len() as u32).to_le_bytes());
    for g in group_specs {
        q.extend_from_slice(&(g.col as u32).to_le_bytes());
        q.extend_from_slice(&g.bucket.unwrap_or(0).to_le_bytes());
    }
    q.extend_from_slice(&(agg_specs.len() as u32).to_le_bytes());
    for a in agg_specs {
        q.push(a.func as u8);
        q.push(a.distinct as u8);
        q.extend_from_slice(&(a.col.map(|c| c as u32 + 1).unwrap_or(0)).to_le_bytes());
    }
    q.extend_from_slice(&(sel.limit.map(|l| l as u64 + 1).unwrap_or(0)).to_le_bytes());
    q
}

/// Streaming aggregate state.
#[derive(Debug)]
enum AggState {
    Count(u64),
    SumInt(i64, bool),
    SumFloat(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, u64),
    Distinct(HyperLogLog),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        if spec.distinct {
            return AggState::Distinct(HyperLogLog::default_precision());
        }
        match spec.func {
            AggFunc::Count => AggState::Count(0),
            // SUM starts integral and switches to float on first float.
            AggFunc::Sum => AggState::SumInt(0, false),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc, seen) => match value {
                Some(Value::I32(v)) => {
                    *acc += *v as i64;
                    *seen = true;
                }
                Some(Value::I64(v)) | Some(Value::Timestamp(v)) => {
                    *acc += v;
                    *seen = true;
                }
                Some(Value::F64(v)) => {
                    *self = AggState::SumFloat(*acc as f64 + v);
                }
                Some(v) => return Err(Error::invalid(format!("SUM over non-numeric value {v}"))),
                None => return Err(Error::invalid("SUM requires a column")),
            },
            AggState::SumFloat(acc) => match value {
                Some(Value::I32(v)) => *acc += *v as f64,
                Some(Value::I64(v)) | Some(Value::Timestamp(v)) => *acc += *v as f64,
                Some(Value::F64(v)) => *acc += v,
                Some(v) => return Err(Error::invalid(format!("SUM over non-numeric value {v}"))),
                None => return Err(Error::invalid("SUM requires a column")),
            },
            AggState::Min(cur) => {
                let v = value.ok_or_else(|| Error::invalid("MIN requires a column"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => cmp_values(v, c) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = value.ok_or_else(|| Error::invalid("MAX requires a column"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => cmp_values(v, c) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Avg(acc, n) => {
                let v = value.ok_or_else(|| Error::invalid("AVG requires a column"))?;
                let x = match v {
                    Value::I32(v) => *v as f64,
                    Value::I64(v) => *v as f64,
                    Value::Timestamp(v) => *v as f64,
                    Value::F64(v) => *v,
                    v => return Err(Error::invalid(format!("AVG over non-numeric value {v}"))),
                };
                *acc += x;
                *n += 1;
            }
            AggState::Distinct(h) => {
                let v = value.ok_or_else(|| Error::invalid("COUNT(DISTINCT) requires a column"))?;
                h.add_bytes(&distinct_bytes(v));
            }
        }
        Ok(())
    }

    /// Folds a whole block's footer statistics into the state: `rows`
    /// rows whose aggregated column spans `zone`. Only COUNT/MIN/MAX
    /// can do this — the scan never produces stats units otherwise.
    fn update_stats(&mut self, rows: u64, zone: Option<&(Value, Value)>) -> Result<()> {
        let v = match self {
            AggState::Count(n) => {
                *n += rows;
                return Ok(());
            }
            AggState::Min(_) => zone.map(|(lo, _)| lo.clone()),
            AggState::Max(_) => zone.map(|(_, hi)| hi.clone()),
            _ => return Err(Error::invalid("aggregate cannot fold footer statistics")),
        };
        let v = v.ok_or_else(|| Error::invalid("stats scan unit without a zone map"))?;
        self.update(Some(&v))
    }

    fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::I64(*n as i64),
            AggState::SumInt(acc, _) => Value::I64(*acc),
            AggState::SumFloat(acc) => Value::F64(*acc),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::I64(0)),
            AggState::Avg(acc, n) => {
                if *n == 0 {
                    Value::F64(0.0)
                } else {
                    Value::F64(acc / *n as f64)
                }
            }
            AggState::Distinct(h) => Value::I64(h.estimate().round() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::Options;
    use littletable_vfs::{SimClock, SimVfs};
    use std::sync::Arc;

    const START: i64 = 1_700_000_000_000_000;

    fn session() -> (Session, SimClock) {
        let clock = SimClock::new(START);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        (Session::new(db), clock)
    }

    fn rows(out: SqlOutput) -> Vec<Vec<Value>> {
        match out {
            SqlOutput::Rows { rows, .. } => rows,
            o => panic!("expected rows, got {o:?}"),
        }
    }

    fn setup_usage(s: &Session) {
        s.execute(
            "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, \
             bytes INT64, PRIMARY KEY (network, device, ts))",
        )
        .unwrap();
        // 2 networks x 3 devices x 5 samples.
        for net in 1..=2 {
            for dev in 1..=3 {
                for i in 0..5 {
                    s.execute(&format!(
                        "INSERT INTO usage VALUES ({net}, {dev}, {}, {})",
                        START + i * 1_000_000,
                        100 * dev + i
                    ))
                    .unwrap();
                }
            }
        }
    }

    #[test]
    fn create_insert_select_round_trip() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(s.execute("SELECT * FROM usage WHERE network = 1").unwrap());
        assert_eq!(got.len(), 15);
        let got = rows(
            s.execute("SELECT bytes FROM usage WHERE network = 1 AND device = 2")
                .unwrap(),
        );
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], vec![Value::I64(200)]);
    }

    #[test]
    fn aggregates_with_group_by() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute(
                "SELECT device, SUM(bytes), COUNT(*) FROM usage \
                 WHERE network = 1 GROUP BY device",
            )
            .unwrap(),
        );
        assert_eq!(got.len(), 3);
        // device 1: 100+101+102+103+104 = 510
        assert_eq!(got[0], vec![Value::I64(1), Value::I64(510), Value::I64(5)]);
        assert_eq!(got[1][0], Value::I64(2));
        assert_eq!(got[1][1], Value::I64(1010));
    }

    #[test]
    fn global_aggregates_without_group_by() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute("SELECT COUNT(*), MIN(bytes), MAX(bytes), AVG(device) FROM usage")
                .unwrap(),
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0], Value::I64(30));
        assert_eq!(got[0][1], Value::I64(100));
        assert_eq!(got[0][2], Value::I64(304));
        assert_eq!(got[0][3], Value::F64(2.0));
    }

    #[test]
    fn time_bounds_and_now() {
        let (s, clock) = session();
        setup_usage(&s);
        clock.set(START + 10_000_000);
        // Last 3 seconds relative to NOW(): samples i=2,3,4 are at
        // START+2s..START+4s; NOW()-8s = START+2s.
        let got = rows(
            s.execute(
                "SELECT * FROM usage WHERE network = 1 AND device = 1 \
                 AND ts >= NOW() - INTERVAL '8s'",
            )
            .unwrap(),
        );
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn order_and_limit() {
        let (s, _) = session();
        setup_usage(&s);
        let got = rows(
            s.execute("SELECT device FROM usage WHERE network = 1 ORDER BY network DESC LIMIT 4")
                .unwrap(),
        );
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], vec![Value::I64(3)]);
        // Residual filter + limit: limit applies after filtering.
        let got = rows(
            s.execute("SELECT device, bytes FROM usage WHERE bytes >= 300 LIMIT 3")
                .unwrap(),
        );
        assert_eq!(got.len(), 3);
        for r in &got {
            assert!(matches!(r[1], Value::I64(b) if b >= 300));
        }
    }

    #[test]
    fn insert_defaults_and_server_timestamp() {
        let (s, clock) = session();
        s.execute(
            "CREATE TABLE ev (n INT64, ts TIMESTAMP, msg TEXT DEFAULT 'none', \
             PRIMARY KEY (n, ts))",
        )
        .unwrap();
        clock.set(START + 42);
        s.execute("INSERT INTO ev (n) VALUES (7)").unwrap();
        let got = rows(s.execute("SELECT * FROM ev").unwrap());
        assert_eq!(
            got[0],
            vec![
                Value::I64(7),
                Value::Timestamp(START + 42),
                Value::Str("none".into())
            ]
        );
    }

    #[test]
    fn ddl_statements() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, c INT32, PRIMARY KEY (n, ts))")
            .unwrap();
        s.execute("ALTER TABLE t ADD COLUMN note TEXT DEFAULT '-'")
            .unwrap();
        s.execute("ALTER TABLE t WIDEN COLUMN c").unwrap();
        s.execute("ALTER TABLE t SET TTL '90d'").unwrap();
        let desc = rows(s.execute("DESCRIBE t").unwrap());
        assert_eq!(desc.len(), 4);
        assert_eq!(desc[2][1], Value::Str("int64".into())); // widened
        let tables = rows(s.execute("SHOW TABLES").unwrap());
        assert_eq!(tables.len(), 1);
        s.execute("DROP TABLE t").unwrap();
        assert!(s.execute("SELECT * FROM t").is_err());
    }

    #[test]
    fn duplicate_inserts_are_skipped() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, PRIMARY KEY (n, ts))")
            .unwrap();
        assert_eq!(
            s.execute("INSERT INTO t VALUES (1, 5), (1, 5), (2, 5)")
                .unwrap(),
            SqlOutput::Count(2)
        );
    }

    #[test]
    fn errors_are_reported() {
        let (s, _) = session();
        assert!(s.execute("SELECT * FROM missing").is_err());
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, v DOUBLE, PRIMARY KEY (n, ts))")
            .unwrap();
        assert!(s.execute("SELECT nope FROM t").is_err());
        assert!(s.execute("SELECT n, SUM(v) FROM t").is_err()); // n not grouped
        assert!(s.execute("SELECT *, COUNT(*) FROM t").is_err());
        assert!(s.execute("SELECT v, COUNT(*) FROM t GROUP BY v").is_err()); // group by double
        assert!(s.execute("INSERT INTO t (n) VALUES (1, 2)").is_err()); // arity
        assert!(s.execute("INSERT INTO t VALUES ('x', 1, 2.0)").is_err()); // type
    }

    #[test]
    fn sum_switches_to_float() {
        let (s, _) = session();
        s.execute("CREATE TABLE t (n INT64, ts TIMESTAMP, v DOUBLE, PRIMARY KEY (n, ts))")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 1, 1.5), (1, 2, 2.5)")
            .unwrap();
        let got = rows(s.execute("SELECT SUM(v) FROM t").unwrap());
        assert_eq!(got[0][0], Value::F64(4.0));
    }

    #[test]
    fn time_bucket_group_by() {
        let (s, _) = session();
        s.execute("CREATE TABLE m (n INT64, ts TIMESTAMP, v INT64, PRIMARY KEY (n, ts))")
            .unwrap();
        // 4 samples per hour across 3 hours, aligned to START.
        for h in 0..3i64 {
            for i in 0..4i64 {
                s.execute(&format!(
                    "INSERT INTO m VALUES (1, {}, {})",
                    START + h * 3_600_000_000 + i * 60_000_000,
                    h * 10 + i
                ))
                .unwrap();
            }
        }
        let q = "SELECT TIME_BUCKET(ts, INTERVAL '1h'), COUNT(*), SUM(v) FROM m \
                 GROUP BY TIME_BUCKET(ts, INTERVAL '1h')";
        let expect = |got: Vec<Vec<Value>>| {
            assert_eq!(got.len(), 3);
            for (h, row) in got.iter().enumerate() {
                let h = h as i64;
                let bucket = START + h * 3_600_000_000;
                let bucket = bucket - bucket.rem_euclid(3_600_000_000);
                assert_eq!(
                    row,
                    &vec![
                        Value::Timestamp(bucket),
                        Value::I64(4),
                        Value::I64(40 * h + 6)
                    ]
                );
            }
        };
        expect(rows(s.execute(q).unwrap()));
        // Same answer from disk, where the pushdown path takes over.
        s.db().flush_all().unwrap();
        expect(rows(s.execute(q).unwrap()));
        // TIME_BUCKET must be grouped, and must see a timestamp column.
        assert!(s
            .execute("SELECT TIME_BUCKET(ts, INTERVAL '1h') FROM m")
            .is_err());
        assert!(s
            .execute(
                "SELECT TIME_BUCKET(v, INTERVAL '1h'), COUNT(*) FROM m \
                 GROUP BY TIME_BUCKET(v, INTERVAL '1h')"
            )
            .is_err());
    }

    #[test]
    fn count_min_max_answer_from_footer_stats() {
        let (s, _) = session();
        setup_usage(&s);
        s.db().flush_all().unwrap();
        let before = s.db().table("usage").unwrap().stats().snapshot();
        let got = rows(
            s.execute("SELECT COUNT(*), MIN(bytes), MAX(bytes) FROM usage")
                .unwrap(),
        );
        assert_eq!(
            got[0],
            vec![Value::I64(30), Value::I64(100), Value::I64(304)]
        );
        let after = s.db().table("usage").unwrap().stats().snapshot();
        assert_eq!(after.pushdown_scans, before.pushdown_scans + 1);
        assert_eq!(
            after.rows_materialized, before.rows_materialized,
            "COUNT/MIN/MAX over the whole table must not materialize rows"
        );
    }

    #[test]
    fn pushdown_aggregates_match_row_path() {
        let (s, _) = session();
        setup_usage(&s);
        let q = "SELECT device, SUM(bytes), COUNT(*), AVG(bytes) FROM usage \
                 WHERE network = 2 AND bytes >= 102 GROUP BY device";
        let mem = rows(s.execute(q).unwrap());
        s.db().flush_all().unwrap();
        let disk = rows(s.execute(q).unwrap());
        assert_eq!(mem, disk);
        assert_eq!(disk.len(), 3);
        // device 1: bytes 102,103,104 → sum 309, count 3.
        assert_eq!(disk[0][1], Value::I64(309));
        assert_eq!(disk[0][2], Value::I64(3));
    }

    #[test]
    fn select_survives_flush() {
        let (s, _) = session();
        setup_usage(&s);
        s.db().flush_all().unwrap();
        let got = rows(
            s.execute("SELECT device, SUM(bytes) FROM usage WHERE network = 2 GROUP BY device")
                .unwrap(),
        );
        assert_eq!(got.len(), 3);
    }

    const HOUR: i64 = 3_600_000_000;

    /// 4 samples per hour for 3 hours, flushed and rolled up hourly.
    /// Returns the first whole bucket boundary at or before START.
    fn setup_rolled_metrics(s: &Session) -> i64 {
        s.execute(
            "CREATE TABLE m (n INT64, ts TIMESTAMP, v INT64, u TEXT, \
             PRIMARY KEY (n, ts))",
        )
        .unwrap();
        for h in 0..3i64 {
            for i in 0..4i64 {
                s.execute(&format!(
                    "INSERT INTO m VALUES (1, {}, {}, 'u{}')",
                    START + h * HOUR + i * 60_000_000,
                    h * 10 + i,
                    i % 3
                ))
                .unwrap();
            }
        }
        s.db().flush_all().unwrap();
        s.execute("CREATE ROLLUP m_1h ON m PERIOD '1h' AGGREGATE (v) DISTINCT (u)")
            .unwrap();
        START - START.rem_euclid(HOUR)
    }

    #[test]
    fn rollup_serves_time_bucket_aggregates_with_zero_base_reads() {
        let (s, _) = session();
        let b0 = setup_rolled_metrics(&s);
        let before = s.db().table("m").unwrap().stats().snapshot();
        // Bucket-aligned window covering all samples: both tail scans
        // are empty, so the base table is not read at all.
        let q = format!(
            "SELECT TIME_BUCKET(ts, INTERVAL '1h'), COUNT(*), SUM(v), \
             MIN(v), MAX(v), AVG(v) FROM m \
             WHERE ts >= {b0} AND ts < {} \
             GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
            b0 + 4 * HOUR
        );
        let got = rows(s.execute(&q).unwrap());
        assert_eq!(got.len(), 3);
        for (h, row) in got.iter().enumerate() {
            let h = h as i64;
            let base = h * 10;
            assert_eq!(
                row,
                &vec![
                    Value::Timestamp(b0 + h * HOUR),
                    Value::I64(4),
                    Value::I64(4 * base + 6),
                    Value::I64(base),
                    Value::I64(base + 3),
                    Value::F64((4 * base + 6) as f64 / 4.0),
                ]
            );
        }
        let after = s.db().table("m").unwrap().stats().snapshot();
        assert_eq!(after.rollup_hits, before.rollup_hits + 1);
        assert_eq!(
            after.pushdown_scans, before.pushdown_scans,
            "rollup-covered window must not scan the base table"
        );
        assert_eq!(after.rows_materialized, before.rows_materialized);
        // The identical question again is a result-cache hit; the
        // rollup is not consulted a second time.
        let again = rows(s.execute(&q).unwrap());
        assert_eq!(again.len(), 3);
        let cached = s.db().table("m").unwrap().stats().snapshot();
        assert_eq!(cached.result_cache_hits, after.result_cache_hits + 1);
        assert_eq!(cached.rollup_hits, after.rollup_hits);
    }

    #[test]
    fn rollup_answers_match_base_scan() {
        let (s, _) = session();
        let b0 = setup_rolled_metrics(&s);
        // Unaligned window and a dim GROUP BY: rollup partials plus a
        // base tail must agree with a pure base scan of the same rows.
        let q = format!(
            "SELECT n, COUNT(*), SUM(v), AVG(v) FROM m \
             WHERE ts >= {} AND ts < {} GROUP BY n",
            b0 + HOUR,
            b0 + 2 * HOUR + 30 * 60_000_000
        );
        let served = rows(s.execute(&q).unwrap());
        assert_eq!(s.db().table("m").unwrap().stats().snapshot().rollup_hits, 1);
        // Dropping the rollup forces the ordinary pushdown. The drop
        // does not change the base table's cache key, so vary the
        // question (a no-op LIMIT) to dodge the result cache and force
        // a recomputation.
        s.execute("DROP ROLLUP m_1h").unwrap();
        let base = rows(s.execute(&format!("{q} LIMIT 100")).unwrap());
        assert_eq!(served, base);
    }

    #[test]
    fn rollup_tail_sees_rows_inserted_after_backfill() {
        let (s, _) = session();
        let b0 = setup_rolled_metrics(&s);
        let q = format!(
            "SELECT TIME_BUCKET(ts, INTERVAL '1h'), SUM(v), COUNT(*) FROM m \
             WHERE ts >= {b0} AND ts < {} \
             GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
            b0 + 4 * HOUR
        );
        let before = rows(s.execute(&q).unwrap());
        assert_eq!(before[1][1], Value::I64(46));
        // A row landing in an already-rolled-up bucket moves the
        // watermark back; the next query must not serve the stale
        // cached result or the stale rollup coverage.
        s.execute(&format!(
            "INSERT INTO m VALUES (1, {}, 1000, 'u9')",
            START + HOUR + 30 * 60_000_000
        ))
        .unwrap();
        let after = rows(s.execute(&q).unwrap());
        assert_eq!(after[1][1], Value::I64(1046));
        assert_eq!(after[1][2], Value::I64(5));
    }

    #[test]
    fn count_distinct_via_hll() {
        let (s, _) = session();
        let b0 = setup_rolled_metrics(&s);
        // Ungrouped, unbounded: ragged tails scan the base, sketches
        // cover the whole buckets; the union still counts 3 users.
        let got = rows(s.execute("SELECT COUNT(DISTINCT u) FROM m").unwrap());
        assert_eq!(got[0][0], Value::I64(3));
        // Rollup path: sketches merge across buckets and agree.
        let q = format!(
            "SELECT n, COUNT(DISTINCT u) FROM m \
             WHERE ts >= {b0} AND ts < {} GROUP BY n",
            b0 + 4 * HOUR
        );
        let hits0 = s.db().table("m").unwrap().stats().snapshot().rollup_hits;
        let got = rows(s.execute(&q).unwrap());
        assert_eq!(got, vec![vec![Value::I64(1), Value::I64(3)]]);
        assert_eq!(
            s.db().table("m").unwrap().stats().snapshot().rollup_hits,
            hits0 + 1
        );
        // DISTINCT on a column without a sketch falls back to scanning.
        let got = rows(
            s.execute(&format!(
                "SELECT n, COUNT(DISTINCT v) FROM m \
                 WHERE ts >= {b0} AND ts < {} GROUP BY n",
                b0 + 4 * HOUR
            ))
            .unwrap(),
        );
        assert_eq!(got, vec![vec![Value::I64(1), Value::I64(12)]]);
    }

    #[test]
    fn result_cache_hit_miss_and_invalidation() {
        let (s, _) = session();
        setup_usage(&s);
        let q = "SELECT device, SUM(bytes) FROM usage WHERE network = 1 GROUP BY device";
        let first = rows(s.execute(q).unwrap());
        let snap = s.db().table("usage").unwrap().stats().snapshot();
        assert_eq!(snap.result_cache_misses, 1);
        assert_eq!(snap.result_cache_hits, 0);
        let second = rows(s.execute(q).unwrap());
        assert_eq!(first, second);
        let snap = s.db().table("usage").unwrap().stats().snapshot();
        assert_eq!(snap.result_cache_hits, 1);
        // Any insert changes the table's insert_seq and so the key:
        // the stale entry can never be served again.
        s.execute(&format!(
            "INSERT INTO usage VALUES (1, 2, {}, 7000)",
            START + 60_000_000
        ))
        .unwrap();
        let third = rows(s.execute(q).unwrap());
        assert_ne!(first, third);
        assert_eq!(third[1][1], Value::I64(8010));
        let snap = s.db().table("usage").unwrap().stats().snapshot();
        assert_eq!(snap.result_cache_hits, 1);
        assert_eq!(snap.result_cache_misses, 2);
    }

    #[test]
    fn create_and_drop_rollup_sql() {
        let (s, _) = session();
        setup_usage(&s);
        s.execute("CREATE ROLLUP usage_1h ON usage PERIOD '1h' AGGREGATE (bytes)")
            .unwrap();
        assert!(s.db().table("usage_1h").is_ok());
        // Rollups are not insert targets and cannot be re-rolled.
        assert!(s
            .execute("CREATE ROLLUP r2 ON usage_1h PERIOD '2h'")
            .is_err());
        assert!(s
            .execute("CREATE ROLLUP nope ON missing PERIOD '1h'")
            .is_err());
        s.execute("DROP ROLLUP usage_1h").unwrap();
        assert!(s.db().table("usage_1h").is_err());
        assert!(s.execute("DROP ROLLUP usage_1h").is_err());
        // DROP ROLLUP does not accept plain tables.
        assert!(s.execute("DROP ROLLUP usage").is_err());
    }
}
