//! Recursive-descent parser for the LittleTable SQL dialect.

use crate::ast::*;
use crate::token::{lex, Sym, Token};
use littletable_core::error::{Error, Result};
use littletable_core::value::ColumnType;

/// Parses one statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semi);
    if !p.at_end() {
        return Err(Error::invalid(format!(
            "unexpected trailing tokens at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Parses a duration like `'90d'`, `'36h'`, `'15m'`, `'30s'`, `'20ms'`
/// into micros.
pub fn parse_duration(s: &str) -> Result<i64> {
    let s = s.trim();
    if s.is_empty() {
        return Err(Error::invalid("empty duration"));
    }
    let split = s
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| Error::invalid("duration missing unit (us/ms/s/m/h/d/w)"))?;
    let (num, unit) = s.split_at(split);
    let n: i64 = num
        .parse()
        .map_err(|_| Error::invalid(format!("bad duration number {num:?}")))?;
    let mult = match unit {
        "us" => 1,
        "ms" => 1_000,
        "s" => 1_000_000,
        "m" => 60 * 1_000_000,
        "h" => 3_600 * 1_000_000,
        "d" => 86_400 * 1_000_000,
        "w" => 7 * 86_400 * 1_000_000,
        u => return Err(Error::invalid(format!("unknown duration unit {u:?}"))),
    };
    Ok(n * mult)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::invalid("unexpected end of statement"))?;
        self.pos += 1;
        Ok(t)
    }

    /// Consumes an identifier token, returning it verbatim.
    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            t => Err(Error::invalid(format!("expected identifier, got {t:?}"))),
        }
    }

    /// True (and consumes) when the next token is the given keyword,
    /// case-insensitively.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "expected {kw}, got {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "expected {sym:?}, got {:?}",
                self.peek()
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("ROLLUP") {
                self.create_rollup()
            } else {
                self.create_table()
            }
        } else if self.eat_kw("DROP") {
            if self.eat_kw("ROLLUP") {
                Ok(Statement::DropRollup {
                    name: self.ident()?,
                })
            } else {
                self.expect_kw("TABLE")?;
                Ok(Statement::DropTable {
                    name: self.ident()?,
                })
            }
        } else if self.eat_kw("ALTER") {
            self.alter()
        } else if self.eat_kw("INSERT") {
            self.insert()
        } else if self.eat_kw("SELECT") {
            self.select().map(Statement::Select)
        } else if self.eat_kw("SHOW") {
            self.expect_kw("TABLES")?;
            Ok(Statement::ShowTables)
        } else if self.eat_kw("DESCRIBE") || self.eat_kw("DESC") {
            Ok(Statement::Describe {
                name: self.ident()?,
            })
        } else {
            Err(Error::invalid(format!(
                "expected a statement, got {:?}",
                self.peek()
            )))
        }
    }

    fn column_type(&mut self) -> Result<ColumnType> {
        let name = self.ident()?;
        Ok(match name.to_ascii_uppercase().as_str() {
            "INT32" => ColumnType::I32,
            "INT64" | "BIGINT" | "INT" | "INTEGER" => ColumnType::I64,
            "DOUBLE" | "REAL" | "FLOAT" => ColumnType::F64,
            "TIMESTAMP" => ColumnType::Timestamp,
            "TEXT" | "STRING" | "VARCHAR" => ColumnType::Str,
            "BLOB" | "BYTES" => ColumnType::Blob,
            t => return Err(Error::invalid(format!("unknown type {t}"))),
        })
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.next()? {
            Token::Int(i) => Ok(Literal::Int(i)),
            Token::Float(f) => Ok(Literal::Float(f)),
            Token::Str(s) => Ok(Literal::Str(s)),
            Token::Blob(b) => Ok(Literal::Blob(b)),
            Token::Symbol(Sym::Minus) => match self.next()? {
                Token::Int(i) => Ok(Literal::Int(-i)),
                Token::Float(f) => Ok(Literal::Float(-f)),
                t => Err(Error::invalid(format!(
                    "expected number after '-', got {t:?}"
                ))),
            },
            Token::Ident(s) if s.eq_ignore_ascii_case("NOW") => {
                self.expect_sym(Sym::LParen)?;
                self.expect_sym(Sym::RParen)?;
                let mut offset = 0i64;
                if self.eat_sym(Sym::Minus) {
                    offset = -self.interval()?;
                } else if self.eat_sym(Sym::Plus) {
                    offset = self.interval()?;
                }
                Ok(Literal::Now {
                    offset_micros: offset,
                })
            }
            t => Err(Error::invalid(format!("expected a literal, got {t:?}"))),
        }
    }

    fn interval(&mut self) -> Result<i64> {
        self.expect_kw("INTERVAL")?;
        match self.next()? {
            Token::Str(s) => parse_duration(&s),
            t => Err(Error::invalid(format!(
                "expected a duration string after INTERVAL, got {t:?}"
            ))),
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_sym(Sym::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
                self.expect_sym(Sym::RParen)?;
            } else {
                let cname = self.ident()?;
                let ty = self.column_type()?;
                let default = if self.eat_kw("DEFAULT") {
                    Some(self.literal()?)
                } else {
                    None
                };
                columns.push(ColumnAst {
                    name: cname,
                    ty,
                    default,
                });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        let ttl = if self.eat_kw("TTL") {
            match self.next()? {
                Token::Str(s) => Some(parse_duration(&s)?),
                t => return Err(Error::invalid(format!("expected TTL duration, got {t:?}"))),
            }
        } else {
            None
        };
        if primary_key.is_empty() {
            return Err(Error::invalid("CREATE TABLE requires PRIMARY KEY (...)"));
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
            ttl,
        })
    }

    /// `CREATE ROLLUP r ON t PERIOD '1h' [AGGREGATE (a, b)] [DISTINCT (c)]`
    /// (the `CREATE ROLLUP` keywords are already consumed).
    fn create_rollup(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let base = self.ident()?;
        self.expect_kw("PERIOD")?;
        let period_micros = match self.next()? {
            Token::Str(s) => parse_duration(&s)?,
            t => {
                return Err(Error::invalid(format!(
                    "expected PERIOD duration, got {t:?}"
                )))
            }
        };
        let value_cols = if self.eat_kw("AGGREGATE") {
            self.paren_ident_list()?
        } else {
            Vec::new()
        };
        let distinct_cols = if self.eat_kw("DISTINCT") {
            self.paren_ident_list()?
        } else {
            Vec::new()
        };
        Ok(Statement::CreateRollup {
            name,
            base,
            period_micros,
            value_cols,
            distinct_cols,
        })
    }

    fn paren_ident_list(&mut self) -> Result<Vec<String>> {
        self.expect_sym(Sym::LParen)?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(cols)
    }

    fn alter(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        if self.eat_kw("ADD") {
            self.expect_kw("COLUMN")?;
            let cname = self.ident()?;
            let ty = self.column_type()?;
            let default = if self.eat_kw("DEFAULT") {
                Some(self.literal()?)
            } else {
                None
            };
            Ok(Statement::AlterAddColumn {
                name,
                column: ColumnAst {
                    name: cname,
                    ty,
                    default,
                },
            })
        } else if self.eat_kw("WIDEN") {
            self.expect_kw("COLUMN")?;
            Ok(Statement::AlterWidenColumn {
                name,
                column: self.ident()?,
            })
        } else if self.eat_kw("SET") {
            self.expect_kw("TTL")?;
            if self.eat_kw("NONE") {
                Ok(Statement::AlterSetTtl { name, ttl: None })
            } else {
                match self.next()? {
                    Token::Str(s) => Ok(Statement::AlterSetTtl {
                        name,
                        ttl: Some(parse_duration(&s)?),
                    }),
                    t => Err(Error::invalid(format!("expected TTL duration, got {t:?}"))),
                }
            }
        } else {
            Err(Error::invalid(
                "ALTER TABLE supports ADD COLUMN, WIDEN COLUMN, and SET TTL",
            ))
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let name = self.ident()?;
        let columns = if self.eat_sym(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            name,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<Select> {
        let mut items = Vec::new();
        loop {
            if self.eat_sym(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let name = self.ident()?;
                let func = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    "AVG" => Some(AggFunc::Avg),
                    _ => None,
                };
                match (func, self.peek()) {
                    (Some(func), Some(Token::Symbol(Sym::LParen))) => {
                        self.expect_sym(Sym::LParen)?;
                        let mut distinct = false;
                        let column = if self.eat_sym(Sym::Star) {
                            if func != AggFunc::Count {
                                return Err(Error::invalid("only COUNT accepts *"));
                            }
                            None
                        } else {
                            if self.eat_kw("DISTINCT") {
                                if func != AggFunc::Count {
                                    return Err(Error::invalid(
                                        "DISTINCT is only supported with COUNT",
                                    ));
                                }
                                distinct = true;
                            }
                            Some(self.ident()?)
                        };
                        self.expect_sym(Sym::RParen)?;
                        items.push(SelectItem::Aggregate {
                            func,
                            column,
                            distinct,
                        });
                    }
                    _ if name.eq_ignore_ascii_case("TIME_BUCKET")
                        && self.peek() == Some(&Token::Symbol(Sym::LParen)) =>
                    {
                        let (column, width_micros) = self.time_bucket_args()?;
                        items.push(SelectItem::TimeBucket {
                            column,
                            width_micros,
                        });
                    }
                    _ => items.push(SelectItem::Column(name)),
                }
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let mut conditions = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                conditions.push(self.condition()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                let name = self.ident()?;
                if name.eq_ignore_ascii_case("TIME_BUCKET")
                    && self.peek() == Some(&Token::Symbol(Sym::LParen))
                {
                    let (column, width_micros) = self.time_bucket_args()?;
                    group_by.push(GroupExpr::TimeBucket {
                        column,
                        width_micros,
                    });
                } else {
                    group_by.push(GroupExpr::Column(name));
                }
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        let mut order_desc = false;
        let mut has_order_by = false;
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            has_order_by = true;
            loop {
                order_by.push(self.ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            if self.eat_kw("DESC") {
                order_desc = true;
            } else {
                self.eat_kw("ASC");
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                t => return Err(Error::invalid(format!("expected LIMIT count, got {t:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            table,
            conditions,
            group_by,
            order_desc,
            has_order_by,
            order_by,
            limit,
        })
    }

    /// Parses the argument list of `TIME_BUCKET(col, INTERVAL '...')`,
    /// after the name and before the opening parenthesis.
    fn time_bucket_args(&mut self) -> Result<(String, i64)> {
        self.expect_sym(Sym::LParen)?;
        let column = self.ident()?;
        self.expect_sym(Sym::Comma)?;
        let width = self.interval()?;
        self.expect_sym(Sym::RParen)?;
        if width <= 0 {
            return Err(Error::invalid("TIME_BUCKET width must be positive"));
        }
        Ok((column, width))
    }

    fn condition(&mut self) -> Result<Condition> {
        let column = self.ident()?;
        let op = match self.next()? {
            Token::Symbol(Sym::Eq) => CmpOp::Eq,
            Token::Symbol(Sym::Ne) => CmpOp::Ne,
            Token::Symbol(Sym::Lt) => CmpOp::Lt,
            Token::Symbol(Sym::Le) => CmpOp::Le,
            Token::Symbol(Sym::Gt) => CmpOp::Gt,
            Token::Symbol(Sym::Ge) => CmpOp::Ge,
            t => return Err(Error::invalid(format!("expected comparison, got {t:?}"))),
        };
        let literal = self.literal()?;
        Ok(Condition {
            column,
            op,
            literal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse(
            "CREATE TABLE usage (
                network INT64,
                device INT64,
                ts TIMESTAMP,
                bytes INT64 DEFAULT -1,
                note TEXT DEFAULT 'n/a',
                PRIMARY KEY (network, device, ts)
            ) TTL '390d';",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                ttl,
            } => {
                assert_eq!(name, "usage");
                assert_eq!(columns.len(), 5);
                assert_eq!(columns[3].default, Some(Literal::Int(-1)));
                assert_eq!(primary_key, vec!["network", "device", "ts"]);
                assert_eq!(ttl, Some(390 * 86_400 * 1_000_000));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_insert() {
        let stmt = parse(
            "INSERT INTO usage (network, device, ts, bytes) \
             VALUES (1, 2, NOW(), 100), (1, 3, NOW() - INTERVAL '1m', 200)",
        )
        .unwrap();
        match stmt {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns.unwrap().len(), 4);
                assert_eq!(rows.len(), 2);
                assert_eq!(
                    rows[1][2],
                    Literal::Now {
                        offset_micros: -60_000_000
                    }
                );
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_select_with_everything() {
        let stmt = parse(
            "SELECT device, SUM(bytes), COUNT(*) FROM usage \
             WHERE network = 7 AND ts >= NOW() - INTERVAL '1w' AND ts < NOW() \
             GROUP BY device ORDER BY network, device DESC LIMIT 100",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 3);
                assert_eq!(s.conditions.len(), 3);
                assert_eq!(s.group_by, vec![GroupExpr::Column("device".into())]);
                assert!(s.order_desc);
                assert_eq!(s.limit, Some(100));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_time_bucket() {
        let stmt = parse(
            "SELECT TIME_BUCKET(ts, INTERVAL '1h'), COUNT(*) FROM usage \
             GROUP BY TIME_BUCKET(ts, INTERVAL '1h')",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(
                    s.items[0],
                    SelectItem::TimeBucket {
                        column: "ts".into(),
                        width_micros: 3_600_000_000
                    }
                );
                assert_eq!(
                    s.group_by,
                    vec![GroupExpr::TimeBucket {
                        column: "ts".into(),
                        width_micros: 3_600_000_000
                    }]
                );
            }
            s => panic!("unexpected {s:?}"),
        }
        // A column named time_bucket without parens is still a column.
        let stmt = parse("SELECT time_bucket FROM t").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items[0], SelectItem::Column("time_bucket".into()));
            }
            s => panic!("unexpected {s:?}"),
        }
        assert!(parse("SELECT TIME_BUCKET(ts) FROM t").is_err());
        assert!(parse("SELECT TIME_BUCKET(ts, INTERVAL '0s') FROM t").is_err());
    }

    #[test]
    fn parses_alter_variants() {
        assert!(matches!(
            parse("ALTER TABLE t ADD COLUMN x INT64 DEFAULT 0").unwrap(),
            Statement::AlterAddColumn { .. }
        ));
        assert!(matches!(
            parse("ALTER TABLE t WIDEN COLUMN x").unwrap(),
            Statement::AlterWidenColumn { .. }
        ));
        assert_eq!(
            parse("ALTER TABLE t SET TTL '1h'").unwrap(),
            Statement::AlterSetTtl {
                name: "t".into(),
                ttl: Some(3_600_000_000)
            }
        );
        assert_eq!(
            parse("ALTER TABLE t SET TTL NONE").unwrap(),
            Statement::AlterSetTtl {
                name: "t".into(),
                ttl: None
            }
        );
    }

    #[test]
    fn parses_create_and_drop_rollup() {
        assert_eq!(
            parse("CREATE ROLLUP usage_1h ON usage PERIOD '1h' AGGREGATE (bytes, load) DISTINCT (device)").unwrap(),
            Statement::CreateRollup {
                name: "usage_1h".into(),
                base: "usage".into(),
                period_micros: 3_600_000_000,
                value_cols: vec!["bytes".into(), "load".into()],
                distinct_cols: vec!["device".into()],
            }
        );
        assert_eq!(
            parse("CREATE ROLLUP r ON t PERIOD '15m'").unwrap(),
            Statement::CreateRollup {
                name: "r".into(),
                base: "t".into(),
                period_micros: 900_000_000,
                value_cols: vec![],
                distinct_cols: vec![],
            }
        );
        assert_eq!(
            parse("DROP ROLLUP usage_1h").unwrap(),
            Statement::DropRollup {
                name: "usage_1h".into()
            }
        );
        assert!(parse("CREATE ROLLUP r ON t").is_err());
        assert!(parse("CREATE ROLLUP r ON t PERIOD '1h' AGGREGATE ()").is_err());
    }

    #[test]
    fn parses_count_distinct() {
        let stmt = parse("SELECT COUNT(DISTINCT device), COUNT(device) FROM usage").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(
                    s.items[0],
                    SelectItem::Aggregate {
                        func: AggFunc::Count,
                        column: Some("device".into()),
                        distinct: true,
                    }
                );
                assert_eq!(
                    s.items[1],
                    SelectItem::Aggregate {
                        func: AggFunc::Count,
                        column: Some("device".into()),
                        distinct: false,
                    }
                );
            }
            s => panic!("unexpected {s:?}"),
        }
        assert!(parse("SELECT SUM(DISTINCT v) FROM t").is_err());
    }

    #[test]
    fn parses_misc() {
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::ShowTables);
        assert_eq!(
            parse("DESCRIBE t;").unwrap(),
            Statement::Describe { name: "t".into() }
        );
        assert!(matches!(
            parse("DROP TABLE old").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("CREATE TABLE t (a INT64)").is_err()); // no PK
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("SELECT * FROM t WHERE a LIKE 'x'").is_err());
        assert!(parse("SELECT * FROM t; garbage").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("250us").unwrap(), 250);
        assert_eq!(parse_duration("20ms").unwrap(), 20_000);
        assert_eq!(parse_duration("30s").unwrap(), 30_000_000);
        assert_eq!(parse_duration("2m").unwrap(), 120_000_000);
        assert_eq!(parse_duration("1h").unwrap(), 3_600_000_000);
        assert_eq!(parse_duration("1d").unwrap(), 86_400_000_000);
        assert_eq!(parse_duration("2w").unwrap(), 1_209_600_000_000);
        assert!(parse_duration("5x").is_err());
        assert!(parse_duration("h").is_err());
        assert!(parse_duration("").is_err());
    }
}
