//! WHERE-clause planning: turning conjunctions into the engine's
//! two-dimensional bounding box.
//!
//! The planner mirrors what the paper's SQLite adaptor does (§3.1):
//! equality conditions on a *prefix* of the primary-key columns become the
//! key bounds, a range on the next key column tightens them, and
//! conditions on the timestamp column become the time bounds. Whatever
//! cannot be absorbed into the box is kept as a residual filter evaluated
//! per row.

use crate::ast::{CmpOp, Select};
use littletable_core::error::{Error, Result};
use littletable_core::query::Query;
use littletable_core::schema::Schema;
use littletable_core::value::Value;
use littletable_vfs::Micros;
use std::cmp::Ordering;

/// Compares two values of the same family (integer/timestamp widths mix;
/// floats, strings, and blobs compare within their own type). Returns
/// `None` for incomparable types.
pub fn cmp_values(a: &Value, b: &Value) -> Option<Ordering> {
    use Value::*;
    let int = |v: &Value| match v {
        I32(x) => Some(*x as i64),
        I64(x) => Some(*x),
        Timestamp(x) => Some(*x),
        _ => None,
    };
    if let (Some(x), Some(y)) = (int(a), int(b)) {
        return Some(x.cmp(&y));
    }
    match (a, b) {
        (F64(x), F64(y)) => x.partial_cmp(y),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Blob(x), Blob(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A residual predicate: `row[col] op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Residual {
    /// Column index in the schema.
    pub col: usize,
    /// Operator.
    pub op: CmpOp,
    /// Comparison value.
    pub value: Value,
}

impl Residual {
    /// Evaluates the predicate against a row.
    pub fn matches(&self, row: &[Value]) -> bool {
        let ord = cmp_values(&row[self.col], &self.value);
        match (self.op, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            // Incomparable types never match (the planner has already
            // type-checked literals, so this is unreachable in practice).
            _ => false,
        }
    }
}

/// A planned SELECT scan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The bounding-box query to hand the engine.
    pub query: Query,
    /// Per-row filters the box could not express.
    pub residual: Vec<Residual>,
}

/// Plans the FROM/WHERE/ORDER BY/LIMIT part of a SELECT against `schema`.
pub fn plan_select(sel: &Select, schema: &Schema, now: Micros) -> Result<Plan> {
    // Resolve conditions to (column index, op, typed value).
    let mut resolved: Vec<(usize, CmpOp, Value)> = Vec::with_capacity(sel.conditions.len());
    for c in &sel.conditions {
        let idx = schema
            .column_index(&c.column)
            .ok_or_else(|| Error::invalid(format!("no column {:?}", c.column)))?;
        let value = c.literal.to_value(schema.columns()[idx].ty, now)?;
        resolved.push((idx, c.op, value));
    }
    let mut absorbed = vec![false; resolved.len()];

    let mut query = Query::all();

    // Timestamp conditions become the time dimension.
    let ts_idx = schema.ts_index();
    for (i, (col, op, value)) in resolved.iter().enumerate() {
        if *col != ts_idx {
            continue;
        }
        let ts = value.as_timestamp()?;
        match op {
            CmpOp::Eq => {
                query = query.with_ts_min(ts, true).with_ts_max(ts, true);
                absorbed[i] = true;
            }
            CmpOp::Ge => {
                query = tighten_ts_min(query, ts, true);
                absorbed[i] = true;
            }
            CmpOp::Gt => {
                query = tighten_ts_min(query, ts, false);
                absorbed[i] = true;
            }
            CmpOp::Le => {
                query = tighten_ts_max(query, ts, true);
                absorbed[i] = true;
            }
            CmpOp::Lt => {
                query = tighten_ts_max(query, ts, false);
                absorbed[i] = true;
            }
            CmpOp::Ne => {} // residual
        }
    }

    // Key-prefix conditions become the key dimension: equalities on a
    // prefix of the key columns, then at most one range on the next.
    let key_cols: Vec<usize> = schema.key_indices().to_vec();
    let mut eq_prefix: Vec<Value> = Vec::new();
    for &kc in &key_cols[..key_cols.len() - 1] {
        if let Some(i) = resolved
            .iter()
            .enumerate()
            .position(|(i, (col, op, _))| !absorbed[i] && *col == kc && *op == CmpOp::Eq)
        {
            absorbed[i] = true;
            eq_prefix.push(resolved[i].2.clone());
            continue;
        }
        // No equality: look for range bounds on this column, then stop.
        let mut lo: Option<(Value, bool)> = None;
        let mut hi: Option<(Value, bool)> = None;
        for (i, (col, op, value)) in resolved.iter().enumerate() {
            if absorbed[i] || *col != kc {
                continue;
            }
            match op {
                CmpOp::Ge | CmpOp::Gt => {
                    let incl = *op == CmpOp::Ge;
                    let tighter = match &lo {
                        None => true,
                        Some((cur, _)) => cmp_values(value, cur) == Some(Ordering::Greater),
                    };
                    if tighter {
                        lo = Some((value.clone(), incl));
                    }
                    absorbed[i] = true;
                }
                CmpOp::Le | CmpOp::Lt => {
                    let incl = *op == CmpOp::Le;
                    let tighter = match &hi {
                        None => true,
                        Some((cur, _)) => cmp_values(value, cur) == Some(Ordering::Less),
                    };
                    if tighter {
                        hi = Some((value.clone(), incl));
                    }
                    absorbed[i] = true;
                }
                _ => {}
            }
        }
        if let Some((v, incl)) = lo {
            let mut bound = eq_prefix.clone();
            bound.push(v);
            query = query.with_key_min(bound, incl);
        } else if !eq_prefix.is_empty() {
            query = query.with_key_min(eq_prefix.clone(), true);
        }
        if let Some((v, incl)) = hi {
            let mut bound = eq_prefix.clone();
            bound.push(v);
            query = query.with_key_max(bound, incl);
        } else if !eq_prefix.is_empty() {
            query = query.with_key_max(eq_prefix.clone(), true);
        }
        eq_prefix.clear(); // bounds emitted
        break;
    }
    if !eq_prefix.is_empty() {
        // Every non-ts key column had an equality: a pure prefix query.
        query = query.with_prefix(eq_prefix);
    }

    // Everything unabsorbed is a residual filter.
    let residual: Vec<Residual> = resolved
        .into_iter()
        .zip(absorbed)
        .filter(|(_, a)| !a)
        .map(|((col, op, value), _)| Residual { col, op, value })
        .collect();

    // ORDER BY must follow the primary key (the only order the engine
    // produces, §3.1).
    if sel.has_order_by {
        let key_names: Vec<&str> = schema
            .key_indices()
            .iter()
            .map(|&i| schema.columns()[i].name.as_str())
            .collect();
        if sel.order_by.len() > key_names.len()
            || !sel.order_by.iter().zip(&key_names).all(|(a, b)| a == b)
        {
            return Err(Error::invalid(
                "ORDER BY must be a prefix of the primary key columns",
            ));
        }
        if sel.order_desc {
            query = query.descending();
        }
    }
    Ok(Plan { query, residual })
}

fn tighten_ts_min(q: Query, ts: Micros, inclusive: bool) -> Query {
    let (cur_lo, _) = q.ts_interval();
    let new_lo = if inclusive { ts } else { ts.saturating_add(1) };
    if new_lo > cur_lo {
        q.with_ts_min(new_lo, true)
    } else {
        q
    }
}

fn tighten_ts_max(q: Query, ts: Micros, inclusive: bool) -> Query {
    let (_, cur_hi) = q.ts_interval();
    let new_hi = if inclusive { ts } else { ts.saturating_sub(1) };
    if new_hi < cur_hi {
        q.with_ts_max(new_hi, true)
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use littletable_core::schema::ColumnDef;
    use littletable_core::value::ColumnType;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("network", ColumnType::I64),
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("bytes", ColumnType::I64),
            ],
            &["network", "device", "ts"],
        )
        .unwrap()
    }

    fn plan(sql: &str) -> Plan {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("not a select");
        };
        plan_select(&sel, &schema(), 1_000_000).unwrap()
    }

    #[test]
    fn full_prefix_equalities_become_prefix_query() {
        let p = plan("SELECT * FROM t WHERE network = 7 AND device = 3");
        assert_eq!(
            p.query,
            Query::all().with_prefix(vec![Value::I64(7), Value::I64(3)])
        );
        assert!(p.residual.is_empty());
    }

    #[test]
    fn ts_conditions_become_time_bounds() {
        let p = plan("SELECT * FROM t WHERE network = 7 AND ts >= 100 AND ts < 200");
        assert_eq!(p.query.ts_interval(), (100, 199));
        assert!(p.residual.is_empty());
        assert_eq!(
            p.query.key_min.as_ref().unwrap().values,
            vec![Value::I64(7)]
        );
    }

    #[test]
    fn range_on_second_key_column() {
        let p = plan("SELECT * FROM t WHERE network = 7 AND device >= 10 AND device < 20");
        let min = p.query.key_min.unwrap();
        let max = p.query.key_max.unwrap();
        assert_eq!(min.values, vec![Value::I64(7), Value::I64(10)]);
        assert!(min.inclusive);
        assert_eq!(max.values, vec![Value::I64(7), Value::I64(20)]);
        assert!(!max.inclusive);
        assert!(p.residual.is_empty());
    }

    #[test]
    fn overlapping_ranges_take_tightest() {
        let p = plan("SELECT * FROM t WHERE network >= 5 AND network >= 8 AND network <= 20 AND network <= 12");
        assert_eq!(p.query.key_min.unwrap().values, vec![Value::I64(8)]);
        assert_eq!(p.query.key_max.unwrap().values, vec![Value::I64(12)]);
    }

    #[test]
    fn non_key_conditions_are_residual() {
        let p = plan("SELECT * FROM t WHERE network = 1 AND bytes > 100");
        assert_eq!(p.residual.len(), 1);
        assert_eq!(p.residual[0].col, 3);
        assert!(p.residual[0].matches(&[
            Value::I64(1),
            Value::I64(1),
            Value::Timestamp(0),
            Value::I64(101)
        ]));
        assert!(!p.residual[0].matches(&[
            Value::I64(1),
            Value::I64(1),
            Value::Timestamp(0),
            Value::I64(100)
        ]));
    }

    #[test]
    fn device_condition_without_network_is_residual() {
        // device is the second key column; without an equality on network
        // it cannot bound the scan.
        let p = plan("SELECT * FROM t WHERE device = 3");
        assert!(p.query.key_min.is_none());
        assert_eq!(p.residual.len(), 1);
    }

    #[test]
    fn ne_is_always_residual() {
        let p = plan("SELECT * FROM t WHERE network != 5 AND ts != 3");
        assert_eq!(p.residual.len(), 2);
        assert!(p.query.key_min.is_none());
    }

    #[test]
    fn order_by_validation() {
        let Statement::Select(sel) = parse("SELECT * FROM t ORDER BY device").unwrap() else {
            unreachable!()
        };
        assert!(plan_select(&sel, &schema(), 0).is_err());
        let p = plan("SELECT * FROM t ORDER BY network, device DESC");
        assert!(p.query.descending);
    }

    #[test]
    fn cmp_values_families() {
        assert_eq!(
            cmp_values(&Value::I32(5), &Value::I64(5)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            cmp_values(&Value::Timestamp(3), &Value::I64(9)),
            Some(Ordering::Less)
        );
        assert_eq!(
            cmp_values(&Value::Str("a".into()), &Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(cmp_values(&Value::Str("a".into()), &Value::I64(1)), None);
    }
}
