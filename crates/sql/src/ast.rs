//! Abstract syntax for the supported SQL dialect.
//!
//! The dialect covers what the paper's applications need (§2.3.2, §4):
//! table DDL with a clustering primary key and TTL, batched inserts,
//! bounded scans, and aggregation with GROUP BY.

use littletable_core::value::{ColumnType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE t (col type [DEFAULT lit], ..., PRIMARY KEY (a, b, ts)) [TTL '90d']`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnAst>,
        /// Primary-key column names, in key order.
        primary_key: Vec<String>,
        /// Optional TTL in micros.
        ttl: Option<i64>,
    },
    /// `DROP TABLE t`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE ROLLUP r ON t PERIOD '1h' [AGGREGATE (a, b)] [DISTINCT (c)]`
    CreateRollup {
        /// Rollup table name.
        name: String,
        /// Base table name.
        base: String,
        /// Bucket period in micros.
        period_micros: i64,
        /// Columns given SUM/MIN/MAX stats.
        value_cols: Vec<String>,
        /// Columns given HyperLogLog distinct sketches.
        distinct_cols: Vec<String>,
    },
    /// `DROP ROLLUP r`
    DropRollup {
        /// Rollup name.
        name: String,
    },
    /// `ALTER TABLE t ADD COLUMN c type [DEFAULT lit]`
    AlterAddColumn {
        /// Table name.
        name: String,
        /// The new column.
        column: ColumnAst,
    },
    /// `ALTER TABLE t WIDEN COLUMN c`
    AlterWidenColumn {
        /// Table name.
        name: String,
        /// Column name.
        column: String,
    },
    /// `ALTER TABLE t SET TTL '30d'` / `SET TTL NONE`
    AlterSetTtl {
        /// Table name.
        name: String,
        /// New TTL in micros, or `None`.
        ttl: Option<i64>,
    },
    /// `INSERT INTO t [(a, b, ...)] VALUES (...), (...)`
    Insert {
        /// Table name.
        name: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row literals.
        rows: Vec<Vec<Literal>>,
    },
    /// `SELECT ... FROM t [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n]`
    Select(Select),
    /// `SHOW TABLES`
    ShowTables,
    /// `DESCRIBE t`
    Describe {
        /// Table name.
        name: String,
    },
}

/// A column in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnAst {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Optional default literal.
    pub default: Option<Literal>,
}

/// A literal in SQL text. `Now` resolves to the engine clock at execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Blob literal.
    Blob(Vec<u8>),
    /// `NOW()`, optionally shifted: `NOW() - INTERVAL '1h'` is represented
    /// as `Now { offset_micros: -3_600_000_000 }`.
    Now {
        /// Signed shift from the current time, in micros.
        offset_micros: i64,
    },
}

impl Literal {
    /// Resolves the literal to an engine value for a column of type `ty`,
    /// given the current time.
    pub fn to_value(&self, ty: ColumnType, now: i64) -> littletable_core::Result<Value> {
        use littletable_core::error::Error;
        let v = match (self, ty) {
            (Literal::Int(i), ColumnType::I32) => Value::I32(
                i32::try_from(*i).map_err(|_| Error::invalid("integer out of i32 range"))?,
            ),
            (Literal::Int(i), ColumnType::I64) => Value::I64(*i),
            (Literal::Int(i), ColumnType::F64) => Value::F64(*i as f64),
            (Literal::Int(i), ColumnType::Timestamp) => Value::Timestamp(*i),
            (Literal::Float(f), ColumnType::F64) => Value::F64(*f),
            (Literal::Str(s), ColumnType::Str) => Value::Str(s.clone()),
            (Literal::Str(s), ColumnType::Blob) => Value::Blob(s.clone().into_bytes()),
            (Literal::Blob(b), ColumnType::Blob) => Value::Blob(b.clone()),
            (Literal::Now { offset_micros }, ColumnType::Timestamp) => {
                Value::Timestamp(now + offset_micros)
            }
            (l, ty) => {
                return Err(Error::invalid(format!(
                    "literal {l:?} does not fit column type {ty}"
                )))
            }
        };
        Ok(v)
    }
}

/// Comparison operators in WHERE clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct: `column op literal`. WHERE clauses are conjunctions.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub literal: Literal,
}

/// An item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A bare column.
    Column(String),
    /// An aggregate over a column (or `*` for COUNT).
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Column argument; `None` means `COUNT(*)`.
        column: Option<String>,
        /// `COUNT(DISTINCT col)`: approximate distinct count.
        distinct: bool,
    },
    /// `TIME_BUCKET(col, INTERVAL '...')`: the timestamp rounded down
    /// to a bucket boundary. Must also appear in GROUP BY.
    TimeBucket {
        /// Timestamp column argument.
        column: String,
        /// Bucket width in micros.
        width_micros: i64,
    },
}

/// A grouping expression in GROUP BY.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupExpr {
    /// A bare column.
    Column(String),
    /// `TIME_BUCKET(col, INTERVAL '...')`.
    TimeBucket {
        /// Timestamp column argument.
        column: String,
        /// Bucket width in micros.
        width_micros: i64,
    },
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Items in the projection.
    pub items: Vec<SelectItem>,
    /// Source table.
    pub table: String,
    /// Conjunctive WHERE conditions.
    pub conditions: Vec<Condition>,
    /// GROUP BY expressions.
    pub group_by: Vec<GroupExpr>,
    /// `true` for `ORDER BY <key prefix> DESC`.
    pub order_desc: bool,
    /// Whether an ORDER BY clause was present.
    pub has_order_by: bool,
    /// ORDER BY columns (must be a prefix of the primary key).
    pub order_by: Vec<String>,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}
