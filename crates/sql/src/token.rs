//! SQL lexer.

use littletable_core::error::{Error, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively; identifiers keep their case).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escapes resolved).
    Str(String),
    /// Hex blob literal `X'0a0b'`.
    Blob(Vec<u8>),
    /// Punctuation and operators.
    Symbol(Sym),
}

/// Operator / punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-`
    Minus,
    /// `+`
    Plus,
    /// `.`
    Dot,
}

/// Lexes `input` into tokens.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                // `--` comment to end of line.
                if b.get(i + 1) == Some(&b'-') {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Symbol(Sym::Minus));
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    return Err(Error::invalid("unexpected '!'"));
                }
            }
            '<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            'x' | 'X' if b.get(i + 1) == Some(&b'\'') => {
                let (s, next) = lex_string(input, i + 1)?;
                let mut bytes = Vec::with_capacity(s.len() / 2);
                let hs = s.as_bytes();
                if hs.len() % 2 != 0 {
                    return Err(Error::invalid("odd-length hex blob"));
                }
                for pair in hs.chunks(2) {
                    let hex = std::str::from_utf8(pair).unwrap();
                    bytes.push(
                        u8::from_str_radix(hex, 16)
                            .map_err(|_| Error::invalid("bad hex digit in blob"))?,
                    );
                }
                out.push(Token::Blob(bytes));
                i = next;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = input[start..i].replace('_', "");
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::invalid(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::invalid(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    let end = input[i + 1..]
                        .find('"')
                        .ok_or_else(|| Error::invalid("unterminated quoted identifier"))?;
                    out.push(Token::Ident(input[i + 1..i + 1 + end].to_string()));
                    i += end + 2;
                } else {
                    let start = i;
                    while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.push(Token::Ident(input[start..i].to_string()));
                }
            }
            c => return Err(Error::invalid(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    debug_assert_eq!(&input[start..start + 1], "'");
    let b = input.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < b.len() {
        if b[i] == b'\'' {
            if b.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance by whole UTF-8 characters.
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(Error::invalid("unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT a, sum(b) FROM t WHERE ts >= 100 AND n != 'x' -- c\n").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Symbol(Sym::Ne)));
        assert!(toks.contains(&Token::Str("x".into())));
        // Comment consumed.
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "c")));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("1_000").unwrap(), vec![Token::Int(1000)]);
        assert_eq!(lex("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Float(1000.0)]);
        // Negative numbers are Minus + Int at the lexer level.
        assert_eq!(
            lex("-7").unwrap(),
            vec![Token::Symbol(Sym::Minus), Token::Int(7)]
        );
    }

    #[test]
    fn lexes_strings_and_blobs() {
        assert_eq!(lex("'it''s'").unwrap(), vec![Token::Str("it's".into())]);
        assert_eq!(lex("x'0aFF'").unwrap(), vec![Token::Blob(vec![0x0A, 0xFF])]);
        assert!(lex("'unterminated").is_err());
        assert!(lex("x'0'").is_err());
    }

    #[test]
    fn lexes_quoted_identifiers() {
        assert_eq!(
            lex("\"weird name\"").unwrap(),
            vec![Token::Ident("weird name".into())]
        );
    }

    #[test]
    fn ne_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Symbol(Sym::Ne)]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Symbol(Sym::Ne)]);
        assert!(lex("!").is_err());
    }
}
