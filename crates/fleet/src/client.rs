//! The application-side fleet adaptor.

use crate::sim::{ArchiveOutcome, FleetError, FleetSim};
use littletable_client::Backoff;
use littletable_core::query::Query;
use littletable_core::row::Row;
use littletable_core::schema::{encode_value, Schema};
use littletable_core::value::Value;
use littletable_proto::{ErrorKind, Request, Response};
use littletable_vfs::Micros;
use std::collections::{HashMap, VecDeque};

/// One acknowledged operation kept for idempotent re-send: until an
/// archive tick proves the data reached the spare, a failover would
/// lose it, so the client — which *is* the durability story in this
/// design (§4) — holds enough to replay.
struct ReplayOp {
    req: Request,
}

/// A fleet-aware client: routes rows to shards by rendezvous hash of the
/// first key column, retries through failovers with bounded backoff,
/// re-sends acknowledged-but-unarchived batches to promoted spares, and
/// scatter-gathers queries across shards.
///
/// Re-sends are idempotent because the engine deduplicates on primary
/// key: a batch that was durable on the old primary *and* archived comes
/// back as `duplicates`, a batch that died with the memtable inserts
/// fresh — either way every acknowledged row is present exactly once.
pub struct FleetClient {
    schemas: HashMap<String, Schema>,
    /// Per shard, in acknowledgement order.
    replay: Vec<VecDeque<ReplayOp>>,
    /// Retry budget per logical operation.
    attempts: u32,
}

impl FleetClient {
    /// A client for a fleet of `shards` shards.
    pub fn new(shards: u32) -> FleetClient {
        FleetClient {
            schemas: HashMap::new(),
            replay: (0..shards).map(|_| VecDeque::new()).collect(),
            attempts: 8,
        }
    }

    /// Acknowledged operations not yet known to be archived for `shard`
    /// — the client's own durability exposure gauge.
    pub fn replay_len(&self, shard: u32) -> usize {
        self.replay[shard as usize].len()
    }

    /// Sends `req` to `shard`'s primary, failing over to the spare (and
    /// replaying unarchived acknowledged operations onto it) when the
    /// primary is dead. Backoff is bounded: when the budget runs out the
    /// shard is reported down.
    fn send_with_failover(
        &mut self,
        sim: &mut FleetSim,
        shard: u32,
        req: &Request,
    ) -> Result<Response, FleetError> {
        let mut backoff = Backoff::new(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(50),
            self.attempts,
        );
        loop {
            let primary = sim.map().route(shard).primary;
            match sim.node(primary).handle(req.clone()) {
                Some(Response::Error {
                    kind: ErrorKind::NotPrimary,
                    ..
                }) => {
                    // Stale routing (a role changed under us). The map is
                    // refreshed on every loop iteration; just back off.
                }
                Some(Response::Error { kind, message }) => {
                    return Err(FleetError::Remote { kind, message });
                }
                Some(resp) => return Ok(resp),
                None => {
                    // Primary is dead. Promote the spare if it is alive;
                    // otherwise the shard is genuinely down.
                    let spare = sim.map().route(shard).spare;
                    if sim.node_down(spare) {
                        return Err(FleetError::ShardDown(shard));
                    }
                    sim.failover(shard)?;
                    self.replay_to_primary(sim, shard)?;
                }
            }
            match backoff.next_delay() {
                // The sim has no wall clock to sleep on; charge the
                // delay to simulated time instead.
                Some(d) => sim.clock().advance(d.as_micros() as Micros),
                None => return Err(FleetError::ShardDown(shard)),
            }
        }
    }

    /// Replays this shard's acknowledged-but-unarchived operations onto
    /// the (just promoted) primary, oldest first.
    fn replay_to_primary(&mut self, sim: &mut FleetSim, shard: u32) -> Result<(), FleetError> {
        let primary = sim.map().route(shard).primary;
        for op in &self.replay[shard as usize] {
            match sim.node(primary).handle(op.req.clone()) {
                None => return Err(FleetError::ShardDown(shard)),
                Some(Response::Error {
                    kind: ErrorKind::TableExists,
                    ..
                }) => {} // CreateTable replay onto an archived table.
                Some(Response::Error { kind, message }) => {
                    return Err(FleetError::Remote { kind, message });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Creates `table` on every shard (each shard holds a slice of every
    /// table) and caches its schema for routing.
    pub fn create_table(
        &mut self,
        sim: &mut FleetSim,
        table: &str,
        schema: Schema,
        ttl: Option<Micros>,
    ) -> Result<(), FleetError> {
        for shard in 0..sim.shards() {
            let req = Request::CreateTable {
                table: table.to_string(),
                schema: schema.clone(),
                ttl,
            };
            match self.send_with_failover(sim, shard, &req)? {
                Response::Ok => {}
                r => {
                    return Err(FleetError::Engine(format!(
                        "create_table: unexpected response {r:?}"
                    )))
                }
            }
            self.replay[shard as usize].push_back(ReplayOp { req });
        }
        self.schemas.insert(table.to_string(), schema);
        Ok(())
    }

    /// Fetches (and caches) a table's schema from shard 0.
    pub fn schema(&mut self, sim: &mut FleetSim, table: &str) -> Result<Schema, FleetError> {
        if let Some(s) = self.schemas.get(table) {
            return Ok(s.clone());
        }
        let req = Request::GetSchema {
            table: table.to_string(),
        };
        match self.send_with_failover(sim, 0, &req)? {
            Response::SchemaInfo { schema, .. } => {
                self.schemas.insert(table.to_string(), schema.clone());
                Ok(schema)
            }
            r => Err(FleetError::Engine(format!(
                "schema: unexpected response {r:?}"
            ))),
        }
    }

    /// The shard a row lives on: rendezvous hash of the *first* key
    /// column only, so one device's whole history colocates (§2.2) while
    /// devices spread across shards.
    pub fn shard_for_row(
        &mut self,
        sim: &mut FleetSim,
        table: &str,
        row: &[Value],
    ) -> Result<u32, FleetError> {
        let schema = self.schema(sim, table)?;
        let first_key = schema.key_indices()[0];
        let mut bytes = Vec::new();
        encode_value(&mut bytes, &row[first_key]);
        Ok(sim.map().shard_for_key(&bytes))
    }

    /// Inserts rows, routing each to its shard and acknowledging only
    /// when every involved shard has acknowledged. Returns fleet-wide
    /// `(inserted, duplicates)`.
    pub fn insert(
        &mut self,
        sim: &mut FleetSim,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<(u64, u64), FleetError> {
        let mut by_shard: HashMap<u32, Vec<Vec<Option<Value>>>> = HashMap::new();
        for row in rows {
            let shard = self.shard_for_row(sim, table, &row)?;
            by_shard
                .entry(shard)
                .or_default()
                .push(row.into_iter().map(Some).collect());
        }
        let mut shards: Vec<u32> = by_shard.keys().copied().collect();
        shards.sort_unstable();
        let (mut inserted, mut duplicates) = (0u64, 0u64);
        for shard in shards {
            let req = Request::Insert {
                table: table.to_string(),
                rows: by_shard.remove(&shard).unwrap(),
            };
            match self.send_with_failover(sim, shard, &req)? {
                Response::InsertResult {
                    inserted: i,
                    duplicates: d,
                } => {
                    inserted += i;
                    duplicates += d;
                }
                r => {
                    return Err(FleetError::Engine(format!(
                        "insert: unexpected response {r:?}"
                    )))
                }
            }
            self.replay[shard as usize].push_back(ReplayOp { req });
        }
        Ok((inserted, duplicates))
    }

    /// Runs `query` on every shard — continuing each shard past its
    /// server row limit exactly like the single-node client — then
    /// merges the streams in primary-key order and applies the limit
    /// fleet-wide.
    pub fn query(
        &mut self,
        sim: &mut FleetSim,
        table: &str,
        query: &Query,
    ) -> Result<Vec<Vec<Value>>, FleetError> {
        let schema = self.schema(sim, table)?;
        let key_indices: Vec<usize> = schema.key_indices().to_vec();
        let mut all: Vec<Vec<Value>> = Vec::new();
        for shard in 0..sim.shards() {
            let mut q = query.clone();
            let mut got = 0usize;
            loop {
                let (rows, more) = match self.send_with_failover(
                    sim,
                    shard,
                    &Request::Query {
                        table: table.to_string(),
                        query: q.clone(),
                    },
                )? {
                    Response::Rows {
                        rows,
                        more_available,
                    } => (rows, more_available),
                    r => {
                        return Err(FleetError::Engine(format!(
                            "query: unexpected response {r:?}"
                        )))
                    }
                };
                got += rows.len();
                let last = rows.last().cloned();
                all.extend(rows);
                if let Some(limit) = query.limit {
                    if got >= limit {
                        break;
                    }
                }
                if !more {
                    break;
                }
                let last =
                    last.ok_or_else(|| FleetError::Engine("more_available with no rows".into()))?;
                let key_values: Vec<Value> = key_indices.iter().map(|&i| last[i].clone()).collect();
                if q.descending {
                    q = q.with_key_max(key_values, false);
                } else {
                    q = q.with_key_min(key_values, false);
                }
                if let Some(limit) = query.limit {
                    q.limit = Some(limit - got);
                }
            }
        }
        // Merge the per-shard streams into one key-ordered result.
        let mut keyed: Vec<(Vec<u8>, Vec<Value>)> = Vec::with_capacity(all.len());
        for row in all {
            let key = Row::new(row.clone())
                .encode_key(&schema)
                .map_err(|e| FleetError::Engine(e.to_string()))?;
            keyed.push((key, row));
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        if query.descending {
            keyed.reverse();
        }
        let mut out: Vec<Vec<Value>> = keyed.into_iter().map(|(_, r)| r).collect();
        if let Some(limit) = query.limit {
            out.truncate(limit);
        }
        Ok(out)
    }

    /// Repairs routing after node deaths: any shard whose mapped primary
    /// is down but whose spare is alive fails over *through the client*,
    /// so the acknowledged-but-unarchived tail is replayed onto the
    /// promoted node. Restarting a dead mapped primary without this step
    /// would silently drop its memtable — the harness calls `repair`
    /// before any `restart_node`.
    pub fn repair(&mut self, sim: &mut FleetSim) -> Result<(), FleetError> {
        for shard in 0..sim.shards() {
            let route = sim.map().route(shard).clone();
            if sim.node_down(route.primary) && !sim.node_down(route.spare) {
                sim.failover(shard)?;
                self.replay_to_primary(sim, shard)?;
            }
        }
        Ok(())
    }

    /// One archive tick across the fleet, trimming each shard's replay
    /// buffer when — and only when — its tick came back clean: data
    /// proven on the spare no longer needs the client to remember it.
    pub fn archive(&mut self, sim: &mut FleetSim) -> Vec<ArchiveOutcome> {
        let mut outcomes = Vec::with_capacity(sim.shards() as usize);
        for shard in 0..sim.shards() {
            let mark = self.replay[shard as usize].len();
            let outcome = sim.archive_shard(shard);
            if outcome.is_clean() {
                self.replay[shard as usize].drain(..mark);
            }
            outcomes.push(outcome);
        }
        outcomes
    }
}
