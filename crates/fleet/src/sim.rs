//! The cluster driver: boot, archive, kill, fail over, fail back.

use crate::node::FleetNode;
use littletable_client::ShardMap;
use littletable_core::archive::{rollback_diverged, sync_until_quiescent};
use littletable_core::options::Options;
use littletable_proto::ErrorKind;
use littletable_vfs::{FaultPlan, Micros, SimClock, Vfs};
use std::sync::Arc;

/// How many rsync passes an archive tick will run before declaring the
/// shard lagging (primary writing faster than the archiver copies).
const MAX_SYNC_PASSES: usize = 8;

/// Fleet-level errors surfaced to the application.
#[derive(Debug)]
pub enum FleetError {
    /// Both replicas of a shard are unreachable; the data outage is real
    /// (the paper accepts this: restore from the archive when a machine
    /// returns).
    ShardDown(u32),
    /// A node answered with an error the client cannot retry away.
    Remote {
        /// Category.
        kind: ErrorKind,
        /// Server-provided description.
        message: String,
    },
    /// Engine-level failure in the driver itself (promotion, rollback).
    Engine(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::ShardDown(s) => write!(f, "shard {s}: both replicas down"),
            FleetError::Remote { kind, message } => {
                write!(f, "remote error ({kind:?}): {message}")
            }
            FleetError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Outcome of one archive tick on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveOutcome {
    /// A pass copied nothing and no table was diverged: the spare is a
    /// faithful replica, and everything acknowledged before the tick is
    /// now survivable.
    Clean,
    /// Sync reached quiescence but skipped diverged tables — a fenced
    /// node is waiting for [`FleetSim::resync_spare`].
    Diverged(u64),
    /// `MAX_SYNC_PASSES` passes never went quiescent; the shard's
    /// replication lag is growing.
    Lagging,
    /// The primary or spare halted before or during the tick; nothing
    /// can be said about the spare's freshness.
    NodeDown,
}

impl ArchiveOutcome {
    /// True only for [`ArchiveOutcome::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, ArchiveOutcome::Clean)
    }
}

/// An in-process fleet: `2 × shards` nodes over independent simulated
/// disks, a client-visible [`ShardMap`], and the failover driver.
///
/// Node ids are assigned so shard `s` boots with primary `2s` and spare
/// `2s + 1`; failovers swap the roles in the map (and bump the shard's
/// epoch) without renumbering nodes.
pub struct FleetSim {
    nodes: Vec<FleetNode>,
    map: ShardMap,
    clock: Arc<SimClock>,
    /// Per shard: the primary's op count at the last clean archive —
    /// the baseline for replication-lag measurement.
    last_clean_op: Vec<u64>,
    failovers: u64,
}

impl FleetSim {
    /// Boots a fleet of `shards` shards (two nodes each) sharing one
    /// simulated wall clock starting at `start` microseconds.
    pub fn new(shards: u32, start: Micros, opts: Options) -> Result<FleetSim, FleetError> {
        assert!(shards > 0, "a fleet needs at least one shard");
        let clock = Arc::new(SimClock::new(start));
        let mut nodes = Vec::with_capacity(shards as usize * 2);
        let mut pairs = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            let p = u64::from(s) * 2;
            nodes.push(
                FleetNode::new(p, s, true, clock.clone(), opts.clone())
                    .map_err(|e| FleetError::Engine(e.to_string()))?,
            );
            nodes.push(
                FleetNode::new(p + 1, s, false, clock.clone(), opts.clone())
                    .map_err(|e| FleetError::Engine(e.to_string()))?,
            );
            pairs.push((p, p + 1));
        }
        Ok(FleetSim {
            nodes,
            map: ShardMap::new(pairs),
            clock,
            last_clean_op: vec![0; shards as usize],
            failovers: 0,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.map.shards()
    }

    /// The authoritative shard map (what a client would fetch).
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// A node by id.
    pub fn node(&self, id: u64) -> &FleetNode {
        &self.nodes[id as usize]
    }

    /// True when `id` has halted on an injected crash.
    pub fn node_down(&self, id: u64) -> bool {
        self.nodes[id as usize].is_down()
    }

    /// Failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Installs a kill plan: node `id`'s machine halts when its disk
    /// operation counter reaches `op_index`.
    pub fn kill_at(&self, id: u64, op_index: u64) {
        self.nodes[id as usize]
            .vfs()
            .set_fault_plan(FaultPlan::crash_at(op_index));
    }

    /// Kills node `id` immediately (a power pull — memtable inserts
    /// touch no disk, so an op-indexed plan alone could let an "already
    /// dead" node keep acknowledging).
    pub fn kill_now(&self, id: u64) {
        self.nodes[id as usize].vfs().power_off();
    }

    /// One archive tick for `shard`: flush the primary's memtables, then
    /// rsync primary → spare until a pass copies nothing (the paper's
    /// stopping condition). On a clean pass the shard's replication-lag
    /// baseline advances.
    pub fn archive_shard(&mut self, shard: u32) -> ArchiveOutcome {
        let route = self.map.route(shard);
        let (p, s) = (route.primary as usize, route.spare as usize);
        if self.nodes[p].is_down() || self.nodes[s].is_down() {
            return ArchiveOutcome::NodeDown;
        }
        let Some(db) = self.nodes[p].db() else {
            return ArchiveOutcome::NodeDown;
        };
        if db.flush_all().is_err() {
            return ArchiveOutcome::NodeDown;
        }
        let src = self.nodes[p].vfs().clone();
        let dst = self.nodes[s].vfs().clone();
        match sync_until_quiescent(src.as_ref() as &dyn Vfs, dst.as_ref(), MAX_SYNC_PASSES) {
            Err(_) => ArchiveOutcome::NodeDown,
            Ok(reports) => {
                let last = reports.last().copied().unwrap_or_default();
                if !last.quiescent() {
                    ArchiveOutcome::Lagging
                } else if last.diverged > 0 {
                    ArchiveOutcome::Diverged(last.diverged)
                } else {
                    self.last_clean_op[shard as usize] = self.nodes[p].op_count();
                    ArchiveOutcome::Clean
                }
            }
        }
    }

    /// Archive every shard; returns one outcome per shard.
    pub fn archive_all(&mut self) -> Vec<ArchiveOutcome> {
        (0..self.shards()).map(|s| self.archive_shard(s)).collect()
    }

    /// Disk operations the primary has performed since `shard`'s last
    /// clean archive — the sim's replication-lag gauge.
    pub fn replication_lag(&self, shard: u32) -> u64 {
        let p = self.map.route(shard).primary as usize;
        self.nodes[p]
            .op_count()
            .saturating_sub(self.last_clean_op[shard as usize])
    }

    /// Fails `shard` over to its spare: the old primary (dead or not) is
    /// fenced at the new epoch, the spare opens its engine over the
    /// archived state and starts accepting writes. Returns the new
    /// epoch.
    pub fn failover(&mut self, shard: u32) -> Result<u64, FleetError> {
        let route = self.map.route(shard).clone();
        if self.nodes[route.spare as usize].is_down() {
            return Err(FleetError::ShardDown(shard));
        }
        let epoch = self.map.promote(shard);
        // Fence before unfencing: never two unfenced primaries.
        if !self.nodes[route.primary as usize].is_down() {
            self.nodes[route.primary as usize].demote(epoch);
        }
        self.nodes[route.spare as usize]
            .promote(epoch)
            .map_err(|e| FleetError::Engine(e.to_string()))?;
        self.last_clean_op[shard as usize] = self.nodes[route.spare as usize].op_count();
        self.failovers += 1;
        Ok(epoch)
    }

    /// Restarts a crashed node in whatever role the map currently
    /// assigns it: primary if it was never failed over (transient
    /// crash), fenced spare otherwise.
    pub fn restart_node(&mut self, id: u64) -> Result<(), FleetError> {
        let shard = self.nodes[id as usize].shard();
        let route = self.map.route(shard).clone();
        if route.primary == id {
            self.nodes[id as usize]
                .restart_as_primary(route.epoch)
                .map_err(|e| FleetError::Engine(e.to_string()))
        } else {
            self.nodes[id as usize].restart_as_spare(route.epoch);
            Ok(())
        }
    }

    /// Brings a returned (fenced, restarted) spare back into faithful
    /// replication: discards any diverged tables it wrote while it
    /// wrongly believed itself primary, then syncs until clean. Returns
    /// the number of tables rolled back.
    ///
    /// This must run while the divergence is still visible — before the
    /// current primary's `next_tablet_id` overtakes the spare's — which
    /// is why the driver couples rollback and re-sync in one step.
    pub fn resync_spare(&mut self, shard: u32) -> Result<u64, FleetError> {
        let route = self.map.route(shard).clone();
        let (p, s) = (route.primary as usize, route.spare as usize);
        if self.nodes[p].is_down() || self.nodes[s].is_down() {
            return Err(FleetError::ShardDown(shard));
        }
        if let Some(db) = self.nodes[p].db() {
            db.flush_all()
                .map_err(|e| FleetError::Engine(e.to_string()))?;
        }
        let src = self.nodes[p].vfs().clone();
        let dst = self.nodes[s].vfs().clone();
        let rolled = rollback_diverged(src.as_ref() as &dyn Vfs, dst.as_ref())
            .map_err(|e| FleetError::Engine(e.to_string()))?;
        let reports = sync_until_quiescent(src.as_ref(), dst.as_ref(), MAX_SYNC_PASSES)
            .map_err(|e| FleetError::Engine(e.to_string()))?;
        match reports.last() {
            Some(r) if r.clean() => {
                self.last_clean_op[shard as usize] = self.nodes[p].op_count();
                Ok(rolled)
            }
            _ => Err(FleetError::Engine(format!(
                "shard {shard}: spare did not reach a clean sync after rollback"
            ))),
        }
    }

    /// Fails `shard` back to a re-synced spare (typically the restored
    /// original primary): a failover in the other direction, at yet
    /// another epoch. The caller must have run [`FleetSim::resync_spare`]
    /// first; failing back to a stale spare loses acknowledged data.
    pub fn failback(&mut self, shard: u32) -> Result<u64, FleetError> {
        self.resync_spare(shard)?;
        self.failover(shard)
    }
}
