//! A warm-spare LittleTable fleet with automated failover (§2.2, §3.5).
//!
//! The paper's deployment runs one LittleTable per shard, places rows on
//! shards *client-side*, and survives node death with a warm spare per
//! shard kept consistent by repeated rsync "until a sync completes
//! without copying any files". Durability is the application's problem:
//! when a primary dies, the client fails over to the spare and re-sends
//! whatever acknowledged data had not yet been archived.
//!
//! This crate is that deployment in miniature, built to be *killed*:
//! every node runs over its own [`SimVfs`](littletable_vfs::SimVfs), so a
//! deterministic [`FaultPlan`](littletable_vfs::FaultPlan) can crash any
//! node at any chosen disk-operation index — including mid-archive-sync —
//! and the whole run replays bit-for-bit. The pieces:
//!
//! * [`FleetNode`] — one simulated machine: a `SimVfs`, a
//!   [`NodeState`](littletable_server::NodeState) role (primary or fenced
//!   spare), and a [`Db`](littletable_core::db::Db) when primary;
//! * [`FleetSim`] — the cluster driver: boots `2 × shards` nodes, runs
//!   archive ticks with replication-lag tracking, promotes spares on
//!   primary death, and rolls back + re-syncs diverged nodes on failback;
//! * [`FleetClient`] — the application's adaptor: rendezvous-hash shard
//!   routing, bounded-backoff retry, idempotent re-send of
//!   acked-but-unarchived batches after failover, and cross-shard
//!   scatter-gather queries with continuation merging.
//!
//! Safety rests on two invariants checked by the node-kill harness in
//! `tests/fleet_sim.rs`:
//!
//! 1. **Descriptor-last archival** — within a table, tablets copy before
//!    the descriptor, so a half-synced spare always opens cleanly at the
//!    last fully-synced state (extra tablets are orphan-cleaned).
//! 2. **Monotonic `next_tablet_id`** — a spare whose descriptor is ahead
//!    of its primary's can only be a promoted spare that took writes;
//!    archival refuses to overwrite it (`SyncReport::diverged`) until the
//!    node is fenced and rolled back.

#![warn(missing_docs)]

mod client;
mod node;
mod sim;

#[cfg(test)]
mod tests;

pub use client::FleetClient;
pub use node::FleetNode;
pub use sim::{ArchiveOutcome, FleetError, FleetSim};
