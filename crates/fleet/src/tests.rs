//! In-crate fleet tests: the happy paths and the scripted failure
//! paths. The big sampled node-kill sweep lives in the workspace-level
//! `tests/fleet_sim.rs`.

use crate::{ArchiveOutcome, FleetClient, FleetError, FleetSim};
use littletable_core::query::Query;
use littletable_core::value::Value;
use littletable_core::Options;
use littletable_workload::FleetLoad;

const START: i64 = 1_700_000_000_000_000;

fn fleet(shards: u32) -> (FleetSim, FleetClient) {
    let sim = FleetSim::new(shards, START, Options::small_for_tests()).unwrap();
    let client = FleetClient::new(shards);
    (sim, client)
}

#[test]
fn inserts_route_and_scatter_gather_merges() {
    let (mut sim, mut client) = fleet(4);
    let mut load = FleetLoad::new(7, 32, START);
    client
        .create_table(&mut sim, "t", FleetLoad::schema(), None)
        .unwrap();
    let rows = load.batch(200);
    assert_eq!(client.insert(&mut sim, "t", rows).unwrap(), (200, 0));
    // Every shard should hold some of the 32 devices.
    for shard in 0..4 {
        let primary = sim.map().route(shard).primary;
        assert!(sim.node(primary).db().is_some());
    }
    // Scatter-gather returns everything, in key order, across shards.
    let got = client.query(&mut sim, "t", &Query::all()).unwrap();
    assert_eq!(got.len(), 200);
    let expected = load.expected(200);
    for row in &expected {
        assert!(got.contains(row), "missing {row:?}");
    }
    // Key-ordered merge: device column is non-decreasing.
    let devices: Vec<i64> = got
        .iter()
        .map(|r| match r[0] {
            Value::I64(d) => d,
            _ => panic!(),
        })
        .collect();
    let mut sorted = devices.clone();
    sorted.sort_unstable();
    assert_eq!(devices, sorted);
    // Descending + fleet-wide limit.
    let top = client
        .query(&mut sim, "t", &Query::all().descending().with_limit(10))
        .unwrap();
    assert_eq!(top.len(), 10);
    assert_eq!(top[0], *got.last().unwrap());
}

#[test]
fn failover_promotes_spare_and_replays_unarchived_acks() {
    let (mut sim, mut client) = fleet(2);
    let mut load = FleetLoad::new(11, 8, START);
    client
        .create_table(&mut sim, "t", FleetLoad::schema(), None)
        .unwrap();
    // Phase 1: archived inserts.
    client.insert(&mut sim, "t", load.batch(60)).unwrap();
    let outcomes = client.archive(&mut sim);
    assert!(outcomes.iter().all(|o| o.is_clean()), "{outcomes:?}");
    assert_eq!(client.replay_len(0), 0);
    assert_eq!(client.replay_len(1), 0);
    // Phase 2: acked but NOT archived — only the client remembers these.
    client.insert(&mut sim, "t", load.batch(40)).unwrap();
    assert!(client.replay_len(0) + client.replay_len(1) > 0);
    // Kill both primaries.
    for shard in 0..2 {
        sim.kill_now(sim.map().route(shard).primary);
    }
    // The next insert hits dead primaries, triggers failover on every
    // shard it touches, and replays phase 2 onto the promoted spares.
    client.insert(&mut sim, "t", load.batch(40)).unwrap();
    let got = client.query(&mut sim, "t", &Query::all()).unwrap();
    assert_eq!(got.len(), 140, "every acked row survives the failover");
    let expected = load.expected(140);
    for row in &expected {
        assert!(got.contains(row), "missing {row:?}");
    }
    assert!(sim.failovers() >= 2);
}

#[test]
fn archive_reports_node_down_and_lag_grows() {
    let (mut sim, mut client) = fleet(1);
    let mut load = FleetLoad::new(3, 4, START);
    client
        .create_table(&mut sim, "t", FleetLoad::schema(), None)
        .unwrap();
    client.insert(&mut sim, "t", load.batch(30)).unwrap();
    let lag_before = sim.replication_lag(0);
    assert!(lag_before > 0);
    assert!(sim.archive_shard(0).is_clean());
    assert!(sim.replication_lag(0) < lag_before);
    // Kill the spare: archiving can say nothing, and the replay buffer
    // must NOT be trimmed.
    client.insert(&mut sim, "t", load.batch(10)).unwrap();
    let pending = client.replay_len(0);
    assert!(pending > 0);
    sim.kill_now(sim.map().route(0).spare);
    // The spare halts at its next disk op — which is this sync's first
    // write to it.
    assert_eq!(client.archive(&mut sim), vec![ArchiveOutcome::NodeDown]);
    assert_eq!(client.replay_len(0), pending);
    // Restart the spare and archive again: clean, buffer trimmed.
    sim.restart_node(sim.map().route(0).spare).unwrap();
    assert_eq!(client.archive(&mut sim), vec![ArchiveOutcome::Clean]);
    assert_eq!(client.replay_len(0), 0);
}

#[test]
fn failback_rolls_back_diverged_old_primary() {
    let (mut sim, mut client) = fleet(1);
    let mut load = FleetLoad::new(9, 4, START);
    client
        .create_table(&mut sim, "t", FleetLoad::schema(), None)
        .unwrap();
    client.insert(&mut sim, "t", load.batch(50)).unwrap();
    assert!(sim.archive_shard(0).is_clean());
    let old_primary = sim.map().route(0).primary;
    // Primary dies; writes continue on the promoted spare.
    sim.kill_now(old_primary);
    client.insert(&mut sim, "t", load.batch(50)).unwrap();
    assert_eq!(sim.failovers(), 1);
    // The old primary restarts. The map says it is a spare now; it must
    // be rolled back (it may hold tablets the new primary never saw) and
    // re-synced before failback.
    sim.restart_node(old_primary).unwrap();
    let epoch = sim.failback(0).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(sim.map().route(0).primary, old_primary);
    // Nothing acked was lost across two failovers.
    let got = client.query(&mut sim, "t", &Query::all()).unwrap();
    assert_eq!(got.len(), 100);
    let expected = load.expected(100);
    for row in &expected {
        assert!(got.contains(row), "missing {row:?}");
    }
}

#[test]
fn shard_down_when_both_replicas_dead() {
    let (mut sim, mut client) = fleet(1);
    let mut load = FleetLoad::new(5, 4, START);
    client
        .create_table(&mut sim, "t", FleetLoad::schema(), None)
        .unwrap();
    client.insert(&mut sim, "t", load.batch(10)).unwrap();
    sim.kill_now(sim.map().route(0).primary);
    sim.kill_now(sim.map().route(0).spare);
    match client.insert(&mut sim, "t", load.batch(10)) {
        Err(FleetError::ShardDown(0)) => {}
        r => panic!("unexpected {r:?}"),
    }
}
