//! One simulated fleet machine.

use littletable_core::db::Db;
use littletable_core::error::Result;
use littletable_core::options::Options;
use littletable_proto::{Request, Response};
use littletable_server::{handle_fleet_request, NodeState};
use littletable_vfs::{SimClock, SimVfs, Vfs};
use std::sync::Arc;

/// A single node: its own simulated disk, a fleet role, and — while it
/// is a primary — an open engine.
///
/// Spares deliberately do **not** hold an open [`Db`]: the archiver
/// writes files underneath them, and an open engine would never see
/// those files. "Warm" means the *disk* is warm; the engine opens at
/// promotion, which is exactly the recovery path
/// [`Db::open`] already hardens (orphan-tablet cleanup, torn-descriptor
/// fallback).
pub struct FleetNode {
    id: u64,
    shard: u32,
    vfs: Arc<SimVfs>,
    clock: Arc<SimClock>,
    opts: Options,
    state: Arc<NodeState>,
    db: Option<Db>,
}

impl FleetNode {
    /// Boots a node. A primary opens its engine immediately; a spare
    /// starts fenced with no engine.
    pub fn new(
        id: u64,
        shard: u32,
        primary: bool,
        clock: Arc<SimClock>,
        opts: Options,
    ) -> Result<FleetNode> {
        let vfs = Arc::new(SimVfs::instant());
        let (state, db) = if primary {
            let db = Db::open(vfs.clone() as Arc<dyn Vfs>, clock.clone(), opts.clone())?;
            (Arc::new(NodeState::primary(id, shard)), Some(db))
        } else {
            (Arc::new(NodeState::spare(id, shard, 0)), None)
        };
        Ok(FleetNode {
            id,
            shard,
            vfs,
            clock,
            opts,
            state,
            db,
        })
    }

    /// Node id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Shard this node serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The node's simulated disk (the archiver reads/writes through
    /// this, and kill plans are installed on it).
    pub fn vfs(&self) -> &Arc<SimVfs> {
        &self.vfs
    }

    /// The open engine, if this node is an active primary.
    pub fn db(&self) -> Option<&Db> {
        self.db.as_ref()
    }

    /// The node's fencing state.
    pub fn state(&self) -> &Arc<NodeState> {
        &self.state
    }

    /// True when the simulated machine has halted on an injected crash
    /// and has not been restarted.
    pub fn is_down(&self) -> bool {
        self.vfs.halted()
    }

    /// Disk operations performed so far — the coordinate system for
    /// deterministic kill points.
    pub fn op_count(&self) -> u64 {
        self.vfs.op_count()
    }

    /// Handles one request, or returns `None` when the node is dead.
    ///
    /// `None` also covers the nastiest real-world case: the node halted
    /// *while* processing, so whatever the engine did before the crash
    /// may or may not be durable — but the acknowledgement never reached
    /// the client, which must re-send idempotently after failover.
    pub fn handle(&self, req: Request) -> Option<Response> {
        if self.vfs.halted() {
            return None;
        }
        let db = self.db.as_ref()?;
        let resp = handle_fleet_request(db, &self.state, req);
        if self.vfs.halted() {
            return None;
        }
        Some(resp)
    }

    /// Promotes this spare: opens the engine over whatever the archiver
    /// left on disk (recovery cleans any half-synced tail) and unfences
    /// writes at `epoch`.
    pub fn promote(&mut self, epoch: u64) -> Result<()> {
        if self.db.is_none() {
            self.db = Some(Db::open(
                self.vfs.clone() as Arc<dyn Vfs>,
                self.clock.clone(),
                self.opts.clone(),
            )?);
        }
        self.state.promote(epoch);
        Ok(())
    }

    /// Demotes this node to a fenced spare at `epoch`, closing its
    /// engine so the archiver can write underneath it.
    pub fn demote(&mut self, epoch: u64) {
        if let Some(db) = self.db.take() {
            db.shutdown();
        }
        self.state.demote(epoch);
    }

    /// Restarts a crashed machine as a fenced spare: unsynced state is
    /// lost (prefix durability), any pending fault plan is cleared, and
    /// the node comes back with no engine, waiting to be rolled back and
    /// re-synced.
    pub fn restart_as_spare(&mut self, epoch: u64) {
        self.db = None;
        self.vfs.clear_fault_plan();
        self.vfs.crash();
        self.state.demote(epoch);
    }

    /// Restarts a crashed machine as the shard's primary (it was never
    /// failed over — a transient crash). The memtable is gone; the
    /// client re-sends unacknowledged data.
    pub fn restart_as_primary(&mut self, epoch: u64) -> Result<()> {
        self.db = None;
        self.vfs.clear_fault_plan();
        self.vfs.crash();
        self.db = Some(Db::open(
            self.vfs.clone() as Arc<dyn Vfs>,
            self.clock.clone(),
            self.opts.clone(),
        )?);
        self.state.promote(epoch);
        Ok(())
    }
}
