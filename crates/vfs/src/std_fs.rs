//! [`Vfs`] backed by the real file system, rooted at a directory.

use crate::vfs::{RandomAccessFile, Vfs, WritableFile};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A [`Vfs`] that maps VFS paths to children of a root directory on the
/// local file system. This is the production backend.
#[derive(Debug)]
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// Creates a VFS rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(StdVfs { root })
    }

    /// The root directory on the host file system.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let mut p = self.root.clone();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            assert!(
                seg != ".." && seg != ".",
                "VFS paths must not contain . or .. segments"
            );
            p.push(seg);
        }
        p
    }
}

struct StdFile {
    file: File,
}

impl RandomAccessFile for StdFile {
    fn read_exact_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

struct StdWriter {
    file: File,
    written: u64,
}

impl WritableFile for StdWriter {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn written(&self) -> u64 {
        self.written
    }
}

impl Vfs for StdVfs {
    fn open(&self, path: &str) -> io::Result<Box<dyn RandomAccessFile>> {
        let file = File::open(self.resolve(path))?;
        Ok(Box::new(StdFile { file }))
    }

    fn create(&self, path: &str, _size_hint: u64) -> io::Result<Box<dyn WritableFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.resolve(path))?;
        Ok(Box::new(StdWriter { file, written: 0 }))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.resolve(from), self.resolve(to))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        fs::remove_file(self.resolve(path))
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).exists()
    }

    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        fs::create_dir_all(self.resolve(path))
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.resolve(path))? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        // Opening a directory read-only and calling fsync on it persists the
        // directory entries on Linux.
        let dir = File::open(self.resolve(path))?;
        dir.sync_all()
    }

    fn file_size(&self, path: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.resolve(path))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_vfs() -> (StdVfs, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ltvfs-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        (StdVfs::new(&dir).unwrap(), dir)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (vfs, dir) = temp_vfs();
        let mut w = vfs.create("a.bin", 0).unwrap();
        w.append(b"hello ").unwrap();
        w.append(b"world").unwrap();
        w.sync().unwrap();
        assert_eq!(w.written(), 11);
        drop(w);

        let r = vfs.open("a.bin").unwrap();
        assert_eq!(r.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        r.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rename_and_list() {
        let (vfs, dir) = temp_vfs();
        vfs.mkdir_all("t").unwrap();
        vfs.create("t/one", 0).unwrap().append(b"1").unwrap();
        vfs.rename("t/one", "t/two").unwrap();
        vfs.sync_dir("t").unwrap();
        let names = vfs.list_dir("t").unwrap();
        assert_eq!(names, vec!["two".to_string()]);
        assert!(vfs.exists("t/two"));
        assert!(!vfs.exists("t/one"));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn file_size_and_remove() {
        let (vfs, dir) = temp_vfs();
        let mut w = vfs.create("x", 0).unwrap();
        w.append(&[0u8; 1234]).unwrap();
        drop(w);
        assert_eq!(vfs.file_size("x").unwrap(), 1234);
        vfs.remove("x").unwrap();
        assert!(!vfs.exists("x"));
        fs::remove_dir_all(dir).unwrap();
    }
}
