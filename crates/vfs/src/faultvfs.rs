//! A fault-injecting wrapper around any [`Vfs`] implementation.
//!
//! [`crate::SimVfs`] has [`crate::FaultPlan`] support built in, but the
//! crash-point sweeps it enables only exercise the simulated disk. This
//! module carries the same machinery to *real* file systems: a
//! [`FaultVfs`] wraps an inner VFS (typically [`crate::StdVfs`]), counts
//! every operation against the shared global op index, and injects the
//! planned faults before delegating.
//!
//! The adversary is necessarily weaker than the simulated one:
//!
//! * [`FaultKind::Crash`] models a *process* kill, not a power cut — the
//!   machine halts (every op fails until [`FaultVfs::reboot`]) but the
//!   OS keeps whatever it already persisted; there is no namespace
//!   revert, because we cannot un-write a real disk.
//! * [`FaultKind::TornWrite`] persists half the buffer, then fails —
//!   same as on [`crate::SimVfs`].
//! * [`FaultKind::TornRename`] degrades to a lost rename plus a process
//!   kill: a live inode cannot be truncated out from under the OS, so
//!   the "durable entry, half-written inode" shape stays SimVfs-only.
//!
//! Error injections (`EIO`, `ENOSPC`) behave identically to the
//! simulated VFS, which makes the error-point sweep in
//! `tests/fault_sweep.rs` portable across both backends.

use crate::fault::{FaultKind, FaultPlan, FaultRecord, FaultState, OpKind};
use crate::vfs::{RandomAccessFile, Vfs, WritableFile};
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// A fault-injecting [`Vfs`] adapter. Cheap to clone; clones share the
/// inner VFS and the fault-injection state, so a test can keep one
/// handle for plan control while the engine owns another.
pub struct FaultVfs<V: Vfs> {
    inner: Arc<V>,
    faults: Arc<Mutex<FaultState>>,
}

impl<V: Vfs> Clone for FaultVfs<V> {
    fn clone(&self) -> Self {
        FaultVfs {
            inner: self.inner.clone(),
            faults: self.faults.clone(),
        }
    }
}

impl<V: Vfs> FaultVfs<V> {
    /// Wraps `inner` with an empty fault plan.
    pub fn new(inner: V) -> Self {
        FaultVfs {
            inner: Arc::new(inner),
            faults: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// The wrapped VFS.
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Installs a fault-injection plan (see [`crate::SimVfs::set_fault_plan`]).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.lock().set_plan(plan);
    }

    /// Removes the installed fault plan (op counting continues).
    pub fn clear_fault_plan(&self) {
        self.faults.lock().clear_plan();
    }

    /// Total I/O operations performed since creation (faulted included).
    pub fn op_count(&self) -> u64 {
        self.faults.lock().op_count()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.lock().injected()
    }

    /// True while the wrapped process is "down" after an injected crash.
    pub fn halted(&self) -> bool {
        self.faults.lock().halted()
    }

    /// Kills the wrapped process immediately, without waiting for an
    /// operation to trip a plan.
    pub fn power_off(&self) {
        self.faults.lock().power_off();
    }

    /// Clears the halted state after an injected crash — the real-FS
    /// analogue of restarting the process. Unlike [`crate::SimVfs::crash`]
    /// nothing is reverted: the OS already decided what survived.
    pub fn reboot(&self) {
        self.faults.lock().reboot();
    }

    /// Drains and returns the replayable trace of injected faults.
    pub fn take_fault_trace(&self) -> Vec<FaultRecord> {
        self.faults.lock().take_trace()
    }

    fn fault_check(&self, op: OpKind, path: &str) -> io::Result<Option<FaultKind>> {
        self.faults.lock().check(op, path)
    }
}

struct FaultReader {
    inner: Box<dyn RandomAccessFile>,
    path: String,
    faults: Arc<Mutex<FaultState>>,
}

impl RandomAccessFile for FaultReader {
    fn read_exact_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.faults.lock().check(OpKind::Read, &self.path)?;
        self.inner.read_exact_at(off, buf)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

struct FaultWriter {
    inner: Box<dyn WritableFile>,
    path: String,
    faults: Arc<Mutex<FaultState>>,
}

impl WritableFile for FaultWriter {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self
            .faults
            .lock()
            .check(OpKind::Append, &self.path)?
            .is_some()
        {
            // Torn write: half the buffer reaches the file, then the
            // append reports failure.
            let _ = self.inner.append(&buf[..buf.len() / 2]);
            return Err(FaultKind::TornWrite.to_error());
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.faults.lock().check(OpKind::Sync, &self.path)?;
        self.inner.sync()
    }

    fn written(&self) -> u64 {
        self.inner.written()
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn open(&self, path: &str) -> io::Result<Box<dyn RandomAccessFile>> {
        self.fault_check(OpKind::Open, path)?;
        Ok(Box::new(FaultReader {
            inner: self.inner.open(path)?,
            path: path.to_string(),
            faults: self.faults.clone(),
        }))
    }

    fn create(&self, path: &str, size_hint: u64) -> io::Result<Box<dyn WritableFile>> {
        self.fault_check(OpKind::Create, path)?;
        Ok(Box::new(FaultWriter {
            inner: self.inner.create(path, size_hint)?,
            path: path.to_string(),
            faults: self.faults.clone(),
        }))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        if self.fault_check(OpKind::Rename, from)?.is_some() {
            // Torn rename degrades on a real FS: the rename is lost and
            // the process is down (check() already halted the machine).
            return Err(FaultKind::TornRename.to_error());
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::Remove, path)?;
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::Mkdir, path)?;
        self.inner.mkdir_all(path)
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        self.fault_check(OpKind::ListDir, path)?;
        self.inner.list_dir(path)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::SyncDir, path)?;
        self.inner.sync_dir(path)
    }

    fn file_size(&self, path: &str) -> io::Result<u64> {
        self.inner.file_size(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use crate::sim::SimVfs;

    fn vfs() -> FaultVfs<SimVfs> {
        // Wrapping SimVfs (with no inner plan) gives a deterministic
        // in-memory backend for exercising the wrapper itself; the
        // StdVfs pairing is covered by the integration sweep.
        FaultVfs::new(SimVfs::instant())
    }

    #[test]
    fn ops_are_counted_and_faults_fire_by_index() {
        let v = vfs();
        v.mkdir_all("d").unwrap(); // op 0
        v.set_fault_plan(FaultPlan::fail_at(2, FaultKind::Enospc));
        v.create("d/a", 0).unwrap(); // op 1
        let err = match v.create("d/b", 0) {
            // op 2
            Ok(_) => panic!("expected injected ENOSPC"),
            Err(e) => e,
        };
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(v.faults_injected(), 1);
        assert_eq!(v.op_count(), 3);
        assert!(v.create("d/b", 0).is_ok());
    }

    #[test]
    fn crash_halts_until_reboot_without_reverting_data() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        let mut w = v.create("d/f", 0).unwrap();
        w.append(b"kept").unwrap();
        w.sync().unwrap();
        drop(w);
        v.set_fault_plan(FaultPlan::crash_at(v.op_count()));
        assert!(v.open("d/f").is_err());
        assert!(v.halted());
        assert!(v.list_dir("d").is_err());
        v.reboot();
        // Process restart: everything the inner VFS held is still there.
        let r = v.open("d/f").unwrap();
        assert_eq!(r.len().unwrap(), 4);
    }

    #[test]
    fn torn_write_persists_half_the_buffer() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        let mut w = v.create("d/f", 0).unwrap();
        w.append(b"whole").unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultKind::TornWrite)
                    .on_ops(&[OpKind::Append])
                    .times(1),
            ),
        );
        let err = w.append(b"12345678").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        w.sync().unwrap();
        drop(w);
        assert_eq!(v.file_size("d/f").unwrap(), 5 + 4);
    }

    #[test]
    fn torn_rename_degrades_to_lost_rename_plus_halt() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        v.create("d/tmp", 0).unwrap().sync().unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultKind::TornRename).on_ops(&[OpKind::Rename])),
        );
        assert!(v.rename("d/tmp", "d/final").is_err());
        assert!(v.halted());
        v.reboot();
        assert!(v.exists("d/tmp"));
        assert!(!v.exists("d/final"));
    }

    #[test]
    fn trace_records_wrapped_faults() {
        let v = vfs();
        v.set_fault_plan(FaultPlan::fail_at(0, FaultKind::Eio));
        assert!(v.mkdir_all("d").is_err());
        let trace = v.take_fault_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].op_index, 0);
        assert_eq!(trace[0].kind, FaultKind::Eio);
    }
}
