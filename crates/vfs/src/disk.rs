//! A virtual-time model of a spinning disk.
//!
//! The paper's microbenchmarks (Figures 2–6) are experiments in disk physics:
//! seek latency versus sequential throughput, OS readahead, and the drive's
//! internal cache. Modern flash hardware cannot exhibit their shapes, so the
//! benchmark harness runs the *real engine* against [`crate::SimVfs`], which
//! charges every I/O to this model and accumulates *virtual* elapsed time on
//! a [`SimClock`].
//!
//! The model is deliberately simple but captures the effects the paper
//! depends on:
//!
//! * every discontiguous access pays one average **seek** (seek + rotational
//!   latency, 8 ms on the paper's WD2000FYYZ drives);
//! * contiguous transfers proceed at the **sequential rate** (120 MB/s);
//! * a read at a new position transfers a full **OS readahead** window
//!   (128 kB by default), and subsequent reads inside that window are free;
//! * after each transfer the drive opportunistically caches a further
//!   **drive readahead** window for free, standing in for the 64 MB on-drive
//!   cache the paper credits for its higher-than-predicted floor in Fig. 5;
//! * opening a file charges one seek for the inode read, so reading a cold
//!   tablet footer costs the three seeks described in §3.5 of the paper
//!   (inode, trailer, footer).

use crate::clock::{Micros, SimClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Physical parameters of the modelled disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average seek plus rotational latency charged per discontiguous access.
    pub seek_micros: i64,
    /// Sequential read throughput in bytes per second.
    pub read_bytes_per_sec: u64,
    /// Sequential write throughput in bytes per second.
    pub write_bytes_per_sec: u64,
    /// OS readahead window: the minimum transfer for a read at a new position.
    pub os_readahead: u64,
    /// Bytes the drive caches for free after each charged transfer, modelling
    /// the drive's internal cache acting as additional readahead.
    pub drive_readahead: u64,
    /// Whether opening a file charges one seek (the inode read).
    pub charge_open_seek: bool,
}

impl DiskParams {
    /// The paper's experimental disk: a 7,200 RPM SATA drive with ~8 ms
    /// combined seek and rotational latency and ~120 MB/s sequential
    /// throughput, under the Linux default 128 kB readahead.
    pub fn paper_disk() -> Self {
        DiskParams {
            seek_micros: 8_000,
            read_bytes_per_sec: 120_000_000,
            write_bytes_per_sec: 120_000_000,
            os_readahead: 128 * 1024,
            drive_readahead: 128 * 1024,
            charge_open_seek: true,
        }
    }

    /// A free disk: every operation costs zero virtual time. Useful for unit
    /// tests that only care about engine behaviour.
    pub fn instant() -> Self {
        DiskParams {
            seek_micros: 0,
            read_bytes_per_sec: u64::MAX,
            write_bytes_per_sec: u64::MAX,
            os_readahead: 0,
            drive_readahead: 0,
            charge_open_seek: false,
        }
    }

    /// Returns a copy with a different OS readahead, as set via
    /// `blockdev --setra` in the paper's Figure 5 experiment.
    pub fn with_os_readahead(mut self, bytes: u64) -> Self {
        self.os_readahead = bytes;
        self
    }

    fn read_micros(&self, bytes: u64) -> i64 {
        transfer_micros(bytes, self.read_bytes_per_sec)
    }

    fn write_micros(&self, bytes: u64) -> i64 {
        transfer_micros(bytes, self.write_bytes_per_sec)
    }
}

fn transfer_micros(bytes: u64, rate: u64) -> i64 {
    if rate == u64::MAX || rate == 0 {
        return 0;
    }
    // bytes / rate seconds, in micros, rounded up.
    (bytes as u128 * 1_000_000).div_ceil(rate as u128) as i64
}

/// Counters describing everything the model has charged so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of seeks charged.
    pub seeks: u64,
    /// Bytes actually transferred from the platters (including readahead).
    pub bytes_read: u64,
    /// Bytes written to the platters.
    pub bytes_written: u64,
    /// Total virtual time charged, in micros.
    pub busy_micros: i64,
}

/// Identifies a file's extent in the model's linear block-address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExtentId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Window {
    /// Cached byte range within the file, [start, end).
    start: u64,
    end: u64,
}

#[derive(Debug)]
struct ModelState {
    /// Position of the head in the linear address space. Starts parked
    /// somewhere discontiguous with every extent.
    head: u64,
    /// Next free address for extent allocation.
    next_alloc: u64,
    /// Per-extent base address.
    base: HashMap<ExtentId, u64>,
    /// Per-extent cached (readahead) window, in file offsets.
    window: HashMap<ExtentId, Window>,
    /// Extents whose inode has been read since the last cache clear.
    inode_hot: HashMap<ExtentId, ()>,
    next_extent: u64,
    stats: DiskStats,
}

impl Default for ModelState {
    fn default() -> Self {
        ModelState {
            head: u64::MAX,
            next_alloc: 0,
            base: HashMap::new(),
            window: HashMap::new(),
            inode_hot: HashMap::new(),
            next_extent: 0,
            stats: DiskStats::default(),
        }
    }
}

/// The disk model proper. Shared by every file of a [`crate::SimVfs`].
///
/// All methods take `&self`; the model is internally synchronized, mirroring
/// a single spindle serving concurrent requests in arrival order.
#[derive(Clone)]
pub struct DiskModel {
    params: DiskParams,
    clock: SimClock,
    state: Arc<Mutex<ModelState>>,
}

impl DiskModel {
    /// Creates a model that advances `clock` as it charges I/O time.
    pub fn new(params: DiskParams, clock: SimClock) -> Self {
        DiskModel {
            params,
            clock,
            state: Arc::new(Mutex::new(ModelState::default())),
        }
    }

    /// The parameters this model was built with.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// The clock this model advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> DiskStats {
        self.state.lock().stats
    }

    /// Total virtual time charged so far, in micros.
    pub fn busy_micros(&self) -> i64 {
        self.state.lock().stats.busy_micros
    }

    /// Allocates a new extent (one file). Extents are laid out contiguously
    /// in allocation order, mirroring ext4 storing each ≤1 GB tablet in a
    /// single extent.
    pub fn alloc_extent(&self, size_hint: u64) -> ExtentId {
        let mut s = self.state.lock();
        let id = ExtentId(s.next_extent);
        s.next_extent += 1;
        let base = s.next_alloc;
        s.base.insert(id, base);
        s.next_alloc = base + size_hint.max(1);
        id
    }

    /// Grows an extent's reserved address range; called as files are appended
    /// past their hint. Growth is contiguous only if nothing was allocated
    /// after it; otherwise the tail lands elsewhere, which is fine for a
    /// model of this resolution — tablets are written once, sequentially.
    pub fn grow_extent(&self, id: ExtentId, new_size: u64) {
        let mut s = self.state.lock();
        let base = *s.base.get(&id).expect("unknown extent");
        if base + new_size > s.next_alloc {
            s.next_alloc = base + new_size;
        }
    }

    /// Releases an extent's model state (file deleted).
    pub fn free_extent(&self, id: ExtentId) {
        let mut s = self.state.lock();
        s.base.remove(&id);
        s.window.remove(&id);
        s.inode_hot.remove(&id);
    }

    /// Charges the inode read for opening a file, once per file per
    /// cache-clear epoch.
    pub fn charge_open(&self, id: ExtentId) {
        if !self.params.charge_open_seek {
            return;
        }
        let mut s = self.state.lock();
        if s.inode_hot.insert(id, ()).is_none() {
            let micros = self.params.seek_micros;
            s.stats.seeks += 1;
            s.stats.busy_micros += micros;
            drop(s);
            self.clock.advance(micros);
        }
    }

    /// Charges a read of `[off, off + len)` from `id`, whose file currently
    /// holds `file_len` bytes. Returns the virtual micros charged.
    pub fn charge_read(&self, id: ExtentId, off: u64, len: u64, file_len: u64) -> i64 {
        if len == 0 {
            return 0;
        }
        let mut s = self.state.lock();
        let Some(&base) = s.base.get(&id) else {
            // The extent was freed while a reader still holds the file
            // open (POSIX unlink-while-open): the bytes remain readable
            // through the handle, but the head/window model no longer
            // tracks the extent. Charge a plain uncached transfer.
            let micros = self.params.seek_micros + self.params.read_micros(len);
            s.stats.seeks += 1;
            s.stats.bytes_read += len;
            s.stats.busy_micros += micros;
            drop(s);
            self.clock.advance(micros);
            return micros;
        };
        let win = s.window.get(&id).copied();
        // The uncovered part of the request. Windows only ever extend
        // forward, so a request overlapping the window's tail is uncovered
        // from the window end onwards.
        let (need_start, need_end) = match win {
            Some(w) if off >= w.start && off + len <= w.end => {
                s.stats.busy_micros += 0;
                return 0; // fully cached
            }
            Some(w) if off >= w.start && off < w.end => (w.end, off + len),
            _ => (off, off + len),
        };
        let mut micros = 0i64;
        if s.head != base + need_start {
            micros += self.params.seek_micros;
            s.stats.seeks += 1;
        }
        // Transfer at least the OS readahead window plus the drive's own
        // opportunistic readahead, capped at EOF. Charging the drive
        // readahead as real transfer time reproduces the throughput floors
        // the paper attributes to the drive's internal cache (Fig. 5).
        let min_xfer =
            (need_end - need_start).max(self.params.os_readahead) + self.params.drive_readahead;
        let xfer_end = (need_start + min_xfer).min(file_len.max(need_end));
        let xfer = xfer_end - need_start;
        micros += self.params.read_micros(xfer);
        s.stats.bytes_read += xfer;
        let new_window = match win {
            // Extend a window we grew off the end of; otherwise replace.
            Some(w) if need_start == w.end => Window {
                start: w.start,
                end: xfer_end,
            },
            _ => Window {
                start: off.min(need_start),
                end: xfer_end,
            },
        };
        s.window.insert(id, new_window);
        s.head = base + xfer_end;
        s.stats.busy_micros += micros;
        drop(s);
        self.clock.advance(micros);
        micros
    }

    /// Charges an append of `len` bytes at offset `off` of `id`.
    pub fn charge_write(&self, id: ExtentId, off: u64, len: u64) -> i64 {
        if len == 0 {
            return 0;
        }
        let mut s = self.state.lock();
        let Some(&base) = s.base.get(&id) else {
            // See charge_read: writes through a handle to an unlinked
            // file still cost transfer time even though the extent is
            // gone from the platter model.
            let micros = self.params.seek_micros + self.params.write_micros(len);
            s.stats.seeks += 1;
            s.stats.bytes_written += len;
            s.stats.busy_micros += micros;
            drop(s);
            self.clock.advance(micros);
            return micros;
        };
        let mut micros = 0i64;
        if s.head != base + off {
            micros += self.params.seek_micros;
            s.stats.seeks += 1;
        }
        micros += self.params.write_micros(len);
        s.stats.bytes_written += len;
        s.head = base + off + len;
        s.stats.busy_micros += micros;
        drop(s);
        self.clock.advance(micros);
        micros
    }

    /// Drops all cached state: readahead windows, drive cache, and hot
    /// inodes, and moves the head to an arbitrary position. Mirrors the
    /// paper's procedure of clearing the page cache and the drive's internal
    /// cache before each benchmark run.
    pub fn clear_caches(&self) {
        let mut s = self.state.lock();
        s.window.clear();
        s.inode_hot.clear();
        s.head = u64::MAX; // guaranteed discontiguous with any extent
    }
}

impl std::fmt::Debug for DiskModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskModel")
            .field("params", &self.params)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Convenience: charge the model for a duration of pure CPU or network time
/// (used by the benchmark harness to model per-command round trips).
pub fn charge_latency(clock: &SimClock, micros: Micros) {
    clock.advance(micros);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock as _;

    fn model() -> DiskModel {
        DiskModel::new(DiskParams::paper_disk(), SimClock::new(0))
    }

    #[test]
    fn sequential_read_pays_one_seek() {
        let m = model();
        let f = m.alloc_extent(10 << 20);
        m.grow_extent(f, 10 << 20);
        let mut total = 0;
        for i in 0..100u64 {
            total += m.charge_read(f, i * 64 * 1024, 64 * 1024, 10 << 20);
        }
        assert_eq!(m.stats().seeks, 1);
        // One seek (8 ms) plus 100 * 64 kB at 120 MB/s ≈ 54.6 ms.
        assert!((54_000..70_000).contains(&total), "total = {total}");
    }

    #[test]
    fn random_reads_pay_seek_each() {
        let m = model();
        let f = m.alloc_extent(100 << 20);
        m.grow_extent(f, 100 << 20);
        // Far-apart offsets, each outside any prior readahead window.
        for i in 0..10u64 {
            m.charge_read(f, i * (10 << 20), 4096, 100 << 20);
        }
        assert_eq!(m.stats().seeks, 10);
    }

    #[test]
    fn read_within_readahead_is_free() {
        let m = model();
        let f = m.alloc_extent(1 << 20);
        m.grow_extent(f, 1 << 20);
        let first = m.charge_read(f, 0, 4096, 1 << 20);
        assert!(first > 8_000);
        // Next 4 kB falls inside the 128 kB readahead window.
        let second = m.charge_read(f, 4096, 4096, 1 << 20);
        assert_eq!(second, 0);
    }

    #[test]
    fn interleaved_files_keep_their_windows() {
        let m = model();
        let a = m.alloc_extent(1 << 20);
        let b = m.alloc_extent(1 << 20);
        m.grow_extent(a, 1 << 20);
        m.grow_extent(b, 1 << 20);
        m.charge_read(a, 0, 65536, 1 << 20);
        m.charge_read(b, 0, 65536, 1 << 20);
        // Both second blocks are inside each file's cached window
        // (128 kB OS readahead + 128 kB drive readahead).
        assert_eq!(m.charge_read(a, 65536, 65536, 1 << 20), 0);
        assert_eq!(m.charge_read(b, 65536, 65536, 1 << 20), 0);
    }

    #[test]
    fn open_charges_inode_seek_once() {
        let m = model();
        let f = m.alloc_extent(1024);
        m.charge_open(f);
        m.charge_open(f);
        assert_eq!(m.stats().seeks, 1);
        m.clear_caches();
        m.charge_open(f);
        assert_eq!(m.stats().seeks, 2);
    }

    #[test]
    fn cold_footer_read_is_three_seeks() {
        // Mirrors §3.5: inode, trailer at EOF, footer body.
        let m = model();
        let len = 16u64 << 20;
        let f = m.alloc_extent(len);
        m.grow_extent(f, len);
        m.charge_open(f); // inode
        m.charge_read(f, len - 16, 16, len); // trailer
        m.charge_read(f, len - 100_000, 90_000, len); // footer body
        assert_eq!(m.stats().seeks, 3);
    }

    #[test]
    fn sequential_write_throughput() {
        let m = model();
        let f = m.alloc_extent(16 << 20);
        let mut micros = 0;
        for i in 0..256u64 {
            micros += m.charge_write(f, i * 65536, 65536);
        }
        assert_eq!(m.stats().seeks, 1);
        // 16 MB at 120 MB/s ≈ 140 ms.
        assert!((139_000..150_000).contains(&micros), "micros = {micros}");
    }

    #[test]
    fn instant_params_charge_nothing() {
        let m = DiskModel::new(DiskParams::instant(), SimClock::new(0));
        let f = m.alloc_extent(1024);
        m.charge_open(f);
        m.charge_write(f, 0, 1024);
        m.charge_read(f, 0, 1024, 1024);
        assert_eq!(m.busy_micros(), 0);
        assert_eq!(m.clock().now_micros(), 0);
    }

    #[test]
    fn clock_tracks_busy_time() {
        let m = model();
        let f = m.alloc_extent(1 << 20);
        m.grow_extent(f, 1 << 20);
        m.charge_read(f, 0, 4096, 1 << 20);
        assert_eq!(m.clock().now_micros(), m.busy_micros());
    }
}
