//! File-system and time abstractions for LittleTable.
//!
//! The storage engine performs all I/O through the [`Vfs`] trait and reads
//! time through the [`Clock`] trait. This crate provides:
//!
//! * [`StdVfs`] — the production backend over the local file system;
//! * [`SimVfs`] — an in-memory backend metered by a [`DiskModel`], which
//!   charges seeks, transfers, and readahead in *virtual time* on a
//!   [`SimClock`], and supports deterministic crash injection;
//! * [`SystemClock`] / [`SimClock`] — wall-clock and simulated time.
//!
//! The disk model exists because the paper's evaluation is an exercise in
//! spinning-disk physics (8 ms seeks against 120 MB/s sequential transfer);
//! see [`disk`] for the substitution rationale.

#![warn(missing_docs)]

pub mod clock;
pub mod disk;
pub mod fault;
pub mod faultvfs;
pub mod sim;
pub mod std_fs;
pub mod vfs;

pub use clock::{Clock, Micros, SimClock, SystemClock, MICROS_PER_SEC};
pub use disk::{DiskModel, DiskParams, DiskStats};
pub use fault::{FaultKind, FaultPlan, FaultRecord, FaultRule, OpKind, RandomFaults};
pub use faultvfs::FaultVfs;
pub use sim::SimVfs;
pub use std_fs::StdVfs;
pub use vfs::{join, parent, RandomAccessFile, Vfs, WritableFile};
