//! The file-system abstraction the engine is written against.
//!
//! LittleTable's on-disk footprint is simple — write-once tablet files, a
//! table descriptor replaced by atomic rename, and per-table directories —
//! so the trait surface is correspondingly small. Two implementations exist:
//! [`crate::StdVfs`] over the real file system and [`crate::SimVfs`] over an
//! in-memory store metered by [`crate::DiskModel`].

use std::io;

/// A file open for positional reads. Tablet files are immutable once
/// written, so readers never observe concurrent mutation.
pub trait RandomAccessFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes starting at `off`, or fails.
    fn read_exact_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Total length of the file in bytes.
    fn len(&self) -> io::Result<u64>;

    /// True when the file is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A file open for appending. LittleTable writes every file front to back
/// exactly once and then seals it.
pub trait WritableFile: Send {
    /// Appends `buf` to the file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces written data to stable storage. Data appended before a
    /// returned `sync` survives a crash.
    fn sync(&mut self) -> io::Result<()>;

    /// Bytes appended so far.
    fn written(&self) -> u64;
}

/// A file-system namespace.
///
/// Paths are plain UTF-8 strings relative to the VFS root, using `/` as the
/// separator, which keeps the simulated implementation trivial and the real
/// one portable.
///
/// # Error and durability contract
///
/// Every operation may fail with an `io::Error` carrying a real OS error
/// code — implementations (and fault injectors) report `EIO`, `ENOSPC`,
/// and friends via [`io::Error::raw_os_error`] so callers can classify
/// failures uniformly whether they came from a kernel or from
/// [`crate::FaultPlan`]. Two rules the engine relies on:
///
/// * **A failed `sync`/`sync_dir` promises nothing.** Data appended or
///   names changed before the failure may or may not survive a crash;
///   callers must treat the affected file as unpublishable until a later
///   sync succeeds (LittleTable's fsync-gate).
/// * **A failed `append` may still have written a prefix.** Torn writes
///   are legal: after an `append` error the file holds between zero and
///   `buf.len()` of the new bytes. Formats must tolerate a trailing
///   partial record (tablet trailers carry a CRC for exactly this reason).
pub trait Vfs: Send + Sync {
    /// Opens an existing file for positional reads.
    fn open(&self, path: &str) -> io::Result<Box<dyn RandomAccessFile>>;

    /// Creates (or truncates) a file for appending. `size_hint` lets the
    /// simulated disk reserve a contiguous extent, mirroring ext4 extent
    /// allocation for tablet-sized files.
    fn create(&self, path: &str, size_hint: u64) -> io::Result<Box<dyn WritableFile>>;

    /// Atomically replaces `to` with `from`, durably once `sync_dir` on the
    /// parent returns.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Removes a file.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// True if a file exists at `path`.
    fn exists(&self, path: &str) -> bool;

    /// Creates a directory and any missing parents.
    fn mkdir_all(&self, path: &str) -> io::Result<()>;

    /// Lists the entries directly inside a directory (names, not paths),
    /// in unspecified order.
    fn list_dir(&self, path: &str) -> io::Result<Vec<String>>;

    /// Forces directory metadata (creations, renames, removals under
    /// `path`) to stable storage.
    fn sync_dir(&self, path: &str) -> io::Result<()>;

    /// Size of the file at `path`.
    fn file_size(&self, path: &str) -> io::Result<u64>;
}

/// Joins two VFS path segments with a single `/`.
pub fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else if dir.ends_with('/') {
        format!("{dir}{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// Returns the parent directory of a VFS path (empty string for the root).
pub fn parent(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[..i],
        None => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_handles_roots_and_slashes() {
        assert_eq!(join("", "a"), "a");
        assert_eq!(join("d", "a"), "d/a");
        assert_eq!(join("d/", "a"), "d/a");
        assert_eq!(join("d/e", "a"), "d/e/a");
    }

    #[test]
    fn parent_strips_last_segment() {
        assert_eq!(parent("a/b/c"), "a/b");
        assert_eq!(parent("a"), "");
        assert_eq!(parent(""), "");
    }
}
