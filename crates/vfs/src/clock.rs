//! Virtual time.
//!
//! The engine never calls [`std::time::SystemTime`] directly: everything that
//! needs the current time (row timestamps, tablet flush ages, merge delays,
//! TTL expiry) goes through a [`Clock`]. Production code uses [`SystemClock`];
//! tests and the disk-simulation benchmarks use [`SimClock`], which only moves
//! when explicitly advanced — by a test, or by the simulated disk as it
//! charges I/O time.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Microseconds since the Unix epoch. All LittleTable timestamps use this
/// representation, including row timestamps and tablet timespans.
pub type Micros = i64;

/// One second in [`Micros`].
pub const MICROS_PER_SEC: Micros = 1_000_000;

/// A source of the current time, in microseconds since the Unix epoch.
pub trait Clock: Send + Sync {
    /// Returns the current time.
    fn now_micros(&self) -> Micros;
}

/// The real wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_micros(&self) -> Micros {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before Unix epoch")
            .as_micros() as Micros
    }
}

/// A manually driven clock for tests and simulation.
///
/// Cloning shares the underlying time, so a `SimClock` can be handed to the
/// engine, the disk model, and a test driver simultaneously.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicI64>,
}

impl SimClock {
    /// Creates a clock reading `start` micros.
    pub fn new(start: Micros) -> Self {
        SimClock {
            micros: Arc::new(AtomicI64::new(start)),
        }
    }

    /// Moves the clock forward by `delta` micros.
    pub fn advance(&self, delta: Micros) {
        assert!(delta >= 0, "SimClock cannot run backwards");
        self.micros.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time. Must not move backwards.
    pub fn set(&self, now: Micros) {
        let prev = self.micros.swap(now, Ordering::SeqCst);
        assert!(now >= prev, "SimClock cannot run backwards");
    }
}

impl Clock for SimClock {
    fn now_micros(&self) -> Micros {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_sane() {
        let c = SystemClock;
        let t = c.now_micros();
        // After 2020-01-01 and before 2100-01-01.
        assert!(t > 1_577_836_800 * MICROS_PER_SEC);
        assert!(t < 4_102_444_800 * MICROS_PER_SEC);
    }

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new(10);
        assert_eq!(c.now_micros(), 10);
        c.advance(5);
        assert_eq!(c.now_micros(), 15);
        c.set(100);
        assert_eq!(c.now_micros(), 100);
    }

    #[test]
    fn sim_clock_is_shared_across_clones() {
        let a = SimClock::new(0);
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_micros(), 42);
    }

    #[test]
    #[should_panic]
    fn sim_clock_rejects_backwards_set() {
        let c = SimClock::new(100);
        c.set(50);
    }
}
