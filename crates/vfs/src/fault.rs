//! Deterministic fault injection for [`crate::SimVfs`].
//!
//! A [`FaultPlan`] describes, ahead of time, which I/O operations should
//! fail and how: a transient `EIO`, a disk-full `ENOSPC`, a torn (short)
//! write, or a full machine crash. Every operation the VFS performs is
//! assigned a global, monotonically increasing *op index*; rules can
//! target an absolute index (`at_op`), the Nth operation matching a
//! filter (`nth_match`), a path substring, or an operation kind, and a
//! seeded pseudo-random schedule can sprinkle faults deterministically.
//! Because the engine and the simulated VFS are both deterministic, a
//! workload runs identically every time, so "fail op 1 234" names the
//! exact same write in every run — the FoundationDB/ALICE-style sweep in
//! `tests/fault_sweep.rs` leans on this to crash or fail a workload
//! after *every* operation it performs and machine-check recovery.
//!
//! Every injected fault is recorded in a replayable [`FaultRecord`]
//! trace, so a failing sweep point can be reproduced in isolation by
//! replaying its exact `(op_index, kind)` pairs.

use std::io;

/// Linux errno for `EIO`, used so the engine can classify injected
/// errors exactly as it would classify real ones.
const EIO: i32 = 5;
/// Linux errno for `ENOSPC`.
const ENOSPC: i32 = 28;

/// The category of a VFS operation, for fault-rule filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `Vfs::open` of an existing file.
    Open,
    /// `RandomAccessFile::read_exact_at`.
    Read,
    /// `Vfs::create`.
    Create,
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::sync`.
    Sync,
    /// `Vfs::rename`.
    Rename,
    /// `Vfs::remove`.
    Remove,
    /// `Vfs::sync_dir`.
    SyncDir,
    /// `Vfs::list_dir`.
    ListDir,
    /// `Vfs::mkdir_all`.
    Mkdir,
}

/// What an injected fault does to the matched operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with `EIO` and has no effect.
    Eio,
    /// The operation fails with `ENOSPC` and has no effect.
    Enospc,
    /// An append persists only a prefix of the buffer, then fails with
    /// `EIO` — a torn write. On non-append operations this degrades to
    /// [`FaultKind::Eio`].
    TornWrite,
    /// A rename becomes *durable* (survives the crash) while the file it
    /// points at keeps only a half-synced prefix, and the machine halts —
    /// the "directory entry pointing at a half-written inode" crash a
    /// metadata-journaling filesystem can leave behind when directory
    /// metadata commits before file data. This is the adversary for the
    /// `DESC.tmp` → `DESC` descriptor swap. On non-rename operations it
    /// degrades to [`FaultKind::Eio`]; on a real filesystem
    /// ([`crate::FaultVfs`]) it degrades to [`FaultKind::Crash`] since a
    /// live inode cannot be safely truncated out from under the OS.
    TornRename,
    /// The machine halts: this operation and every later one fail with
    /// `EIO` until [`crate::SimVfs::crash`] "reboots" the disk, which
    /// also discards everything un-synced exactly as a power cut would.
    Crash,
}

impl FaultKind {
    /// The `io::Error` this fault surfaces as, carrying the real errno
    /// so the engine's [`is-transient` / `is-disk-full` classification]
    /// treats injected faults exactly like native ones.
    pub fn to_error(self) -> io::Error {
        match self {
            FaultKind::Eio | FaultKind::TornWrite => io::Error::from_raw_os_error(EIO),
            FaultKind::Enospc => io::Error::from_raw_os_error(ENOSPC),
            FaultKind::Crash => io::Error::other("simulated machine crash"),
            FaultKind::TornRename => io::Error::other("simulated machine crash (torn rename)"),
        }
    }
}

/// The error every operation returns while the simulated machine is
/// halted (after a [`FaultKind::Crash`] fired, before
/// [`crate::SimVfs::crash`] reboots it).
pub(crate) fn halted_error() -> io::Error {
    io::Error::other("simulated machine is down")
}

/// One injection rule. Built with the fluent constructors; all filters
/// are conjunctive (an op must satisfy every one set).
#[derive(Debug, Clone)]
pub struct FaultRule {
    kind: FaultKind,
    /// Fire when the global op index equals this.
    at_op: Option<u64>,
    /// Fire on the Nth (1-based) operation matching the other filters,
    /// counted from when the plan was installed.
    nth_match: Option<u64>,
    /// Only ops whose path contains this substring.
    path_contains: Option<String>,
    /// Only ops of these kinds.
    ops: Option<Vec<OpKind>>,
    /// Fire at most this many times (`None` = every match).
    times: Option<u32>,
    /// Matches seen so far (for `nth_match`).
    seen: u64,
    /// Times fired so far (for `times`).
    fired: u32,
}

impl FaultRule {
    /// A rule injecting `kind`, matching every operation until filtered.
    pub fn new(kind: FaultKind) -> Self {
        FaultRule {
            kind,
            at_op: None,
            nth_match: None,
            path_contains: None,
            ops: None,
            times: None,
            seen: 0,
            fired: 0,
        }
    }

    /// Restrict to the operation with this global index.
    pub fn at_op(mut self, index: u64) -> Self {
        self.at_op = Some(index);
        self
    }

    /// Restrict to the Nth (1-based) operation matching the rule's other
    /// filters, counted from plan installation.
    pub fn nth_match(mut self, n: u64) -> Self {
        self.nth_match = Some(n);
        self
    }

    /// Restrict to operations whose path contains `s`.
    pub fn on_path(mut self, s: impl Into<String>) -> Self {
        self.path_contains = Some(s.into());
        self
    }

    /// Restrict to operations of the given kinds.
    pub fn on_ops(mut self, ops: &[OpKind]) -> Self {
        self.ops = Some(ops.to_vec());
        self
    }

    /// Fire at most `n` times.
    pub fn times(mut self, n: u32) -> Self {
        self.times = Some(n);
        self
    }

    fn decide(&mut self, index: u64, op: OpKind, path: &str) -> Option<FaultKind> {
        if self.times.is_some_and(|t| self.fired >= t) {
            return None;
        }
        if self.at_op.is_some_and(|k| k != index) {
            return None;
        }
        if self.ops.as_ref().is_some_and(|ops| !ops.contains(&op)) {
            return None;
        }
        if self
            .path_contains
            .as_ref()
            .is_some_and(|s| !path.contains(s.as_str()))
        {
            return None;
        }
        self.seen += 1;
        if self.nth_match.is_some_and(|n| self.seen != n) {
            return None;
        }
        self.fired += 1;
        Some(self.kind)
    }
}

/// A seeded pseudo-random fault schedule: each eligible operation fails
/// with probability `1 / one_in`, decided by a hash of `(seed,
/// op_index)` so the same seed always faults the same ops.
#[derive(Debug, Clone)]
pub struct RandomFaults {
    /// Seed mixed into every per-op decision.
    pub seed: u64,
    /// Fail roughly one in this many eligible operations (0 disables).
    pub one_in: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// Restrict to these op kinds (`None` = all).
    pub ops: Option<Vec<OpKind>>,
}

impl RandomFaults {
    fn decide(&self, index: u64, op: OpKind) -> Option<FaultKind> {
        if self.one_in == 0 {
            return None;
        }
        if self.ops.as_ref().is_some_and(|ops| !ops.contains(&op)) {
            return None;
        }
        // splitmix64 over (seed ^ index): deterministic, well mixed.
        let mut z = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z.is_multiple_of(self.one_in).then_some(self.kind)
    }
}

/// A full injection schedule: explicit rules (checked in order, first
/// match wins) plus an optional seeded random schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    random: Option<RandomFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan that crashes the machine at global op `index`.
    pub fn crash_at(index: u64) -> Self {
        FaultPlan::new().rule(FaultRule::new(FaultKind::Crash).at_op(index))
    }

    /// A plan that fails global op `index` once with `kind`.
    pub fn fail_at(index: u64, kind: FaultKind) -> Self {
        FaultPlan::new().rule(FaultRule::new(kind).at_op(index).times(1))
    }

    /// Adds a rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a seeded random schedule.
    pub fn random(mut self, random: RandomFaults) -> Self {
        self.random = Some(random);
        self
    }

    pub(crate) fn decide(&mut self, index: u64, op: OpKind, path: &str) -> Option<FaultKind> {
        for r in &mut self.rules {
            if let Some(k) = r.decide(index, op, path) {
                return Some(k);
            }
        }
        self.random.as_ref().and_then(|r| r.decide(index, op))
    }
}

/// One injected fault, as recorded in the replayable trace.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Global index of the faulted operation.
    pub op_index: u64,
    /// The operation's kind.
    pub op: OpKind,
    /// The path the operation targeted.
    pub path: String,
    /// What was injected.
    pub kind: FaultKind,
}

/// Mutable injection state shared by a [`crate::SimVfs`] and its open
/// files: the installed plan, the global op counter, the halted flag,
/// and the trace of fired faults.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    op_count: u64,
    halted: bool,
    injected: u64,
    trace: Vec<FaultRecord>,
}

impl FaultState {
    /// Counts the operation and returns the fault to inject, if any.
    /// `Err` means the machine is halted or the op must fail outright;
    /// `Ok(Some(TornWrite))` asks an append to persist a short prefix.
    pub(crate) fn check(&mut self, op: OpKind, path: &str) -> io::Result<Option<FaultKind>> {
        let index = self.op_count;
        self.op_count += 1;
        if self.halted {
            return Err(halted_error());
        }
        let Some(plan) = &mut self.plan else {
            return Ok(None);
        };
        let Some(kind) = plan.decide(index, op, path) else {
            return Ok(None);
        };
        self.injected += 1;
        self.trace.push(FaultRecord {
            op_index: index,
            op,
            path: path.to_string(),
            kind,
        });
        match kind {
            FaultKind::Crash => {
                self.halted = true;
                Err(kind.to_error())
            }
            FaultKind::TornWrite if op == OpKind::Append => Ok(Some(FaultKind::TornWrite)),
            // The caller applies the durable-entry/half-synced-inode
            // damage, then surfaces the crash; the machine is down from
            // this op on either way.
            FaultKind::TornRename if op == OpKind::Rename => {
                self.halted = true;
                Ok(Some(FaultKind::TornRename))
            }
            FaultKind::TornRename => Err(FaultKind::Eio.to_error()),
            k => Err(k.to_error()),
        }
    }

    pub(crate) fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    pub(crate) fn clear_plan(&mut self) {
        self.plan = None;
    }

    pub(crate) fn op_count(&self) -> u64 {
        self.op_count
    }

    pub(crate) fn injected(&self) -> u64 {
        self.injected
    }

    pub(crate) fn halted(&self) -> bool {
        self.halted
    }

    pub(crate) fn reboot(&mut self) {
        self.halted = false;
    }

    /// Halts the machine immediately, without waiting for a disk
    /// operation to trip a plan — a power pull on an idle node.
    pub(crate) fn power_off(&mut self) {
        self.halted = true;
    }

    pub(crate) fn take_trace(&mut self) -> Vec<FaultRecord> {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_op_rule_fires_once_at_exact_index() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::fail_at(2, FaultKind::Eio));
        assert!(st.check(OpKind::Append, "f").unwrap().is_none()); // op 0
        assert!(st.check(OpKind::Append, "f").unwrap().is_none()); // op 1
        let err = st.check(OpKind::Append, "f").unwrap_err(); // op 2
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(st.check(OpKind::Append, "f").unwrap().is_none()); // op 3
        assert_eq!(st.injected(), 1);
        assert_eq!(st.op_count(), 4);
        let trace = st.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].op_index, 2);
    }

    #[test]
    fn nth_match_counts_only_filtered_ops() {
        let mut st = FaultState::default();
        st.set_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultKind::Enospc)
                    .on_ops(&[OpKind::Sync])
                    .nth_match(2)
                    .times(1),
            ),
        );
        assert!(st.check(OpKind::Append, "f").unwrap().is_none());
        assert!(st.check(OpKind::Sync, "f").unwrap().is_none()); // 1st sync
        assert!(st.check(OpKind::Append, "f").unwrap().is_none());
        let err = st.check(OpKind::Sync, "f").unwrap_err(); // 2nd sync
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(st.check(OpKind::Sync, "f").unwrap().is_none()); // 3rd sync
    }

    #[test]
    fn path_filter_restricts_matches() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::new().rule(FaultRule::new(FaultKind::Eio).on_path("tab-")));
        assert!(st.check(OpKind::Append, "t/DESC").unwrap().is_none());
        assert!(st.check(OpKind::Append, "t/tab-01.lt").is_err());
    }

    #[test]
    fn crash_halts_until_reboot() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::crash_at(0));
        assert!(st.check(OpKind::Rename, "a").is_err());
        assert!(st.halted());
        // Everything fails while halted, and is not recorded as a fault.
        assert!(st.check(OpKind::Open, "b").is_err());
        assert_eq!(st.injected(), 1);
        st.reboot();
        assert!(st.check(OpKind::Open, "b").unwrap().is_none());
    }

    #[test]
    fn torn_write_passes_through_on_appends_only() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::new().rule(FaultRule::new(FaultKind::TornWrite).times(2)));
        // On an append the torn action is returned to the caller.
        assert_eq!(
            st.check(OpKind::Append, "f").unwrap(),
            Some(FaultKind::TornWrite)
        );
        // On anything else it degrades to a plain EIO failure.
        assert_eq!(
            st.check(OpKind::Sync, "f").unwrap_err().raw_os_error(),
            Some(5)
        );
    }

    #[test]
    fn torn_rename_halts_and_passes_through_on_renames_only() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::new().rule(FaultRule::new(FaultKind::TornRename).times(2)));
        // On anything but a rename it degrades to a plain EIO failure
        // and the machine stays up.
        assert_eq!(
            st.check(OpKind::Append, "f").unwrap_err().raw_os_error(),
            Some(5)
        );
        assert!(!st.halted());
        // On a rename the torn action is returned to the caller and the
        // machine is down from here on.
        assert_eq!(
            st.check(OpKind::Rename, "t/DESC").unwrap(),
            Some(FaultKind::TornRename)
        );
        assert!(st.halted());
        assert!(st.check(OpKind::Open, "t/DESC").is_err());
        st.reboot();
        assert!(st.check(OpKind::Open, "t/DESC").unwrap().is_none());
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let plan = || {
            FaultPlan::new().random(RandomFaults {
                seed: 42,
                one_in: 7,
                kind: FaultKind::Eio,
                ops: None,
            })
        };
        let run = |mut st: FaultState| {
            (0..200)
                .map(|_| st.check(OpKind::Append, "f").is_err())
                .collect::<Vec<_>>()
        };
        let mut a = FaultState::default();
        a.set_plan(plan());
        let mut b = FaultState::default();
        b.set_plan(plan());
        let (ra, rb) = (run(a), run(b));
        assert_eq!(ra, rb);
        let hits = ra.iter().filter(|x| **x).count();
        assert!(hits > 10 && hits < 60, "got {hits} faults in 200 ops");
    }
}
