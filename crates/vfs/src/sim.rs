//! [`Vfs`] backed by memory and metered by a [`DiskModel`].
//!
//! `SimVfs` serves two purposes:
//!
//! * **Benchmarking.** Every read, write, and open is charged to the disk
//!   model, accumulating virtual time on the shared [`SimClock`]. The
//!   benchmark harness runs the real engine against this VFS and reports
//!   virtual throughput and latency, reproducing the paper's spinning-disk
//!   figures on any host hardware.
//!
//! * **Crash testing.** The VFS tracks which bytes and which directory
//!   entries have been synced, and [`SimVfs::crash`] discards everything
//!   that has not — un-synced appends, un-synced creations, and un-synced
//!   renames — letting tests exercise LittleTable's prefix-durability
//!   guarantee and descriptor-replacement atomicity deterministically.

use crate::clock::SimClock;
use crate::disk::{DiskModel, DiskParams, ExtentId};
use crate::fault::{FaultKind, FaultPlan, FaultRecord, FaultState, OpKind};
use crate::vfs::{RandomAccessFile, Vfs, WritableFile};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::Arc;

/// File contents. Files are written once and then read; on first open the
/// buffer is sealed into an `Arc` so outstanding readers keep the data alive
/// even after the file is removed from the namespace (Unix unlink
/// semantics, which LittleTable relies on when merges delete source tablets
/// that queries still have open).
#[derive(Debug)]
enum Contents {
    Open(Vec<u8>),
    Sealed(Arc<Vec<u8>>),
}

impl Contents {
    fn len(&self) -> usize {
        match self {
            Contents::Open(v) => v.len(),
            Contents::Sealed(a) => a.len(),
        }
    }

    fn seal(&mut self) -> Arc<Vec<u8>> {
        match self {
            Contents::Open(v) => {
                let arc = Arc::new(std::mem::take(v));
                *self = Contents::Sealed(arc.clone());
                arc
            }
            Contents::Sealed(a) => a.clone(),
        }
    }

    fn truncate(&mut self, len: usize) {
        match self {
            Contents::Open(v) => v.truncate(len),
            Contents::Sealed(a) => Arc::make_mut(a).truncate(len),
        }
    }

    fn append(&mut self, buf: &[u8]) {
        match self {
            Contents::Open(v) => v.extend_from_slice(buf),
            Contents::Sealed(a) => Arc::make_mut(a).extend_from_slice(buf),
        }
    }
}

#[derive(Debug)]
struct FileData {
    data: Contents,
    synced_len: usize,
    extent: ExtentId,
}

#[derive(Debug, Default)]
struct Namespace {
    /// path → file id
    files: HashMap<String, u64>,
    dirs: HashSet<String>,
}

#[derive(Debug, Default)]
struct SimState {
    store: HashMap<u64, FileData>,
    live: Namespace,
    /// What the namespace would look like after a crash: updated only by
    /// `sync_dir`.
    shadow: Namespace,
    next_id: u64,
}

impl SimState {
    /// Whole-store sweep: frees every store entry no live or shadow path
    /// references. Reserved for crash recovery, where the namespace was
    /// rewritten wholesale; per-op paths use [`SimState::gc_ids`] so a
    /// namespace with many files doesn't pay a full sweep per operation.
    fn gc(&mut self, model: &DiskModel) {
        let referenced: HashSet<u64> = self
            .live
            .files
            .values()
            .chain(self.shadow.files.values())
            .copied()
            .collect();
        let dead: Vec<u64> = self
            .store
            .keys()
            .filter(|id| !referenced.contains(id))
            .copied()
            .collect();
        for id in dead {
            if let Some(f) = self.store.remove(&id) {
                model.free_extent(f.extent);
            }
        }
    }

    /// Frees exactly the store entries from `candidates` that no live or
    /// shadow path references any more — the ids an operation just
    /// displaced, checked individually.
    fn gc_ids(&mut self, model: &DiskModel, candidates: impl IntoIterator<Item = u64>) {
        for id in candidates {
            let referenced = self.live.files.values().any(|v| *v == id)
                || self.shadow.files.values().any(|v| *v == id);
            if referenced {
                continue;
            }
            if let Some(f) = self.store.remove(&id) {
                model.free_extent(f.extent);
            }
        }
    }
}

/// An in-memory, disk-model-metered [`Vfs`]. Cheap to clone; clones share
/// the same namespace, model, and fault-injection state.
#[derive(Clone)]
pub struct SimVfs {
    model: DiskModel,
    state: Arc<Mutex<SimState>>,
    faults: Arc<Mutex<FaultState>>,
}

impl SimVfs {
    /// Creates a VFS over a fresh disk with the given parameters, driving
    /// `clock` as I/O time is charged.
    pub fn new(params: DiskParams, clock: SimClock) -> Self {
        SimVfs {
            model: DiskModel::new(params, clock),
            state: Arc::new(Mutex::new(SimState::default())),
            faults: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// A VFS whose disk charges zero virtual time — for engine unit tests.
    pub fn instant() -> Self {
        SimVfs::new(DiskParams::instant(), SimClock::new(0))
    }

    /// The underlying disk model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// The simulated clock shared with the disk model.
    pub fn clock(&self) -> &SimClock {
        self.model.clock()
    }

    /// Clears all cache state in the disk model (page cache, drive cache,
    /// hot inodes), as the paper does before each benchmark run.
    pub fn clear_caches(&self) {
        self.model.clear_caches();
    }

    /// Simulates a machine crash: the namespace reverts to its last-synced
    /// state and every file loses appends after its last `sync`. Also
    /// "reboots" a machine halted by a [`FaultKind::Crash`] injection, so
    /// subsequent operations succeed again.
    pub fn crash(&self) {
        let mut s = self.state.lock();
        s.live = Namespace {
            files: s.shadow.files.clone(),
            dirs: s.shadow.dirs.clone(),
        };
        for f in s.store.values_mut() {
            f.data.truncate(f.synced_len);
        }
        s.gc(&self.model);
        drop(s);
        self.model.clear_caches();
        self.faults.lock().reboot();
    }

    // ------------------------------------------------------- fault injection

    /// Installs a fault-injection plan. Rules with relative counters
    /// (`nth_match`) start counting from here; the global op counter is
    /// *not* reset (use [`SimVfs::op_count`] to address absolute ops).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.lock().set_plan(plan);
    }

    /// Removes the installed fault plan (op counting continues).
    pub fn clear_fault_plan(&self) {
        self.faults.lock().clear_plan();
    }

    /// Total I/O operations performed since creation (faulted ones
    /// included). A deterministic workload performs the same sequence
    /// every run, so this is the size of its crash-point space.
    pub fn op_count(&self) -> u64 {
        self.faults.lock().op_count()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.lock().injected()
    }

    /// True while the simulated machine is halted by an injected crash
    /// (every operation fails until [`SimVfs::crash`] reboots it).
    pub fn halted(&self) -> bool {
        self.faults.lock().halted()
    }

    /// Pulls the power immediately: the machine halts without waiting
    /// for a disk operation to trip a fault plan. Unsynced data is lost
    /// when [`SimVfs::crash`] reboots it, exactly as with a planned
    /// crash.
    pub fn power_off(&self) {
        self.faults.lock().power_off();
    }

    /// Drains and returns the replayable trace of injected faults.
    pub fn take_fault_trace(&self) -> Vec<FaultRecord> {
        self.faults.lock().take_trace()
    }

    /// Counts one operation against the fault plan. `Ok(Some(...))` is a
    /// torn-write action only ever returned for appends.
    fn fault_check(&self, op: OpKind, path: &str) -> io::Result<Option<FaultKind>> {
        self.faults.lock().check(op, path)
    }

    /// Total bytes held across all live files (uncompressed, as stored).
    pub fn total_live_bytes(&self) -> u64 {
        let s = self.state.lock();
        s.live
            .files
            .values()
            .filter_map(|id| s.store.get(id))
            .map(|f| f.data.len() as u64)
            .sum()
    }
}

struct SimReader {
    data: Arc<Vec<u8>>,
    model: DiskModel,
    extent: ExtentId,
    path: String,
    faults: Arc<Mutex<FaultState>>,
}

impl RandomAccessFile for SimReader {
    fn read_exact_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.faults.lock().check(OpKind::Read, &self.path)?;
        let off = off as usize;
        if off + buf.len() > self.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read [{off}, {}) past EOF at {}",
                    off + buf.len(),
                    self.data.len()
                ),
            ));
        }
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        self.model.charge_read(
            self.extent,
            off as u64,
            buf.len() as u64,
            self.data.len() as u64,
        );
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.data.len() as u64)
    }
}

struct SimWriter {
    state: Arc<Mutex<SimState>>,
    model: DiskModel,
    id: u64,
    extent: ExtentId,
    path: String,
    faults: Arc<Mutex<FaultState>>,
}

impl WritableFile for SimWriter {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        // A torn write persists an un-synced prefix of the buffer and
        // then fails; the caller sees an I/O error either way.
        let torn = matches!(
            self.faults.lock().check(OpKind::Append, &self.path)?,
            Some(FaultKind::TornWrite)
        );
        let buf = if torn { &buf[..buf.len() / 2] } else { buf };
        let mut s = self.state.lock();
        let f = s
            .store
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        let off = f.data.len() as u64;
        f.data.append(buf);
        let new_len = f.data.len() as u64;
        drop(s);
        self.model.grow_extent(self.extent, new_len);
        self.model.charge_write(self.extent, off, buf.len() as u64);
        if torn {
            return Err(FaultKind::TornWrite.to_error());
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.faults.lock().check(OpKind::Sync, &self.path)?;
        let mut s = self.state.lock();
        if let Some(f) = s.store.get_mut(&self.id) {
            f.synced_len = f.data.len();
        }
        Ok(())
    }

    fn written(&self) -> u64 {
        let s = self.state.lock();
        s.store
            .get(&self.id)
            .map(|f| f.data.len() as u64)
            .unwrap_or(0)
    }
}

impl Vfs for SimVfs {
    fn open(&self, path: &str) -> io::Result<Box<dyn RandomAccessFile>> {
        self.fault_check(OpKind::Open, path)?;
        let mut s = self.state.lock();
        let id = *s
            .live
            .files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        let f = s.store.get_mut(&id).expect("namespace points at live file");
        let extent = f.extent;
        let data = f.data.seal();
        drop(s);
        self.model.charge_open(extent);
        Ok(Box::new(SimReader {
            data,
            model: self.model.clone(),
            extent,
            path: path.to_string(),
            faults: self.faults.clone(),
        }))
    }

    fn create(&self, path: &str, size_hint: u64) -> io::Result<Box<dyn WritableFile>> {
        self.fault_check(OpKind::Create, path)?;
        let extent = self.model.alloc_extent(size_hint);
        let mut s = self.state.lock();
        let id = s.next_id;
        s.next_id += 1;
        s.store.insert(
            id,
            FileData {
                data: Contents::Open(Vec::new()),
                synced_len: 0,
                extent,
            },
        );
        let displaced = s.live.files.insert(path.to_string(), id);
        s.gc_ids(&self.model, displaced);
        Ok(Box::new(SimWriter {
            state: self.state.clone(),
            model: self.model.clone(),
            id,
            extent,
            path: path.to_string(),
            faults: self.faults.clone(),
        }))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let torn = self.fault_check(OpKind::Rename, from)?.is_some();
        let mut s = self.state.lock();
        let id = s
            .live
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        let displaced = s.live.files.insert(to.to_string(), id);
        if !torn {
            return Ok(());
        }
        // Torn rename: the directory entry commits durably (metadata
        // journaled ahead of data) while the inode it points at keeps
        // only its *synced* bytes — any unsynced tail is gone — and the
        // machine halts. An application that fsyncs the file before
        // renaming (LittleTable's descriptor swap does) loses nothing
        // but the machine; one that renames an unsynced file finds a
        // valid entry pointing at a truncated inode after reboot. The
        // shadow namespace is what a crash reverts to, so the new entry
        // goes straight into it.
        s.shadow.files.remove(from);
        let shadow_displaced = s.shadow.files.insert(to.to_string(), id);
        let parent = crate::parent(to);
        if !parent.is_empty() {
            let mut cur = String::new();
            for seg in parent.split('/').filter(|p| !p.is_empty()) {
                if !cur.is_empty() {
                    cur.push('/');
                }
                cur.push_str(seg);
                s.shadow.dirs.insert(cur.clone());
            }
        }
        if let Some(f) = s.store.get_mut(&id) {
            f.data.truncate(f.synced_len);
        }
        let dead: Vec<u64> = displaced.into_iter().chain(shadow_displaced).collect();
        s.gc_ids(&self.model, dead);
        Err(FaultKind::TornRename.to_error())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::Remove, path)?;
        let mut s = self.state.lock();
        let id = s
            .live
            .files
            .remove(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        s.gc_ids(&self.model, [id]);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        let s = self.state.lock();
        s.live.files.contains_key(path) || s.live.dirs.contains(path)
    }

    fn mkdir_all(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::Mkdir, path)?;
        let mut s = self.state.lock();
        let mut cur = String::new();
        for seg in path.split('/').filter(|p| !p.is_empty()) {
            if !cur.is_empty() {
                cur.push('/');
            }
            cur.push_str(seg);
            s.live.dirs.insert(cur.clone());
        }
        Ok(())
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        self.fault_check(OpKind::ListDir, path)?;
        let s = self.state.lock();
        let prefix = if path.is_empty() {
            String::new()
        } else if !s.live.dirs.contains(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, path.to_string()));
        } else {
            format!("{path}/")
        };
        let mut names = HashSet::new();
        for p in s.live.files.keys().chain(s.live.dirs.iter()) {
            if let Some(rest) = p.strip_prefix(&prefix) {
                if rest.is_empty() {
                    continue;
                }
                let first = rest.split('/').next().unwrap();
                names.insert(first.to_string());
            }
        }
        Ok(names.into_iter().collect())
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        self.fault_check(OpKind::SyncDir, path)?;
        let mut s = self.state.lock();
        let prefix = if path.is_empty() {
            String::new()
        } else {
            format!("{path}/")
        };
        let in_dir = |p: &str| {
            p.strip_prefix(&prefix)
                .map(|rest| !rest.is_empty() && !rest.contains('/'))
                .unwrap_or(false)
        };
        // Replace the shadow's view of this directory with the live one.
        let live_entries: Vec<(String, u64)> = s
            .live
            .files
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, id)| (p.clone(), *id))
            .collect();
        let mut displaced = Vec::new();
        s.shadow.files.retain(|p, id| {
            if in_dir(p) {
                displaced.push(*id);
                false
            } else {
                true
            }
        });
        s.shadow.files.extend(live_entries);
        // Directory creations under this parent become durable, and the
        // directory chain leading here is durable too.
        let live_dirs: Vec<String> = s.live.dirs.iter().filter(|d| in_dir(d)).cloned().collect();
        s.shadow.dirs.extend(live_dirs);
        let mut cur = String::new();
        for seg in path.split('/').filter(|p| !p.is_empty()) {
            if !cur.is_empty() {
                cur.push('/');
            }
            cur.push_str(seg);
            s.shadow.dirs.insert(cur.clone());
        }
        s.gc_ids(&self.model, displaced);
        Ok(())
    }

    fn file_size(&self, path: &str) -> io::Result<u64> {
        let s = self.state.lock();
        let id = s
            .live
            .files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        Ok(s.store[id].data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock as _;
    use crate::FaultRule;

    fn vfs() -> SimVfs {
        SimVfs::instant()
    }

    #[test]
    fn write_read_round_trip() {
        let v = vfs();
        let mut w = v.create("f", 0).unwrap();
        w.append(b"abcdef").unwrap();
        drop(w);
        let r = v.open("f").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact_at(2, &mut buf).unwrap();
        assert_eq!(&buf, b"cde");
        assert_eq!(r.len().unwrap(), 6);
    }

    #[test]
    fn open_handle_survives_deletion() {
        // POSIX unlink-while-open: a reader opened before the file was
        // removed keeps reading the old bytes, and the disk model must
        // charge the read instead of panicking on the freed extent.
        // (Regression: the engine's insert uniqueness check reads tablet
        // handles that a concurrent merge may have already deleted.)
        let v = vfs();
        let mut w = v.create("f", 0).unwrap();
        w.append(b"abcdef").unwrap();
        w.sync().unwrap();
        drop(w);
        let r = v.open("f").unwrap();
        v.remove("f").unwrap();
        assert!(!v.exists("f"));
        let mut buf = [0u8; 6];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn read_past_eof_errors() {
        let v = vfs();
        v.create("f", 0).unwrap().append(b"ab").unwrap();
        let r = v.open("f").unwrap();
        let mut buf = [0u8; 3];
        assert!(r.read_exact_at(0, &mut buf).is_err());
    }

    #[test]
    fn list_dir_sees_files_and_subdirs() {
        let v = vfs();
        v.mkdir_all("t/sub").unwrap();
        v.create("t/a", 0).unwrap();
        v.create("t/b", 0).unwrap();
        v.create("t/sub/c", 0).unwrap();
        let mut names = v.list_dir("t").unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b", "sub"]);
    }

    #[test]
    fn crash_discards_unsynced_appends() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        let mut w = v.create("d/f", 0).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        v.sync_dir("d").unwrap();
        w.append(b" lost").unwrap();
        drop(w);
        v.crash();
        let r = v.open("d/f").unwrap();
        assert_eq!(r.len().unwrap(), 7);
    }

    #[test]
    fn crash_discards_unsynced_creations() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        let mut w = v.create("d/new", 0).unwrap();
        w.append(b"x").unwrap();
        w.sync().unwrap(); // data synced, but directory entry is not
        drop(w);
        v.crash();
        assert!(!v.exists("d/new"));
    }

    #[test]
    fn crash_preserves_synced_rename() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        let mut w = v.create("d/tmp", 0).unwrap();
        w.append(b"v2").unwrap();
        w.sync().unwrap();
        drop(w);
        v.rename("d/tmp", "d/final").unwrap();
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        v.crash();
        assert!(v.exists("d/final"));
        assert!(!v.exists("d/tmp"));
        assert_eq!(v.file_size("d/final").unwrap(), 2);
    }

    #[test]
    fn crash_reverts_unsynced_rename() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        let mut w = v.create("d/a", 0).unwrap();
        w.append(b"1").unwrap();
        w.sync().unwrap();
        drop(w);
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        v.rename("d/a", "d/b").unwrap();
        v.crash();
        assert!(v.exists("d/a"));
        assert!(!v.exists("d/b"));
    }

    #[test]
    fn torn_rename_leaves_durable_entry_on_truncated_inode() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        // Four bytes synced, four more appended but NOT synced: the
        // classic rename-without-fsync bug.
        let mut w = v.create("d/tmp", 0).unwrap();
        w.append(b"1234").unwrap();
        w.sync().unwrap();
        w.append(b"5678").unwrap();
        drop(w);
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultKind::TornRename).on_ops(&[OpKind::Rename])),
        );
        let err = v.rename("d/tmp", "d/final").unwrap_err();
        assert!(err.to_string().contains("torn rename"));
        assert!(v.halted());
        v.crash();
        // The entry survived the crash without any sync_dir — metadata
        // committed ahead of data — but points only at the synced bytes.
        assert!(v.exists("d/final"));
        assert!(!v.exists("d/tmp"));
        assert_eq!(v.file_size("d/final").unwrap(), 4);
    }

    #[test]
    fn torn_rename_keeps_fully_synced_source_intact() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        for (name, content) in [("d/old", &b"oldversion"[..]), ("d/tmp", &b"newer!"[..])] {
            let mut w = v.create(name, 0).unwrap();
            w.append(content).unwrap();
            w.sync().unwrap();
            drop(w);
        }
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultKind::TornRename).on_ops(&[OpKind::Rename])),
        );
        v.rename("d/tmp", "d/old").unwrap_err();
        v.crash();
        // The overwriting entry is the durable one; its data was synced
        // before the rename, so it survives whole — the discipline the
        // descriptor swap relies on.
        assert_eq!(v.file_size("d/old").unwrap(), 6);
        assert!(!v.exists("d/tmp"));
    }

    #[test]
    fn remove_then_sync_is_durable() {
        let v = vfs();
        v.mkdir_all("d").unwrap();
        v.create("d/f", 0).unwrap().sync().unwrap();
        v.sync_dir("").unwrap();
        v.sync_dir("d").unwrap();
        v.remove("d/f").unwrap();
        v.sync_dir("d").unwrap();
        v.crash();
        assert!(!v.exists("d/f"));
    }

    #[test]
    fn reads_charge_the_model() {
        let v = SimVfs::new(DiskParams::paper_disk(), SimClock::new(0));
        let mut w = v.create("f", 1 << 20).unwrap();
        w.append(&vec![7u8; 1 << 20]).unwrap();
        drop(w);
        let written = v.model().stats().bytes_written;
        assert_eq!(written, 1 << 20);
        v.clear_caches();
        let r = v.open("f").unwrap();
        let mut buf = vec![0u8; 4096];
        r.read_exact_at(0, &mut buf).unwrap();
        // inode seek + data seek
        assert_eq!(v.model().stats().seeks, 3); // 1 write seek + 2 read-side
        assert!(v.clock().now_micros() > 16_000);
    }

    #[test]
    fn total_live_bytes_counts_current_files() {
        let v = vfs();
        v.create("a", 0).unwrap().append(&[0; 10]).unwrap();
        v.create("b", 0).unwrap().append(&[0; 5]).unwrap();
        assert_eq!(v.total_live_bytes(), 15);
        v.remove("a").unwrap();
        assert_eq!(v.total_live_bytes(), 5);
    }

    #[test]
    fn injected_crash_halts_until_reboot() {
        use crate::fault::{FaultKind, FaultPlan};
        let v = vfs();
        v.create("keep", 0).unwrap().sync().unwrap();
        v.sync_dir("").unwrap();
        // op_count so far: Create + SyncDir (sync on the writer too).
        let at = v.op_count();
        v.set_fault_plan(FaultPlan::fail_at(at, FaultKind::Crash));
        assert!(v.create("lost", 0).is_err());
        // Machine is down: every subsequent op fails too.
        assert!(v.create("also-lost", 0).is_err());
        assert!(v.list_dir("").is_err());
        assert!(v.halted());
        v.crash(); // power-cycle: revert to durable state and reboot
        assert!(!v.halted());
        assert!(v.exists("keep"));
        assert!(!v.exists("lost"));
        assert_eq!(v.faults_injected(), 1);
    }

    #[test]
    fn torn_write_persists_only_a_prefix() {
        use crate::fault::{FaultKind, FaultPlan, FaultRule, OpKind};
        let v = vfs();
        let mut w = v.create("f", 0).unwrap();
        w.append(&[1u8; 64]).unwrap();
        w.sync().unwrap();
        v.sync_dir("").unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultKind::TornWrite).on_ops(&[OpKind::Append])),
        );
        // The torn append reports failure but leaves half the payload behind.
        assert!(w.append(&[2u8; 64]).is_err());
        v.clear_fault_plan();
        w.sync().unwrap();
        let r = v.open("f").unwrap();
        assert_eq!(v.file_size("f").unwrap(), 64 + 32);
        let mut buf = vec![0u8; 96];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..64], &[1u8; 64][..]);
        assert_eq!(&buf[64..], &[2u8; 32][..]);
    }

    #[test]
    fn enospc_on_sync_leaves_namespace_untouched() {
        use crate::fault::{FaultKind, FaultPlan, FaultRule, OpKind};
        let v = vfs();
        let mut w = v.create("f", 0).unwrap();
        w.append(&[9u8; 16]).unwrap();
        v.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultKind::Enospc).on_ops(&[OpKind::Sync])),
        );
        let err = w.sync().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        v.clear_fault_plan();
        // Unsynced data still vanishes on crash: the failed sync promised
        // nothing.
        v.crash();
        assert!(!v.exists("f"));
    }

    #[test]
    fn fault_trace_records_what_fired() {
        use crate::fault::{FaultKind, FaultPlan, OpKind};
        let v = vfs();
        v.create("a", 0).unwrap();
        let at = v.op_count();
        v.set_fault_plan(FaultPlan::fail_at(at, FaultKind::Eio));
        assert!(v.open("a").is_err());
        let trace = v.take_fault_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].op_index, at);
        assert_eq!(trace[0].op, OpKind::Open);
        assert_eq!(trace[0].path, "a");
        assert_eq!(trace[0].kind, FaultKind::Eio);
    }
}
