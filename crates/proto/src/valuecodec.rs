//! Tagged value, row, and query serialization shared by requests and
//! responses.

use littletable_core::error::{Error, Result};
use littletable_core::query::{PrefixBound, Query, TsBound};
use littletable_core::schema::{decode_value, encode_value};
use littletable_core::util::{put_varint, unzigzag, zigzag, Reader};
use littletable_core::value::{ColumnType, Value};

/// Appends a type-tagged value.
pub fn put_tagged_value(out: &mut Vec<u8>, v: &Value) {
    out.push(v.column_type().tag());
    encode_value(out, v);
}

/// Reads a type-tagged value.
pub fn get_tagged_value(r: &mut Reader<'_>) -> Result<Value> {
    let ty = ColumnType::from_tag(r.u8()?)?;
    decode_value(r, ty)
}

/// Appends a list of tagged values (one row or key prefix).
pub fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_varint(out, values.len() as u64);
    for v in values {
        put_tagged_value(out, v);
    }
}

/// Reads a list of tagged values.
pub fn get_values(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.varint()? as usize;
    if n > 1 << 20 {
        return Err(Error::corrupt("implausible value count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_tagged_value(r)?);
    }
    Ok(out)
}

/// Appends a list of rows.
pub fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_varint(out, rows.len() as u64);
    for row in rows {
        put_values(out, row);
    }
}

/// Reads a list of rows.
pub fn get_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>> {
    let n = r.varint()? as usize;
    if n > 1 << 24 {
        return Err(Error::corrupt("implausible row count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_values(r)?);
    }
    Ok(out)
}

fn put_prefix_bound(out: &mut Vec<u8>, b: &Option<PrefixBound>) {
    match b {
        None => out.push(0),
        Some(pb) => {
            out.push(if pb.inclusive { 2 } else { 1 });
            put_values(out, &pb.values);
        }
    }
}

fn get_prefix_bound(r: &mut Reader<'_>) -> Result<Option<PrefixBound>> {
    match r.u8()? {
        0 => Ok(None),
        t @ (1 | 2) => Ok(Some(PrefixBound {
            inclusive: t == 2,
            values: get_values(r)?,
        })),
        t => Err(Error::corrupt(format!("bad prefix bound tag {t}"))),
    }
}

fn put_ts_bound(out: &mut Vec<u8>, b: &Option<TsBound>) {
    match b {
        None => out.push(0),
        Some(tb) => {
            out.push(if tb.inclusive { 2 } else { 1 });
            put_varint(out, zigzag(tb.ts));
        }
    }
}

fn get_ts_bound(r: &mut Reader<'_>) -> Result<Option<TsBound>> {
    match r.u8()? {
        0 => Ok(None),
        t @ (1 | 2) => Ok(Some(TsBound {
            inclusive: t == 2,
            ts: unzigzag(r.varint()?),
        })),
        t => Err(Error::corrupt(format!("bad ts bound tag {t}"))),
    }
}

/// Serializes a [`Query`].
pub fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_prefix_bound(out, &q.key_min);
    put_prefix_bound(out, &q.key_max);
    put_ts_bound(out, &q.ts_min);
    put_ts_bound(out, &q.ts_max);
    out.push(q.descending as u8);
    match q.limit {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_varint(out, n as u64);
        }
    }
}

/// Deserializes a [`Query`].
pub fn get_query(r: &mut Reader<'_>) -> Result<Query> {
    let key_min = get_prefix_bound(r)?;
    let key_max = get_prefix_bound(r)?;
    let ts_min = get_ts_bound(r)?;
    let ts_max = get_ts_bound(r)?;
    let descending = r.u8()? != 0;
    let limit = match r.u8()? {
        0 => None,
        1 => Some(r.varint()? as usize),
        t => return Err(Error::corrupt(format!("bad limit tag {t}"))),
    };
    Ok(Query {
        key_min,
        key_max,
        ts_min,
        ts_max,
        descending,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let vals = vec![
            Value::I32(-5),
            Value::I64(1 << 40),
            Value::F64(2.5),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Str("net\0work".into()),
            Value::Blob(vec![0, 255, 7]),
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &vals);
        let mut r = Reader::new(&buf);
        assert_eq!(get_values(&mut r).unwrap(), vals);
        assert!(r.is_empty());
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            vec![Value::I64(1), Value::Timestamp(2)],
            vec![Value::I64(3), Value::Timestamp(4)],
        ];
        let mut buf = Vec::new();
        put_rows(&mut buf, &rows);
        assert_eq!(get_rows(&mut Reader::new(&buf)).unwrap(), rows);
    }

    #[test]
    fn queries_round_trip() {
        let q = Query::all()
            .with_key_min(vec![Value::I64(1)], true)
            .with_key_max(vec![Value::I64(9), Value::Str("x".into())], false)
            .with_ts_range(100, 200)
            .descending()
            .with_limit(42);
        let mut buf = Vec::new();
        put_query(&mut buf, &q);
        assert_eq!(get_query(&mut Reader::new(&buf)).unwrap(), q);
        // And the empty query.
        let mut buf = Vec::new();
        put_query(&mut buf, &Query::all());
        assert_eq!(get_query(&mut Reader::new(&buf)).unwrap(), Query::all());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        let mut buf = Vec::new();
        put_values(&mut buf, &[Value::I64(5)]);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(get_values(&mut r).is_err() || cut == 0);
        }
    }
}
