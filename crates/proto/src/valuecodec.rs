//! Tagged value, row, and query serialization shared by requests and
//! responses.

use littletable_core::error::{Error, Result};
use littletable_core::query::{PrefixBound, Query, TsBound};
use littletable_core::schema::{decode_value, encode_value};
use littletable_core::util::{put_varint, unzigzag, zigzag, Reader};
use littletable_core::value::{ColumnType, Value};

/// Wire tag for an absent cell (NULL). The engine has no NULLs (§3.5);
/// this tag exists only in insert rows, where an absent timestamp means
/// "server, stamp this row with your current time" (§3.1). Disjoint from
/// every [`ColumnType::tag`].
pub const NULL_TAG: u8 = 0xFF;

/// Appends a type-tagged value.
pub fn put_tagged_value(out: &mut Vec<u8>, v: &Value) {
    out.push(v.column_type().tag());
    encode_value(out, v);
}

/// Reads a type-tagged value.
pub fn get_tagged_value(r: &mut Reader<'_>) -> Result<Value> {
    let ty = ColumnType::from_tag(r.u8()?)?;
    decode_value(r, ty)
}

/// Appends a possibly-absent cell: [`NULL_TAG`] for `None`, the tagged
/// value otherwise.
pub fn put_opt_tagged_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => out.push(NULL_TAG),
        Some(v) => put_tagged_value(out, v),
    }
}

/// Reads a possibly-absent cell written by [`put_opt_tagged_value`].
pub fn get_opt_tagged_value(r: &mut Reader<'_>) -> Result<Option<Value>> {
    let tag = r.u8()?;
    if tag == NULL_TAG {
        return Ok(None);
    }
    let ty = ColumnType::from_tag(tag)?;
    decode_value(r, ty).map(Some)
}

/// Appends a list of tagged values (one row or key prefix).
pub fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_varint(out, values.len() as u64);
    for v in values {
        put_tagged_value(out, v);
    }
}

/// Reads a list of tagged values.
pub fn get_values(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.varint()? as usize;
    if n > 1 << 20 {
        return Err(Error::corrupt("implausible value count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_tagged_value(r)?);
    }
    Ok(out)
}

/// Appends a list of rows.
pub fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_varint(out, rows.len() as u64);
    for row in rows {
        put_values(out, row);
    }
}

/// Reads a list of rows.
pub fn get_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>> {
    let n = r.varint()? as usize;
    if n > 1 << 24 {
        return Err(Error::corrupt("implausible row count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_values(r)?);
    }
    Ok(out)
}

/// Appends insert rows, whose cells may be absent ([`NULL_TAG`]).
pub fn put_insert_rows(out: &mut Vec<u8>, rows: &[Vec<Option<Value>>]) {
    put_varint(out, rows.len() as u64);
    for row in rows {
        put_varint(out, row.len() as u64);
        for v in row {
            put_opt_tagged_value(out, v);
        }
    }
}

/// Reads insert rows written by [`put_insert_rows`].
pub fn get_insert_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Option<Value>>>> {
    let n = r.varint()? as usize;
    if n > 1 << 24 {
        return Err(Error::corrupt("implausible row count"));
    }
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let m = r.varint()? as usize;
        if m > 1 << 20 {
            return Err(Error::corrupt("implausible value count"));
        }
        let mut row = Vec::with_capacity(m.min(1 << 16));
        for _ in 0..m {
            row.push(get_opt_tagged_value(r)?);
        }
        out.push(row);
    }
    Ok(out)
}

fn put_prefix_bound(out: &mut Vec<u8>, b: &Option<PrefixBound>) {
    match b {
        None => out.push(0),
        Some(pb) => {
            out.push(if pb.inclusive { 2 } else { 1 });
            put_values(out, &pb.values);
        }
    }
}

fn get_prefix_bound(r: &mut Reader<'_>) -> Result<Option<PrefixBound>> {
    match r.u8()? {
        0 => Ok(None),
        t @ (1 | 2) => Ok(Some(PrefixBound {
            inclusive: t == 2,
            values: get_values(r)?,
        })),
        t => Err(Error::corrupt(format!("bad prefix bound tag {t}"))),
    }
}

fn put_ts_bound(out: &mut Vec<u8>, b: &Option<TsBound>) {
    match b {
        None => out.push(0),
        Some(tb) => {
            out.push(if tb.inclusive { 2 } else { 1 });
            put_varint(out, zigzag(tb.ts));
        }
    }
}

fn get_ts_bound(r: &mut Reader<'_>) -> Result<Option<TsBound>> {
    match r.u8()? {
        0 => Ok(None),
        t @ (1 | 2) => Ok(Some(TsBound {
            inclusive: t == 2,
            ts: unzigzag(r.varint()?),
        })),
        t => Err(Error::corrupt(format!("bad ts bound tag {t}"))),
    }
}

/// Serializes a [`Query`].
pub fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_prefix_bound(out, &q.key_min);
    put_prefix_bound(out, &q.key_max);
    put_ts_bound(out, &q.ts_min);
    put_ts_bound(out, &q.ts_max);
    out.push(q.descending as u8);
    match q.limit {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_varint(out, n as u64);
        }
    }
}

/// Deserializes a [`Query`].
pub fn get_query(r: &mut Reader<'_>) -> Result<Query> {
    let key_min = get_prefix_bound(r)?;
    let key_max = get_prefix_bound(r)?;
    let ts_min = get_ts_bound(r)?;
    let ts_max = get_ts_bound(r)?;
    let descending = r.u8()? != 0;
    let limit = match r.u8()? {
        0 => None,
        1 => Some(r.varint()? as usize),
        t => return Err(Error::corrupt(format!("bad limit tag {t}"))),
    };
    Ok(Query {
        key_min,
        key_max,
        ts_min,
        ts_max,
        descending,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let vals = vec![
            Value::I32(-5),
            Value::I64(1 << 40),
            Value::F64(2.5),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Str("net\0work".into()),
            Value::Blob(vec![0, 255, 7]),
        ];
        let mut buf = Vec::new();
        put_values(&mut buf, &vals);
        let mut r = Reader::new(&buf);
        assert_eq!(get_values(&mut r).unwrap(), vals);
        assert!(r.is_empty());
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            vec![Value::I64(1), Value::Timestamp(2)],
            vec![Value::I64(3), Value::Timestamp(4)],
        ];
        let mut buf = Vec::new();
        put_rows(&mut buf, &rows);
        assert_eq!(get_rows(&mut Reader::new(&buf)).unwrap(), rows);
    }

    #[test]
    fn queries_round_trip() {
        let q = Query::all()
            .with_key_min(vec![Value::I64(1)], true)
            .with_key_max(vec![Value::I64(9), Value::Str("x".into())], false)
            .with_ts_range(100, 200)
            .descending()
            .with_limit(42);
        let mut buf = Vec::new();
        put_query(&mut buf, &q);
        assert_eq!(get_query(&mut Reader::new(&buf)).unwrap(), q);
        // And the empty query.
        let mut buf = Vec::new();
        put_query(&mut buf, &Query::all());
        assert_eq!(get_query(&mut Reader::new(&buf)).unwrap(), Query::all());
    }

    #[test]
    fn insert_rows_with_null_cells_round_trip() {
        let rows: Vec<Vec<Option<Value>>> = vec![
            vec![Some(Value::I64(1)), None, Some(Value::Str("a".into()))],
            vec![
                Some(Value::I64(2)),
                Some(Value::Timestamp(7)),
                Some(Value::Str("b".into())),
            ],
            vec![None],
        ];
        let mut buf = Vec::new();
        put_insert_rows(&mut buf, &rows);
        let mut r = Reader::new(&buf);
        assert_eq!(get_insert_rows(&mut r).unwrap(), rows);
        assert!(r.is_empty());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        let mut buf = Vec::new();
        put_values(&mut buf, &[Value::I64(5)]);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(get_values(&mut r).is_err() || cut == 0);
        }
    }
}
