//! Length-prefixed framing over any byte stream.

use std::io::{self, Read, Write};

/// Upper bound on a single frame, protecting both sides from corrupt or
/// hostile length prefixes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame: a little-endian u32 length followed by the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame written by [`write_frame`]. Returns `None` on a clean
/// EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..6]; // cut inside the payload
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let buf = (u32::MAX).to_le_bytes();
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }
}
