//! Length-prefixed framing over any byte stream.
//!
//! Two consumers share the format `[len: u32 LE][payload]`:
//!
//! * [`read_frame`] / [`write_frame`] — blocking helpers for clients and
//!   tests, which read exactly one frame and leave the stream positioned
//!   at the next.
//! * [`FrameDecoder`] — an incremental, push-based decoder for the
//!   server's nonblocking event loop. Bytes arrive in whatever chunks the
//!   socket delivers; partial header and payload state is preserved
//!   across `WouldBlock`, so a frame split across arbitrarily many reads
//!   (or written by an arbitrarily slow client) reassembles correctly.
//!
//! Neither path trusts the length prefix with memory: allocation grows
//! with bytes actually received (in chunks of at most [`READ_CHUNK`]),
//! never by the advertised length up front, so a hostile 64 MiB prefix
//! costs its sender 64 MiB of traffic before it costs the server 64 MiB
//! of memory.

use std::io::{self, Read, Write};

/// Upper bound on a single frame, protecting both sides from corrupt or
/// hostile length prefixes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Largest single allocation step and read request while assembling a
/// frame. Bounds up-front memory commitment for untrusted length
/// prefixes.
pub const READ_CHUNK: usize = 64 << 10;

/// Writes one frame: a little-endian u32 length followed by the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn check_len(len: usize) -> io::Result<()> {
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    Ok(())
}

/// Reads one frame written by [`write_frame`]. Returns `None` on a clean
/// EOF at a frame boundary.
///
/// The payload buffer grows in steps of at most [`READ_CHUNK`] as bytes
/// arrive; a length prefix never commits memory ahead of the data. Reads
/// exactly the frame's bytes from `r`, leaving the stream positioned at
/// the next frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    check_len(len)?;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let old = payload.len();
        payload.resize(old + take, 0);
        r.read_exact(&mut payload[old..])?;
    }
    Ok(Some(payload))
}

/// Incremental frame reassembly for nonblocking streams.
///
/// Feed raw bytes with [`FrameDecoder::push`] (or pull them from a
/// reader with [`FrameDecoder::read_from`]) and drain complete frames
/// with [`FrameDecoder::next_frame`]. Partial frames persist inside the
/// decoder between calls, so a read that ends mid-frame (`WouldBlock`,
/// short read, slow writer) never loses or misaligns bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Buffered bytes: `buf[pos..]` is unconsumed input.
    buf: Vec<u8>,
    /// Consumed prefix of `buf`, compacted away periodically.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Performs one `read` of at most [`READ_CHUNK`] bytes from `r` into
    /// the decoder. Returns the byte count (0 means EOF). `WouldBlock`
    /// and friends surface as errors for the caller to interpret; buffered
    /// state is unaffected by them.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        let res = r.read(&mut self.buf[old..]);
        let n = *res.as_ref().unwrap_or(&0);
        self.buf.truncate(old + n);
        res
    }

    /// Pops the next complete frame, if the buffer holds one. Errors on a
    /// length prefix above [`MAX_FRAME_LEN`]; the connection should be
    /// dropped, as the stream can no longer be trusted.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        check_len(len)?;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Unconsumed bytes currently buffered (partial frame state).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes of memory the decoder has committed — observable proof that
    /// a hostile length prefix does not allocate ahead of its payload.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// True when the decoder sits at a frame boundary with nothing
    /// buffered (a clean EOF point).
    pub fn is_clean(&self) -> bool {
        self.buffered() == 0
    }

    /// Drops the consumed prefix once it dominates the buffer, keeping
    /// amortized O(1) per byte.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= READ_CHUNK) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..6]; // cut inside the payload
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let buf = (u32::MAX).to_le_bytes();
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn large_frames_read_in_chunks() {
        // A frame bigger than one READ_CHUNK still round-trips through
        // the incremental payload loop.
        let payload: Vec<u8> = (0..READ_CHUNK * 3 + 17).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
    }

    /// A reader that records the largest buffer any single `read` call
    /// asked it to fill — the observable for "don't commit the advertised
    /// length up front".
    struct RequestSizeProbe<'a> {
        data: &'a [u8],
        max_request: usize,
    }

    impl Read for RequestSizeProbe<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.max_request = self.max_request.max(buf.len());
            let n = buf.len().min(self.data.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn hostile_prefix_does_not_commit_payload_up_front() {
        // Claim the maximum frame length, deliver nothing. The old code
        // allocated and asked for all 64 MiB in one read_exact; the
        // incremental path never requests (or allocates) more than one
        // chunk at a time.
        let mut wire = ((MAX_FRAME_LEN as u32).to_le_bytes()).to_vec();
        wire.extend_from_slice(&[0u8; 1024]); // token payload, then EOF
        let mut probe = RequestSizeProbe {
            data: &wire,
            max_request: 0,
        };
        assert!(read_frame(&mut probe).is_err()); // EOF mid-payload
        assert!(
            probe.max_request <= READ_CHUNK,
            "read_frame requested {} bytes at once",
            probe.max_request
        );

        // Same property for the incremental decoder: after the hostile
        // prefix arrives, committed memory tracks received bytes, not the
        // advertised length.
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32).to_le_bytes());
        assert!(dec.next_frame().unwrap().is_none());
        assert!(
            dec.buffer_capacity() < 2 * READ_CHUNK,
            "decoder committed {} bytes for an empty payload",
            dec.buffer_capacity()
        );
    }

    #[test]
    fn decoder_reassembles_across_arbitrary_splits() {
        let frames: Vec<Vec<u8>> = vec![
            b"hello".to_vec(),
            Vec::new(),
            (0..10_000).map(|i| i as u8).collect(),
            b"tail".to_vec(),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        // Feed the byte stream in every chunk size from 1 to 19 and in
        // one shot; the decoder must yield the same frames every time.
        for chunk in (1..20).chain([wire.len()]) {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.push(piece);
                while let Some(frame) = dec.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert!(dec.is_clean());
        }
    }

    #[test]
    fn decoder_rejects_oversized_length() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_read_from_tracks_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"defg").unwrap();
        let mut r = &wire[..];
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        loop {
            match dec.read_from(&mut r) {
                Ok(0) => break,
                Ok(_) => {
                    while let Some(f) = dec.next_frame().unwrap() {
                        got.push(f);
                    }
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"defg".to_vec()]);
        assert!(dec.is_clean());
    }
}
