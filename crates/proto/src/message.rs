//! Request and response messages.

use crate::valuecodec::{
    get_insert_rows, get_query, get_rows, get_tagged_value, get_values, put_insert_rows, put_query,
    put_rows, put_tagged_value, put_values,
};
use littletable_core::error::{Error, Result};
use littletable_core::query::Query;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::util::{put_string, put_varint, unzigzag, zigzag, Reader};
use littletable_core::value::{ColumnType, Value};
use littletable_vfs::Micros;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List table names.
    ListTables,
    /// Fetch a table's schema and TTL.
    GetSchema {
        /// Table name.
        table: String,
    },
    /// Create a table.
    CreateTable {
        /// Table name.
        table: String,
        /// Schema.
        schema: Schema,
        /// Optional row TTL in micros.
        ttl: Option<Micros>,
    },
    /// Drop a table and delete its data.
    DropTable {
        /// Table name.
        table: String,
    },
    /// Append a column (§3.5).
    AddColumn {
        /// Table name.
        table: String,
        /// New column.
        column: ColumnDef,
    },
    /// Widen an `int32` column to `int64` (§3.5).
    WidenColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Change a table's TTL.
    SetTtl {
        /// Table name.
        table: String,
        /// New TTL, or `None` for unlimited.
        ttl: Option<Micros>,
    },
    /// Insert a batch of rows.
    Insert {
        /// Table name.
        table: String,
        /// Rows in schema order. A `None` cell is NULL on the wire and is
        /// legal only in the timestamp column: it marks a row whose client
        /// omitted the timestamp, which the server stamps with its current
        /// time (§3.1). Rows with explicit timestamps keep them, even in
        /// the same batch.
        rows: Vec<Vec<Option<Value>>>,
    },
    /// Run a bounded query.
    Query {
        /// Table name.
        table: String,
        /// The bounding box, direction, and limit.
        query: Query,
    },
    /// Find the most recent row for a key prefix (§3.4.5).
    Latest {
        /// Table name.
        table: String,
        /// Strict prefix of the key columns.
        prefix: Vec<Value>,
    },
    /// Liveness check.
    Ping,
    /// Fetch a table's operational counters.
    Stats {
        /// Table name.
        table: String,
    },
    /// Create a rollup table over a base table.
    CreateRollup {
        /// Rollup table name.
        name: String,
        /// Base table name.
        base: String,
        /// Bucket period in micros.
        period: Micros,
        /// Columns given SUM/MIN/MAX stats.
        value_cols: Vec<String>,
        /// Columns given HyperLogLog distinct sketches.
        distinct_cols: Vec<String>,
    },
    /// Drop a rollup table and its maintenance spec.
    DropRollup {
        /// Rollup name.
        name: String,
    },
    /// Ask a node where it stands in the fleet: which shard it serves,
    /// its fencing epoch, and whether it believes it is the primary.
    /// Clients use this to refresh a stale shard map after a
    /// [`ErrorKind::NotPrimary`] rejection.
    NodeStatus,
}

/// Error categories carried over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// No such table.
    NoSuchTable,
    /// Table already exists.
    TableExists,
    /// Malformed request or row.
    Invalid,
    /// Unsupported schema change.
    SchemaChange,
    /// Anything else (I/O, corruption).
    Internal,
    /// The node is not the primary for its shard (it is a warm spare, or
    /// was fenced after a failover) and refuses writes. The client should
    /// refresh its shard map and re-send to the current primary.
    NotPrimary,
}

impl ErrorKind {
    fn tag(self) -> u8 {
        match self {
            ErrorKind::NoSuchTable => 0,
            ErrorKind::TableExists => 1,
            ErrorKind::Invalid => 2,
            ErrorKind::SchemaChange => 3,
            ErrorKind::Internal => 4,
            ErrorKind::NotPrimary => 5,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        Ok(match t {
            0 => ErrorKind::NoSuchTable,
            1 => ErrorKind::TableExists,
            2 => ErrorKind::Invalid,
            3 => ErrorKind::SchemaChange,
            4 => ErrorKind::Internal,
            5 => ErrorKind::NotPrimary,
            t => return Err(Error::corrupt(format!("bad error kind {t}"))),
        })
    }

    /// Classifies an engine error for the wire.
    pub fn of(e: &Error) -> Self {
        match e {
            Error::NoSuchTable(_) => ErrorKind::NoSuchTable,
            Error::TableExists(_) => ErrorKind::TableExists,
            Error::Invalid(_) | Error::DuplicateKey(_) => ErrorKind::Invalid,
            Error::SchemaChange(_) => ErrorKind::SchemaChange,
            _ => ErrorKind::Internal,
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// Failure.
    Error {
        /// Category.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
    /// Table names.
    Tables {
        /// Sorted names.
        names: Vec<String>,
    },
    /// A table's schema and TTL.
    SchemaInfo {
        /// Current schema.
        schema: Schema,
        /// Row TTL.
        ttl: Option<Micros>,
    },
    /// Insert outcome.
    InsertResult {
        /// Rows accepted.
        inserted: u64,
        /// Rows rejected as duplicate keys.
        duplicates: u64,
    },
    /// Query results (one response per query; the server caps row count
    /// and sets `more_available` when it does, §3.5).
    Rows {
        /// Matching rows in requested order.
        rows: Vec<Vec<Value>>,
        /// True when the server row limit truncated the result.
        more_available: bool,
    },
    /// Latest-row result.
    LatestRow {
        /// The row, if any key with the prefix exists.
        row: Option<Vec<Value>>,
    },
    /// Liveness reply.
    Pong,
    /// A table's operational counters (subset of the engine's
    /// `StatsSnapshot` that operators watch: §5.2's metrics).
    Stats {
        /// Rows accepted by inserts.
        rows_inserted: u64,
        /// Rows rejected as duplicates.
        duplicate_keys: u64,
        /// Rows scanned by queries.
        rows_scanned: u64,
        /// Rows returned by queries.
        rows_returned: u64,
        /// Tablets flushed.
        tablets_flushed: u64,
        /// Merge operations.
        merges: u64,
        /// On-disk tablet count right now.
        disk_tablets: u64,
        /// On-disk bytes right now.
        disk_bytes: u64,
    },
    /// A node's fleet position, answering [`Request::NodeStatus`].
    NodeStatus {
        /// Stable node identifier within the fleet.
        node: u64,
        /// The shard this node serves.
        shard: u32,
        /// Fencing epoch: bumped on every promotion/demotion, so a
        /// response from an older epoch is recognizably stale.
        epoch: u64,
        /// True when the node believes it is its shard's primary.
        primary: bool,
    },
}

fn put_opt_micros(out: &mut Vec<u8>, v: Option<Micros>) {
    match v {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_varint(out, zigzag(m));
        }
    }
}

fn get_opt_micros(r: &mut Reader<'_>) -> Result<Option<Micros>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(unzigzag(r.varint()?))),
        t => Err(Error::corrupt(format!("bad optional tag {t}"))),
    }
}

fn put_string_list(out: &mut Vec<u8>, items: &[String]) {
    put_varint(out, items.len() as u64);
    for s in items {
        put_string(out, s);
    }
}

fn get_string_list(r: &mut Reader<'_>) -> Result<Vec<String>> {
    let n = r.varint()? as usize;
    if n > 1 << 16 {
        return Err(Error::corrupt("implausible column-list length"));
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(r.string()?);
    }
    Ok(items)
}

fn put_column(out: &mut Vec<u8>, c: &ColumnDef) {
    put_string(out, &c.name);
    out.push(c.ty.tag());
    put_tagged_value(out, &c.default);
}

fn get_column(r: &mut Reader<'_>) -> Result<ColumnDef> {
    let name = r.string()?;
    let ty = ColumnType::from_tag(r.u8()?)?;
    let default = get_tagged_value(r)?;
    if !default.fits(ty) {
        return Err(Error::corrupt("column default has wrong type"));
    }
    Ok(ColumnDef { name, ty, default })
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::ListTables => out.push(0),
            Request::GetSchema { table } => {
                out.push(1);
                put_string(&mut out, table);
            }
            Request::CreateTable { table, schema, ttl } => {
                out.push(2);
                put_string(&mut out, table);
                schema.encode(&mut out);
                put_opt_micros(&mut out, *ttl);
            }
            Request::DropTable { table } => {
                out.push(3);
                put_string(&mut out, table);
            }
            Request::AddColumn { table, column } => {
                out.push(4);
                put_string(&mut out, table);
                put_column(&mut out, column);
            }
            Request::WidenColumn { table, column } => {
                out.push(5);
                put_string(&mut out, table);
                put_string(&mut out, column);
            }
            Request::SetTtl { table, ttl } => {
                out.push(6);
                put_string(&mut out, table);
                put_opt_micros(&mut out, *ttl);
            }
            Request::Insert { table, rows } => {
                out.push(7);
                put_string(&mut out, table);
                put_insert_rows(&mut out, rows);
            }
            Request::Query { table, query } => {
                out.push(8);
                put_string(&mut out, table);
                put_query(&mut out, query);
            }
            Request::Latest { table, prefix } => {
                out.push(9);
                put_string(&mut out, table);
                put_values(&mut out, prefix);
            }
            Request::Ping => out.push(10),
            Request::Stats { table } => {
                out.push(11);
                put_string(&mut out, table);
            }
            Request::CreateRollup {
                name,
                base,
                period,
                value_cols,
                distinct_cols,
            } => {
                out.push(12);
                put_string(&mut out, name);
                put_string(&mut out, base);
                put_varint(&mut out, zigzag(*period));
                put_string_list(&mut out, value_cols);
                put_string_list(&mut out, distinct_cols);
            }
            Request::DropRollup { name } => {
                out.push(13);
                put_string(&mut out, name);
            }
            Request::NodeStatus => out.push(14),
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let req = match tag {
            0 => Request::ListTables,
            1 => Request::GetSchema { table: r.string()? },
            2 => Request::CreateTable {
                table: r.string()?,
                schema: Schema::decode(&mut r)?,
                ttl: get_opt_micros(&mut r)?,
            },
            3 => Request::DropTable { table: r.string()? },
            4 => Request::AddColumn {
                table: r.string()?,
                column: get_column(&mut r)?,
            },
            5 => Request::WidenColumn {
                table: r.string()?,
                column: r.string()?,
            },
            6 => Request::SetTtl {
                table: r.string()?,
                ttl: get_opt_micros(&mut r)?,
            },
            7 => Request::Insert {
                table: r.string()?,
                rows: get_insert_rows(&mut r)?,
            },
            8 => Request::Query {
                table: r.string()?,
                query: get_query(&mut r)?,
            },
            9 => Request::Latest {
                table: r.string()?,
                prefix: get_values(&mut r)?,
            },
            10 => Request::Ping,
            11 => Request::Stats { table: r.string()? },
            12 => Request::CreateRollup {
                name: r.string()?,
                base: r.string()?,
                period: unzigzag(r.varint()?),
                value_cols: get_string_list(&mut r)?,
                distinct_cols: get_string_list(&mut r)?,
            },
            13 => Request::DropRollup { name: r.string()? },
            14 => Request::NodeStatus,
            t => return Err(Error::corrupt(format!("unknown request tag {t}"))),
        };
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after request"));
        }
        Ok(req)
    }
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(0),
            Response::Error { kind, message } => {
                out.push(1);
                out.push(kind.tag());
                put_string(&mut out, message);
            }
            Response::Tables { names } => {
                out.push(2);
                put_varint(&mut out, names.len() as u64);
                for n in names {
                    put_string(&mut out, n);
                }
            }
            Response::SchemaInfo { schema, ttl } => {
                out.push(3);
                schema.encode(&mut out);
                put_opt_micros(&mut out, *ttl);
            }
            Response::InsertResult {
                inserted,
                duplicates,
            } => {
                out.push(4);
                put_varint(&mut out, *inserted);
                put_varint(&mut out, *duplicates);
            }
            Response::Rows {
                rows,
                more_available,
            } => {
                out.push(5);
                out.push(*more_available as u8);
                put_rows(&mut out, rows);
            }
            Response::LatestRow { row } => {
                out.push(6);
                match row {
                    None => out.push(0),
                    Some(values) => {
                        out.push(1);
                        put_values(&mut out, values);
                    }
                }
            }
            Response::Pong => out.push(7),
            Response::Stats {
                rows_inserted,
                duplicate_keys,
                rows_scanned,
                rows_returned,
                tablets_flushed,
                merges,
                disk_tablets,
                disk_bytes,
            } => {
                out.push(8);
                for v in [
                    rows_inserted,
                    duplicate_keys,
                    rows_scanned,
                    rows_returned,
                    tablets_flushed,
                    merges,
                    disk_tablets,
                    disk_bytes,
                ] {
                    put_varint(&mut out, *v);
                }
            }
            Response::NodeStatus {
                node,
                shard,
                epoch,
                primary,
            } => {
                out.push(9);
                put_varint(&mut out, *node);
                put_varint(&mut out, *shard as u64);
                put_varint(&mut out, *epoch);
                out.push(*primary as u8);
            }
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let resp = match tag {
            0 => Response::Ok,
            1 => Response::Error {
                kind: ErrorKind::from_tag(r.u8()?)?,
                message: r.string()?,
            },
            2 => {
                let n = r.varint()? as usize;
                if n > 1 << 20 {
                    return Err(Error::corrupt("implausible table count"));
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(r.string()?);
                }
                Response::Tables { names }
            }
            3 => Response::SchemaInfo {
                schema: Schema::decode(&mut r)?,
                ttl: get_opt_micros(&mut r)?,
            },
            4 => Response::InsertResult {
                inserted: r.varint()?,
                duplicates: r.varint()?,
            },
            5 => {
                let more_available = r.u8()? != 0;
                Response::Rows {
                    rows: get_rows(&mut r)?,
                    more_available,
                }
            }
            6 => Response::LatestRow {
                row: match r.u8()? {
                    0 => None,
                    1 => Some(get_values(&mut r)?),
                    t => return Err(Error::corrupt(format!("bad row tag {t}"))),
                },
            },
            7 => Response::Pong,
            8 => Response::Stats {
                rows_inserted: r.varint()?,
                duplicate_keys: r.varint()?,
                rows_scanned: r.varint()?,
                rows_returned: r.varint()?,
                tablets_flushed: r.varint()?,
                merges: r.varint()?,
                disk_tablets: r.varint()?,
                disk_bytes: r.varint()?,
            },
            9 => Response::NodeStatus {
                node: r.varint()?,
                shard: u32::try_from(r.varint()?)
                    .map_err(|_| Error::corrupt("implausible shard id"))?,
                epoch: r.varint()?,
                primary: match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(Error::corrupt(format!("bad primary flag {t}"))),
                },
            },
            t => return Err(Error::corrupt(format!("unknown response tag {t}"))),
        };
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after response"));
        }
        Ok(resp)
    }
}

// ---- pipelining envelopes ----
//
// A connection may have many requests in flight (the client writes
// several frames before reading any response), so every frame carries a
// request id: `[id: varint][message body]`. The server guarantees that
// responses on a connection are sent in the order the requests arrived,
// so ids on one connection come back in FIFO order; the id lets the
// client assert that invariant and match acks to in-flight batches.

/// Encodes a request frame payload: varint `id` followed by the request
/// body.
pub fn encode_request_frame(id: u64, req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, id);
    out.extend_from_slice(&req.encode());
    out
}

/// Decodes a request frame payload into `(id, request)`.
pub fn decode_request_frame(payload: &[u8]) -> Result<(u64, Request)> {
    let mut r = Reader::new(payload);
    let id = r.varint()?;
    let req = Request::decode(&payload[r.pos()..])?;
    Ok((id, req))
}

/// Best-effort extraction of a request frame's id, for error responses
/// to frames whose body fails to decode. `None` when even the id is
/// unreadable.
pub fn request_frame_id(payload: &[u8]) -> Option<u64> {
    Reader::new(payload).varint().ok()
}

/// Encodes a response frame payload: varint `id` (echoing the request's)
/// followed by the response body.
pub fn encode_response_frame(id: u64, resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, id);
    out.extend_from_slice(&resp.encode());
    out
}

/// Decodes a response frame payload into `(id, response)`.
pub fn decode_response_frame(payload: &[u8]) -> Result<(u64, Response)> {
    let mut r = Reader::new(payload);
    let id = r.varint()?;
    let resp = Response::decode(&payload[r.pos()..])?;
    Ok((id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::Str),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::ListTables,
            Request::GetSchema { table: "t".into() },
            Request::CreateTable {
                table: "t".into(),
                schema: schema(),
                ttl: Some(3_600_000_000),
            },
            Request::DropTable { table: "t".into() },
            Request::AddColumn {
                table: "t".into(),
                column: ColumnDef::with_default("x", ColumnType::I64, Value::I64(-1)),
            },
            Request::WidenColumn {
                table: "t".into(),
                column: "x".into(),
            },
            Request::SetTtl {
                table: "t".into(),
                ttl: None,
            },
            Request::Insert {
                table: "t".into(),
                rows: vec![
                    vec![
                        Some(Value::I64(1)),
                        Some(Value::Timestamp(2)),
                        Some(Value::Str("a".into())),
                    ],
                    // A row whose client omitted the timestamp.
                    vec![Some(Value::I64(2)), None, Some(Value::Str("b".into()))],
                ],
            },
            Request::Query {
                table: "t".into(),
                query: Query::all().with_limit(10).descending(),
            },
            Request::Latest {
                table: "t".into(),
                prefix: vec![Value::I64(1)],
            },
            Request::Ping,
            Request::Stats { table: "t".into() },
            Request::CreateRollup {
                name: "t_1h".into(),
                base: "t".into(),
                period: 3_600_000_000,
                value_cols: vec!["v".into()],
                distinct_cols: vec!["u".into(), "w".into()],
            },
            Request::CreateRollup {
                name: "t_1d".into(),
                base: "t".into(),
                period: 86_400_000_000,
                value_cols: vec![],
                distinct_cols: vec![],
            },
            Request::DropRollup {
                name: "t_1h".into(),
            },
            Request::NodeStatus,
        ];
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Ok,
            Response::Error {
                kind: ErrorKind::NoSuchTable,
                message: "no such table: t".into(),
            },
            Response::Tables {
                names: vec!["a".into(), "b".into()],
            },
            Response::SchemaInfo {
                schema: schema(),
                ttl: Some(1),
            },
            Response::InsertResult {
                inserted: 10,
                duplicates: 2,
            },
            Response::Rows {
                rows: vec![vec![
                    Value::I64(1),
                    Value::Timestamp(2),
                    Value::Str("x".into()),
                ]],
                more_available: true,
            },
            Response::LatestRow { row: None },
            Response::LatestRow {
                row: Some(vec![Value::I64(1)]),
            },
            Response::Pong,
            Response::Stats {
                rows_inserted: 1,
                duplicate_keys: 2,
                rows_scanned: 3,
                rows_returned: 4,
                tablets_flushed: 5,
                merges: 6,
                disk_tablets: 7,
                disk_bytes: 8,
            },
            Response::NodeStatus {
                node: 11,
                shard: 3,
                epoch: 7,
                primary: true,
            },
            Response::NodeStatus {
                node: 0,
                shard: 0,
                epoch: 0,
                primary: false,
            },
            Response::Error {
                kind: ErrorKind::NotPrimary,
                message: "shard 3 is served by node 11 (epoch 7)".into(),
            },
        ];
        for resp in resps {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn envelopes_round_trip_and_carry_ids() {
        let req = Request::GetSchema { table: "t".into() };
        for id in [0u64, 1, 300, u64::MAX] {
            let frame = encode_request_frame(id, &req);
            assert_eq!(decode_request_frame(&frame).unwrap(), (id, req.clone()));
            assert_eq!(request_frame_id(&frame), Some(id));
        }
        let resp = Response::Pong;
        let frame = encode_response_frame(42, &resp);
        assert_eq!(decode_response_frame(&frame).unwrap(), (42, resp));
        // A readable id with a garbage body still yields the id.
        let mut bad = Vec::new();
        put_varint(&mut bad, 7);
        bad.push(99);
        assert!(decode_request_frame(&bad).is_err());
        assert_eq!(request_frame_id(&bad), Some(7));
        assert_eq!(request_frame_id(&[]), None);
    }

    #[test]
    fn garbage_is_rejected_without_panic() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        let mut enc = Request::Ping.encode();
        enc.push(0); // trailing byte
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn error_kind_classification() {
        assert_eq!(
            ErrorKind::of(&Error::NoSuchTable("x".into())),
            ErrorKind::NoSuchTable
        );
        assert_eq!(ErrorKind::of(&Error::corrupt("bad")), ErrorKind::Internal);
        assert_eq!(ErrorKind::of(&Error::invalid("bad")), ErrorKind::Invalid);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoders must reject — never panic on — arbitrary bytes.
        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Request::decode(&data);
            let _ = Response::decode(&data);
        }

        /// Mutating any single byte of a valid frame either still decodes
        /// (benign field change) or errors — never panics.
        #[test]
        fn prop_bitflip_never_panics(pos in 0usize..64, flip in 1u8..=255) {
            let req = Request::Insert {
                table: "usage_by_device".into(),
                rows: vec![vec![
                    Some(Value::I64(1)),
                    Some(Value::Timestamp(1_700_000_000_000_000)),
                    Some(Value::Str("payload".into())),
                ]],
            };
            let mut enc = req.encode();
            if pos < enc.len() {
                enc[pos] ^= flip;
            }
            let _ = Request::decode(&enc);
        }
    }
}
