//! Wire protocol for the LittleTable client/server boundary.
//!
//! The paper's clients speak to the server over a persistent TCP
//! connection through an SQLite virtual-table adaptor (§3.1); this crate
//! defines the equivalent protocol for our server and client adaptor:
//! length-prefixed frames carrying tagged requests and responses.
//!
//! Framing: `[len: u32 LE][payload]`, with `payload[0]` a message tag.
//! Values are tagged with their column type so heterogeneous key prefixes
//! decode without schema context.

#![warn(missing_docs)]

pub mod frame;
pub mod message;
pub mod valuecodec;

pub use frame::{read_frame, write_frame, MAX_FRAME_LEN};
pub use message::{ErrorKind, Request, Response};
