//! Wire protocol for the LittleTable client/server boundary.
//!
//! The paper's clients speak to the server over a persistent TCP
//! connection through an SQLite virtual-table adaptor (§3.1); this crate
//! defines the equivalent protocol for our server and client adaptor:
//! length-prefixed frames carrying tagged requests and responses.
//!
//! Framing: `[len: u32 LE][payload]`, with the payload carrying a varint
//! request id (for pipelining — see [`message::encode_request_frame`])
//! followed by a tagged message body. Values are tagged with their column
//! type so heterogeneous key prefixes decode without schema context; the
//! reserved tag [`valuecodec::NULL_TAG`] marks an absent insert cell (a
//! timestamp the client omitted for the server to stamp, §3.1).

#![warn(missing_docs)]

pub mod frame;
pub mod message;
pub mod valuecodec;

pub use frame::{read_frame, write_frame, FrameDecoder, MAX_FRAME_LEN, READ_CHUNK};
pub use message::{
    decode_request_frame, decode_response_frame, encode_request_frame, encode_response_frame,
    request_frame_id, ErrorKind, Request, Response,
};
