//! Bit-level time-series column codecs for LittleTable's columnar (v3)
//! block format.
//!
//! Tablets are immutable and time-clustered, so the columns inside a
//! block are exactly the shape the time-series compression literature
//! targets: timestamps arrive at near-constant intervals (delta-of-delta
//! collapses to a bit per row), gauge-style doubles change slowly (XOR of
//! consecutive IEEE 754 bit patterns is mostly zeros), counters grow
//! monotonically (zigzag-encoded deltas stay small), and key columns such
//! as device names repeat (dictionary + run-length). Each encoder
//! competes against a raw fixed-width fallback and the *winner* is
//! recorded in a per-column tag byte, so a pathological column never pays
//! more than raw.
//!
//! Every decoder takes the expected value count, performs only checked
//! reads, and returns [`CodecError`] on any malformed input — never a
//! panic, never a short or long result. Padding bits at the end of a bit
//! stream must be zero and less than one byte, so trailing garbage is
//! detected rather than ignored.
//!
//! This crate is deliberately free of engine dependencies: it maps plain
//! slices (`&[i64]`, `&[f64]`, byte strings) to bytes and back.

use std::fmt;

/// Codec tag stored per column in a v3 block: raw little-endian
/// fixed-width values (or length-prefixed bytes for string/blob columns).
pub const TAG_RAW: u8 = 0;
/// Codec tag: Gorilla-style delta-of-delta bit packing for integers.
pub const TAG_DELTA_DELTA: u8 = 1;
/// Codec tag: zigzag varint of consecutive deltas.
pub const TAG_ZIGZAG_DELTA: u8 = 2;
/// Codec tag: Gorilla-style XOR compression for doubles.
pub const TAG_XOR: u8 = 3;
/// Codec tag: dictionary + run-length encoding for repetitive byte
/// columns.
pub const TAG_DICT_RLE: u8 = 4;

/// Decoding failed: the input does not round-trip to the claimed number
/// of values under the claimed codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl CodecError {
    fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------- bit I/O

/// MSB-first bit writer.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf`; 0 means aligned.
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
            self.used = 8;
        }
        self.used -= 1;
        if bit {
            *self.buf.last_mut().expect("pushed above") |= 1 << self.used;
        }
    }

    /// Appends the low `n` bits of `v`, most significant first.
    pub fn write_bits(&mut self, v: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Returns the buffer; unused bits in the final byte are zero.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// MSB-first bit reader with fully checked access.
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps `data` for reading from its first bit.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Reads one bit, erroring at end of input.
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.data.len() {
            return Err(CodecError::new("bit stream truncated"));
        }
        let bit = (self.data[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first into the low bits of the result.
    pub fn read_bits(&mut self, n: u8) -> Result<u64> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Verifies that what remains is sub-byte zero padding: a valid
    /// stream ends within 7 bits of the final byte and those bits are 0.
    pub fn expect_zero_padding(&mut self) -> Result<()> {
        let total = self.data.len() * 8;
        if total - self.pos >= 8 {
            return Err(CodecError::new("trailing bytes after bit stream"));
        }
        while self.pos < total {
            if self.read_bit()? {
                return Err(CodecError::new("nonzero padding after bit stream"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- varints

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| CodecError::new("varint truncated"))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(CodecError::new("varint overflows u64"));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::new("varint too long"));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ------------------------------------------------- delta-of-delta (i64)

/// Encodes `vals` as a delta-of-delta bit stream (Gorilla §4.1.1 buckets,
/// widened to a 64-bit escape so arbitrary i64 sequences round-trip).
pub fn encode_delta_delta(vals: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let Some(&first) = vals.first() else {
        return Vec::new();
    };
    w.write_bits(first as u64, 64);
    let mut prev = first;
    let mut prev_delta = 0i64;
    for &v in &vals[1..] {
        // Wrapping arithmetic: deltas of extreme values wrap mod 2^64 and
        // un-wrap identically on decode, so round-trips stay exact.
        let delta = v.wrapping_sub(prev);
        let dod = delta.wrapping_sub(prev_delta);
        match dod {
            0 => w.write_bit(false),
            -63..=64 => {
                w.write_bits(0b10, 2);
                w.write_bits((dod + 63) as u64, 7);
            }
            -255..=256 => {
                w.write_bits(0b110, 3);
                w.write_bits((dod + 255) as u64, 9);
            }
            -2047..=2048 => {
                w.write_bits(0b1110, 4);
                w.write_bits((dod + 2047) as u64, 12);
            }
            _ => {
                w.write_bits(0b1111, 4);
                w.write_bits(dod as u64, 64);
            }
        }
        prev = v;
        prev_delta = delta;
    }
    w.finish()
}

/// Decodes exactly `n` values from a delta-of-delta stream.
pub fn decode_delta_delta(data: &[u8], n: usize) -> Result<Vec<i64>> {
    if n == 0 {
        return if data.is_empty() {
            Ok(Vec::new())
        } else {
            Err(CodecError::new("nonempty stream for zero values"))
        };
    }
    // Each value past the first costs at least one bit; a row count that
    // cannot fit is corrupt, and bounding it here also bounds allocation.
    if n > data.len().saturating_mul(8) {
        return Err(CodecError::new(
            "delta-of-delta stream shorter than row count",
        ));
    }
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(n);
    let mut prev = r.read_bits(64)? as i64;
    out.push(prev);
    let mut prev_delta = 0i64;
    while out.len() < n {
        let dod = if !r.read_bit()? {
            0
        } else if !r.read_bit()? {
            r.read_bits(7)? as i64 - 63
        } else if !r.read_bit()? {
            r.read_bits(9)? as i64 - 255
        } else if !r.read_bit()? {
            r.read_bits(12)? as i64 - 2047
        } else {
            r.read_bits(64)? as i64
        };
        let delta = prev_delta.wrapping_add(dod);
        prev = prev.wrapping_add(delta);
        prev_delta = delta;
        out.push(prev);
    }
    r.expect_zero_padding()?;
    Ok(out)
}

// ------------------------------------------------- zigzag-delta (i64)

/// Encodes `vals` as zigzag varints of consecutive deltas (first delta is
/// from zero).
pub fn encode_zigzag_delta(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 2);
    let mut prev = 0i64;
    for &v in vals {
        put_varint(&mut out, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    out
}

/// Decodes exactly `n` values from a zigzag-delta stream.
pub fn decode_zigzag_delta(data: &[u8], n: usize) -> Result<Vec<i64>> {
    if n > data.len() {
        // Every varint is at least one byte.
        return Err(CodecError::new(
            "zigzag-delta stream shorter than row count",
        ));
    }
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev = prev.wrapping_add(unzigzag(read_varint(data, &mut pos)?));
        out.push(prev);
    }
    if pos != data.len() {
        return Err(CodecError::new("trailing bytes after zigzag-delta stream"));
    }
    Ok(out)
}

// ------------------------------------------------------- XOR floats

/// Encodes `vals` with Gorilla XOR compression (§4.1.2): each double is
/// XORed with its predecessor and only the meaningful bits are stored.
/// NaN and ±infinity are just bit patterns here and round-trip exactly.
pub fn encode_xor_f64(vals: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let Some(&first) = vals.first() else {
        return Vec::new();
    };
    w.write_bits(first.to_bits(), 64);
    let mut prev = first.to_bits();
    // Current reuse window: `leading` zero bits then `sig` stored bits.
    // `sig == 0` marks "no window yet".
    let mut leading = 0u8;
    let mut sig = 0u8;
    for &v in &vals[1..] {
        let bits = v.to_bits();
        let x = bits ^ prev;
        prev = bits;
        if x == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let lz = (x.leading_zeros() as u8).min(31); // 5-bit field
        let tz = x.trailing_zeros() as u8;
        let win_trailing = 64 - leading - sig;
        if sig > 0 && lz >= leading && tz >= win_trailing {
            // Fits the previous window: control bit 0, reuse its shape.
            w.write_bit(false);
            w.write_bits(x >> win_trailing, sig);
        } else {
            w.write_bit(true);
            leading = lz;
            sig = 64 - lz - tz;
            w.write_bits(leading as u64, 5);
            w.write_bits((sig - 1) as u64, 6); // sig in 1..=64
            w.write_bits(x >> tz, sig);
        }
    }
    w.finish()
}

/// Decodes exactly `n` values from a Gorilla XOR stream.
pub fn decode_xor_f64(data: &[u8], n: usize) -> Result<Vec<f64>> {
    if n == 0 {
        return if data.is_empty() {
            Ok(Vec::new())
        } else {
            Err(CodecError::new("nonempty stream for zero values"))
        };
    }
    if n > data.len().saturating_mul(8) {
        return Err(CodecError::new("xor stream shorter than row count"));
    }
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(n);
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut leading = 0u8;
    let mut sig = 0u8;
    while out.len() < n {
        if !r.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? {
            leading = r.read_bits(5)? as u8;
            sig = r.read_bits(6)? as u8 + 1;
            if leading + sig > 64 {
                return Err(CodecError::new("xor window wider than 64 bits"));
            }
        } else if sig == 0 {
            return Err(CodecError::new("xor window reused before being defined"));
        }
        let meaningful = r.read_bits(sig)?;
        let x = meaningful << (64 - leading - sig);
        prev ^= x;
        out.push(f64::from_bits(prev));
    }
    r.expect_zero_padding()?;
    Ok(out)
}

// -------------------------------------------------- dictionary/RLE bytes

/// Encodes byte strings as a first-seen-order dictionary plus
/// run-length-encoded codes. Returns `None` when the column is too
/// distinct for a one-byte code space (the caller falls back to raw).
pub fn encode_dict_rle(vals: &[&[u8]]) -> Option<Vec<u8>> {
    let mut dict: Vec<&[u8]> = Vec::new();
    let mut codes = Vec::with_capacity(vals.len());
    for v in vals {
        // Linear probe: the dictionary is ≤ 256 entries and columns are
        // low-cardinality by selection (raw wins otherwise).
        let code = match dict.iter().position(|d| d == v) {
            Some(c) => c,
            None => {
                if dict.len() == 256 {
                    return None;
                }
                dict.push(v);
                dict.len() - 1
            }
        };
        codes.push(code as u8);
    }
    let mut out = Vec::new();
    put_varint(&mut out, dict.len() as u64);
    for d in &dict {
        put_varint(&mut out, d.len() as u64);
        out.extend_from_slice(d);
    }
    let mut i = 0usize;
    while i < codes.len() {
        let mut j = i + 1;
        while j < codes.len() && codes[j] == codes[i] {
            j += 1;
        }
        out.push(codes[i]);
        put_varint(&mut out, (j - i) as u64);
        i = j;
    }
    Some(out)
}

/// Decodes exactly `n` byte strings from a dictionary/RLE stream.
pub fn decode_dict_rle(data: &[u8], n: usize) -> Result<Vec<Vec<u8>>> {
    let mut pos = 0usize;
    let dict_len = read_varint(data, &mut pos)? as usize;
    if dict_len > 256 {
        return Err(CodecError::new("dictionary larger than code space"));
    }
    let mut dict: Vec<&[u8]> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| CodecError::new("dictionary entry truncated"))?;
        dict.push(&data[pos..end]);
        pos = end;
    }
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
    while out.len() < n {
        let code = *data
            .get(pos)
            .ok_or_else(|| CodecError::new("rle run truncated"))? as usize;
        pos += 1;
        let run = read_varint(data, &mut pos)? as usize;
        let entry = dict
            .get(code)
            .ok_or_else(|| CodecError::new("rle code out of dictionary range"))?;
        if run == 0 || run > n - out.len() {
            return Err(CodecError::new("rle run length out of range"));
        }
        for _ in 0..run {
            out.push(entry.to_vec());
        }
    }
    if pos != data.len() {
        return Err(CodecError::new("trailing bytes after rle stream"));
    }
    Ok(out)
}

// ---------------------------------------------------------- raw fallback

/// Encodes integers as fixed-width little-endian words.
pub fn encode_raw_i64(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes exactly `n` fixed-width integers.
pub fn decode_raw_i64(data: &[u8], n: usize) -> Result<Vec<i64>> {
    if data.len() != n * 8 {
        return Err(CodecError::new("raw i64 column has wrong length"));
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

/// Encodes doubles as fixed-width little-endian words.
pub fn encode_raw_f64(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decodes exactly `n` fixed-width doubles.
pub fn decode_raw_f64(data: &[u8], n: usize) -> Result<Vec<f64>> {
    if data.len() != n * 8 {
        return Err(CodecError::new("raw f64 column has wrong length"));
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"))))
        .collect())
}

/// Encodes byte strings as length-prefixed values.
pub fn encode_raw_bytes(vals: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        put_varint(&mut out, v.len() as u64);
        out.extend_from_slice(v);
    }
    out
}

/// Decodes exactly `n` length-prefixed byte strings.
pub fn decode_raw_bytes(data: &[u8], n: usize) -> Result<Vec<Vec<u8>>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| CodecError::new("raw byte value truncated"))?;
        out.push(data[pos..end].to_vec());
        pos = end;
    }
    if pos != data.len() {
        return Err(CodecError::new("trailing bytes after raw byte column"));
    }
    Ok(out)
}

// ----------------------------------------------------- codec selection

/// Encodes an integer (or timestamp) column, racing delta-of-delta
/// against zigzag-delta against raw and keeping the smallest. Returns
/// `(codec tag, bytes)`.
pub fn encode_i64_column(vals: &[i64]) -> (u8, Vec<u8>) {
    let dod = encode_delta_delta(vals);
    let zz = encode_zigzag_delta(vals);
    let raw_len = vals.len() * 8;
    if dod.len() <= zz.len() && dod.len() <= raw_len {
        (TAG_DELTA_DELTA, dod)
    } else if zz.len() <= raw_len {
        (TAG_ZIGZAG_DELTA, zz)
    } else {
        (TAG_RAW, encode_raw_i64(vals))
    }
}

/// Decodes an integer column under the codec named by `tag`.
pub fn decode_i64_column(tag: u8, data: &[u8], n: usize) -> Result<Vec<i64>> {
    match tag {
        TAG_RAW => decode_raw_i64(data, n),
        TAG_DELTA_DELTA => decode_delta_delta(data, n),
        TAG_ZIGZAG_DELTA => decode_zigzag_delta(data, n),
        t => Err(CodecError::new(format!("unknown integer codec tag {t}"))),
    }
}

/// Encodes a double column, racing XOR compression against raw.
pub fn encode_f64_column(vals: &[f64]) -> (u8, Vec<u8>) {
    let xor = encode_xor_f64(vals);
    if xor.len() <= vals.len() * 8 {
        (TAG_XOR, xor)
    } else {
        (TAG_RAW, encode_raw_f64(vals))
    }
}

/// Decodes a double column under the codec named by `tag`.
pub fn decode_f64_column(tag: u8, data: &[u8], n: usize) -> Result<Vec<f64>> {
    match tag {
        TAG_RAW => decode_raw_f64(data, n),
        TAG_XOR => decode_xor_f64(data, n),
        t => Err(CodecError::new(format!("unknown float codec tag {t}"))),
    }
}

/// Encodes a string/blob column, using dictionary + RLE when the column
/// is low-cardinality enough to win, raw length-prefixed bytes otherwise.
pub fn encode_bytes_column(vals: &[&[u8]]) -> (u8, Vec<u8>) {
    let raw = encode_raw_bytes(vals);
    match encode_dict_rle(vals) {
        Some(d) if d.len() <= raw.len() => (TAG_DICT_RLE, d),
        _ => (TAG_RAW, raw),
    }
}

/// Decodes a string/blob column under the codec named by `tag`.
pub fn decode_bytes_column(tag: u8, data: &[u8], n: usize) -> Result<Vec<Vec<u8>>> {
    match tag {
        TAG_RAW => decode_raw_bytes(data, n),
        TAG_DICT_RLE => decode_dict_rle(data, n),
        t => Err(CodecError::new(format!("unknown bytes codec tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check_i64(vals: &[i64]) {
        for (tag, data) in [
            (TAG_DELTA_DELTA, encode_delta_delta(vals)),
            (TAG_ZIGZAG_DELTA, encode_zigzag_delta(vals)),
            (TAG_RAW, encode_raw_i64(vals)),
        ] {
            let back = decode_i64_column(tag, &data, vals.len()).unwrap();
            assert_eq!(back, vals, "tag {tag}");
        }
        let (tag, data) = encode_i64_column(vals);
        assert_eq!(decode_i64_column(tag, &data, vals.len()).unwrap(), vals);
    }

    fn check_f64(vals: &[f64]) {
        let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        for (tag, data) in [
            (TAG_XOR, encode_xor_f64(vals)),
            (TAG_RAW, encode_raw_f64(vals)),
        ] {
            let back = decode_f64_column(tag, &data, vals.len()).unwrap();
            let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
            assert_eq!(back_bits, bits, "tag {tag}");
        }
        let (tag, data) = encode_f64_column(vals);
        let back = decode_f64_column(tag, &data, vals.len()).unwrap();
        assert_eq!(back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), bits);
    }

    fn check_bytes(vals: &[&[u8]]) {
        let (tag, data) = encode_bytes_column(vals);
        assert_eq!(decode_bytes_column(tag, &data, vals.len()).unwrap(), vals);
        let raw = encode_raw_bytes(vals);
        assert_eq!(decode_raw_bytes(&raw, vals.len()).unwrap(), vals);
        if let Some(d) = encode_dict_rle(vals) {
            assert_eq!(decode_dict_rle(&d, vals.len()).unwrap(), vals);
        }
    }

    #[test]
    fn empty_and_single_sequences() {
        check_i64(&[]);
        check_i64(&[0]);
        check_i64(&[i64::MIN]);
        check_i64(&[i64::MAX]);
        check_f64(&[]);
        check_f64(&[0.0]);
        check_f64(&[-0.0]);
        check_bytes(&[]);
        check_bytes(&[b""]);
        check_bytes(&[b"only"]);
    }

    #[test]
    fn constant_sequences_compress_hard() {
        let vals = vec![1_700_000_000_000_000i64; 1000];
        check_i64(&vals);
        let dod = encode_delta_delta(&vals);
        // 64-bit header + ~1 bit per row.
        assert!(dod.len() < 8 + 1000 / 8 + 2, "dod len {}", dod.len());
        check_f64(&vec![21.5; 500]);
        let xor = encode_xor_f64(&vec![21.5; 500]);
        assert!(xor.len() < 8 + 500 / 8 + 2, "xor len {}", xor.len());
        let strs: Vec<&[u8]> = vec![b"device-a"; 300];
        check_bytes(&strs);
        let dict = encode_dict_rle(&strs).unwrap();
        assert!(dict.len() < 20, "dict len {}", dict.len());
    }

    #[test]
    fn regular_timestamps_take_about_a_bit_each() {
        let vals: Vec<i64> = (0..4096)
            .map(|i| 1_600_000_000_000_000 + i * 60_000_000)
            .collect();
        let dod = encode_delta_delta(&vals);
        assert!(dod.len() < 8 + 16 + 4096 / 8, "dod len {}", dod.len());
        check_i64(&vals);
    }

    #[test]
    fn adversarial_integer_patterns() {
        check_i64(&[i64::MIN, i64::MAX, i64::MIN, i64::MAX]);
        check_i64(&[0, i64::MAX, i64::MIN, -1, 1, 0]);
        check_i64(&[-1, 0, -1, 0, i64::MIN / 2, i64::MAX / 2]);
        // Alternating signs around every bucket boundary.
        for b in [63i64, 64, 255, 256, 2047, 2048] {
            check_i64(&[0, b, -b, b + 1, -(b + 1), b - 1]);
        }
    }

    #[test]
    fn special_floats_round_trip() {
        check_f64(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]);
        check_f64(&[f64::MIN_POSITIVE, f64::MAX, f64::MIN, f64::EPSILON]);
        check_f64(&[1.0, f64::NAN, 1.0, f64::NAN]);
        // NaN payload bits must survive exactly.
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        check_f64(&[weird, weird, 1.0, weird]);
    }

    #[test]
    fn mixed_cardinality_bytes() {
        let vals: Vec<Vec<u8>> = (0..500)
            .map(|i| format!("dev-{}", i % 7).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = vals.iter().map(|v| v.as_slice()).collect();
        check_bytes(&refs);
        let (tag, _) = encode_bytes_column(&refs);
        assert_eq!(tag, TAG_DICT_RLE);
        // High-cardinality columns fall back to raw.
        let uniq: Vec<Vec<u8>> = (0..500)
            .map(|i| format!("unique-{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = uniq.iter().map(|v| v.as_slice()).collect();
        check_bytes(&refs);
        let (tag, _) = encode_bytes_column(&refs);
        assert_eq!(tag, TAG_RAW);
    }

    #[test]
    fn wrong_count_and_garbage_are_errors_not_panics() {
        let vals = [1i64, 2, 3];
        let (tag, data) = encode_i64_column(&vals);
        assert!(decode_i64_column(tag, &data, 4).is_err());
        assert!(decode_i64_column(tag, &data, 2).is_err());
        assert!(decode_i64_column(9, &data, 3).is_err());
        assert!(decode_delta_delta(&[], 1).is_err());
        assert!(decode_xor_f64(&[0xFF], 2).is_err());
        assert!(decode_dict_rle(&[0x02, 0x01], 3).is_err());
        assert!(decode_raw_i64(&[0; 7], 1).is_err());
        // Huge claimed counts must not allocate before failing.
        assert!(decode_delta_delta(&[0; 16], usize::MAX / 2).is_err());
        assert!(decode_zigzag_delta(&[0; 16], usize::MAX / 2).is_err());
    }

    #[test]
    fn seeded_fuzz_round_trips() {
        let mut rng = SmallRng::seed_from_u64(0x0011_77AB_1EC0_DEC5);
        for _ in 0..200 {
            let n = rng.gen_range(0..200);
            let mode = rng.gen_range(0..4);
            let ints: Vec<i64> = (0..n)
                .scan(rng.gen::<i64>() >> 20, |acc, _| {
                    *acc = match mode {
                        0 => acc.wrapping_add(rng.gen_range(-5..50)),
                        1 => acc.wrapping_add(rng.gen_range(-1_000_000..1_000_000)),
                        2 => rng.gen(),
                        _ => *acc,
                    };
                    Some(*acc)
                })
                .collect();
            check_i64(&ints);
            let floats: Vec<f64> = (0..n)
                .scan(rng.gen_range(-100.0..100.0), |acc: &mut f64, _| {
                    if mode == 2 {
                        Some(f64::from_bits(rng.gen()))
                    } else {
                        *acc += rng.gen_range(-0.5..0.5);
                        Some(*acc)
                    }
                })
                .collect();
            check_f64(&floats);
            let strs: Vec<Vec<u8>> = (0..n)
                .map(|_| format!("s{}", rng.gen_range(0..(1 + mode * 100))).into_bytes())
                .collect();
            let refs: Vec<&[u8]> = strs.iter().map(|v| v.as_slice()).collect();
            check_bytes(&refs);
        }
    }

    #[test]
    fn seeded_fuzz_garbage_never_panics() {
        let mut rng = SmallRng::seed_from_u64(0xBAD_DECADE);
        for _ in 0..500 {
            let len = rng.gen_range(0..64);
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let n = rng.gen_range(0..100);
            for tag in 0..6u8 {
                let _ = decode_i64_column(tag, &data, n);
                let _ = decode_f64_column(tag, &data, n);
                let _ = decode_bytes_column(tag, &data, n);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_i64_round_trip(vals in proptest::collection::vec(any::<i64>(), 0..300)) {
            check_i64(&vals);
        }

        #[test]
        fn prop_smooth_i64_round_trip(
            start in -1_000_000_000i64..1_000_000_000,
            deltas in proptest::collection::vec(-1000i64..1000, 0..300),
        ) {
            let vals: Vec<i64> = deltas.iter().scan(start, |acc, d| {
                *acc = acc.wrapping_add(*d);
                Some(*acc)
            }).collect();
            check_i64(&vals);
        }

        #[test]
        fn prop_f64_round_trip(bits in proptest::collection::vec(any::<u64>(), 0..300)) {
            let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            check_f64(&vals);
        }

        #[test]
        fn prop_bytes_round_trip(vals in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20), 0..200)) {
            let refs: Vec<&[u8]> = vals.iter().map(|v| v.as_slice()).collect();
            check_bytes(&refs);
        }

        #[test]
        fn prop_decode_garbage_is_total(
            data in proptest::collection::vec(any::<u8>(), 0..128),
            n in 0usize..256,
            tag in 0u8..8,
        ) {
            let _ = decode_i64_column(tag, &data, n);
            let _ = decode_f64_column(tag, &data, n);
            let _ = decode_bytes_column(tag, &data, n);
        }
    }
}
