//! Distribution samplers and CDF utilities for the fleet model.

use rand::Rng;
use serde::Serialize;

/// Draws a standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from a log-normal with the given log-space mean and deviation.
pub fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// An empirical cumulative distribution function, the shape every
/// production figure in §5.2 is plotted as.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Cdf {
    /// `(value, cumulative fraction ≤ value)` points, ascending in value.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Cdf {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len().max(1) as f64;
        let points = samples
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    /// The value at a cumulative fraction `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let idx = ((q * self.points.len() as f64).ceil() as usize).clamp(1, self.points.len()) - 1;
        self.points[idx].0
    }

    /// The fraction of samples ≤ `v`.
    pub fn fraction_le(&self, v: f64) -> f64 {
        match self
            .points
            .binary_search_by(|(x, _)| x.partial_cmp(&v).unwrap())
        {
            Ok(mut i) => {
                // Step to the last equal value.
                while i + 1 < self.points.len() && self.points[i + 1].0 <= v {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The largest sample.
    pub fn max(&self) -> f64 {
        self.points.last().map(|&(v, _)| v).unwrap_or(0.0)
    }

    /// The sum of all samples (useful for totals like "320 TB system-wide").
    pub fn total(&self) -> f64 {
        // Points carry cumulative fractions, not weights, so reconstruct.
        self.points.iter().map(|&(v, _)| v).sum()
    }

    /// Downsamples to at most `n` evenly spaced points for printing.
    pub fn downsample(&self, n: usize) -> Cdf {
        if self.points.len() <= n || n == 0 {
            return self.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        let mut points: Vec<(f64, f64)> = (0..n)
            .map(|i| self.points[((i as f64 + 1.0) * step) as usize - 1])
            .collect();
        if points.last() != self.points.last() {
            points.push(*self.points.last().unwrap());
        }
        Cdf { points }
    }
}

/// Draws a value from a discrete weighted set.
pub fn weighted_choice<R: Rng, T: Copy>(rng: &mut R, items: &[(T, f64)]) -> T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(item, w) in items {
        if x < w {
            return item;
        }
        x -= w;
    }
    items.last().unwrap().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lognormal_has_right_median() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| lognormal(&mut rng, 3.0, 1.0)).collect();
        let cdf = Cdf::from_samples(samples);
        let median = cdf.quantile(0.5);
        // Median of lognormal is e^mu ≈ 20.1.
        assert!((median - 20.1).abs() / 20.1 < 0.1, "median={median}");
    }

    #[test]
    fn cdf_quantile_and_fraction_roundtrip() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.fraction_le(2.0), 0.5);
        assert_eq!(cdf.fraction_le(0.5), 0.0);
        assert_eq!(cdf.fraction_le(9.0), 1.0);
        assert_eq!(cdf.max(), 4.0);
    }

    #[test]
    fn downsample_keeps_extremes() {
        let cdf = Cdf::from_samples((1..=1000).map(|i| i as f64).collect());
        let d = cdf.downsample(10);
        assert!(d.points.len() <= 11);
        assert_eq!(d.max(), 1000.0);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let items = [(1u32, 0.9), (2u32, 0.1)];
        let ones = (0..10_000)
            .filter(|_| weighted_choice(&mut rng, &items) == 1)
            .count();
        assert!((8_500..9_500).contains(&ones), "ones={ones}");
    }
}
