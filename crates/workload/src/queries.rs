//! Query-workload models: lookback periods (Fig. 10, upper line), the
//! query mix behind the rows-scanned/rows-returned distribution (Fig. 9),
//! and the long-term rate model (§5.2.3).

use littletable_vfs::Micros;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const HOUR: Micros = 3_600 * 1_000_000;
const DAY: Micros = 24 * HOUR;

/// Samples a query's lookback period (how far back its oldest requested
/// timestamp lies). Per Fig. 10: over 90% of requests cover only the most
/// recent week; the tail stretches to two years of forensics.
pub fn sample_lookback<R: Rng>(rng: &mut R) -> Micros {
    let r: f64 = rng.gen();
    match r {
        x if x < 0.35 => HOUR,       // debugging the last hour
        x if x < 0.60 => 8 * HOUR,   // today
        x if x < 0.80 => DAY,        // one day
        x if x < 0.93 => 7 * DAY,    // weekly summary
        x if x < 0.965 => 30 * DAY,  // monthly rollup view
        x if x < 0.985 => 90 * DAY,  // quarterly
        x if x < 0.995 => 365 * DAY, // year-end CIO report
        _ => 790 * DAY,              // deep forensics
    }
}

/// One query in the production mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum QueryKind {
    /// A bounded scan of one device's recent rows.
    DeviceScan,
    /// A bounded scan of a whole network.
    NetworkScan,
    /// A latest-row-for-prefix lookup (the inefficient tail of Fig. 9).
    LatestForPrefix,
}

/// Samples the production query mix: mostly well-bounded scans, a small
/// minority of latest-for-prefix lookups (§5.2.4).
pub fn sample_query_kind<R: Rng>(rng: &mut R) -> QueryKind {
    let r: f64 = rng.gen();
    if r < 0.55 {
        QueryKind::DeviceScan
    } else if r < 0.97 {
        QueryKind::NetworkScan
    } else {
        QueryKind::LatestForPrefix
    }
}

/// The long-term per-shard rate model (§5.2.3): averages of 14,000
/// rows/second inserted and 143,000 rows/second returned, with diurnal
/// variation and quiet weekends.
#[derive(Debug, Clone, Serialize)]
pub struct RateModel {
    /// Average insert rate, rows/second.
    pub avg_insert_rows_per_sec: f64,
    /// Average query-return rate, rows/second.
    pub avg_query_rows_per_sec: f64,
}

impl Default for RateModel {
    fn default() -> Self {
        RateModel {
            avg_insert_rows_per_sec: 14_000.0,
            avg_query_rows_per_sec: 143_000.0,
        }
    }
}

impl RateModel {
    /// The instantaneous rate multiplier at an hour-of-week in `[0, 168)`:
    /// a smooth diurnal wave damped on the weekend, normalized so the
    /// weekly mean is 1.
    pub fn hourly_multiplier(hour_of_week: f64) -> f64 {
        let hour_of_day = hour_of_week % 24.0;
        let day = (hour_of_week / 24.0) as u32; // 0 = Monday
        let weekend = day >= 5;
        let diurnal = 1.0 + 0.55 * ((hour_of_day - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let base = if weekend { 0.55 } else { 1.18 };
        base * diurnal
    }

    /// Insert rows/second at an hour-of-week.
    pub fn insert_rate_at(&self, hour_of_week: f64) -> f64 {
        self.avg_insert_rows_per_sec * Self::hourly_multiplier(hour_of_week)
    }

    /// Query-return rows/second at an hour-of-week.
    pub fn query_rate_at(&self, hour_of_week: f64) -> f64 {
        self.avg_query_rows_per_sec * Self::hourly_multiplier(hour_of_week)
    }
}

/// Samples `n` query lookbacks deterministically.
pub fn lookback_samples(n: usize, seed: u64) -> Vec<Micros> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x100C_BACC);
    (0..n).map(|_| sample_lookback(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookbacks_match_fig10() {
        let samples = lookback_samples(20_000, 1);
        let week = 7 * DAY;
        let within_week = samples.iter().filter(|&&l| l <= week).count();
        let frac = within_week as f64 / samples.len() as f64;
        assert!(frac > 0.90, "within-week fraction {frac}");
        // But the tail exists: someone looks back a year or more.
        assert!(samples.iter().any(|&l| l >= 365 * DAY));
    }

    #[test]
    fn query_mix_has_latest_minority() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let latest = (0..n)
            .filter(|_| sample_query_kind(&mut rng) == QueryKind::LatestForPrefix)
            .count();
        let frac = latest as f64 / n as f64;
        assert!(frac > 0.01 && frac < 0.08, "latest fraction {frac}");
    }

    #[test]
    fn rate_model_weekly_mean_is_near_average() {
        let m = RateModel::default();
        let mean: f64 = (0..168).map(|h| m.insert_rate_at(h as f64)).sum::<f64>() / 168.0;
        let err = (mean - m.avg_insert_rows_per_sec).abs() / m.avg_insert_rows_per_sec;
        assert!(err < 0.05, "weekly mean off by {err}");
    }

    #[test]
    fn weekends_are_quieter_and_nights_dip() {
        // Tuesday 14:00 vs Saturday 14:00.
        let weekday = RateModel::hourly_multiplier(24.0 + 14.0);
        let weekend = RateModel::hourly_multiplier(5.0 * 24.0 + 14.0);
        assert!(weekday > weekend * 1.5);
        // 14:00 vs 02:00 on the same weekday.
        let midday = RateModel::hourly_multiplier(14.0);
        let night = RateModel::hourly_multiplier(2.0);
        assert!(midday > night);
    }

    #[test]
    fn workload_is_read_heavy() {
        let m = RateModel::default();
        assert!(m.avg_query_rows_per_sec / m.avg_insert_rows_per_sec > 5.0);
    }
}
