//! Deterministic insert streams for fleet fault testing (§2.2, §4).
//!
//! The node-kill harness replays the same workload hundreds of times with
//! a crash injected at a different operation index each run, then checks
//! an oracle over what survived. That only works if the workload is a
//! pure function of its seed: every run must produce byte-identical rows
//! so the oracle can *recompute* — not record — what an acked row should
//! contain.
//!
//! [`FleetLoad`] models the paper's ingest shape: many devices, one
//! strictly increasing timestamp sequence, unique `(device, ts)` primary
//! keys. Key uniqueness matters to the harness: the engine deduplicates
//! by primary key, so an idempotent re-send of an acked-but-unconfirmed
//! batch after failover is absorbed as duplicates rather than double
//! counted, and the oracle's "no row appears twice" check is meaningful.

use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::{ColumnType, Value};

/// SplitMix64 finalizer (same mixer the fault injector uses).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic stream of telemetry rows over a fixed device
/// population. Row `i` of a given `(seed, devices, start)` triple is the
/// same on every run and every platform.
#[derive(Debug, Clone)]
pub struct FleetLoad {
    seed: u64,
    devices: u32,
    start: i64,
    next: u64,
}

impl FleetLoad {
    /// A stream over `devices` devices whose timestamps begin at `start`
    /// microseconds.
    pub fn new(seed: u64, devices: u32, start: i64) -> FleetLoad {
        assert!(devices > 0, "need at least one device");
        FleetLoad {
            seed,
            devices,
            start,
            next: 0,
        }
    }

    /// The schema every fleet table uses: `(device, ts)` primary key plus
    /// a payload column the oracle can verify.
    pub fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("device", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("payload", ColumnType::I64),
            ],
            &["device", "ts"],
        )
        .expect("static schema is valid")
    }

    /// Row `i` of this stream, independent of cursor position. Timestamps
    /// are globally unique (`start + i`), so primary keys never collide.
    pub fn row_at(&self, i: u64) -> Vec<Value> {
        let device = (splitmix64(self.seed ^ i) % u64::from(self.devices)) as i64;
        let ts = self.start + i as i64;
        let payload = splitmix64(self.seed ^ i ^ 0xF1EE_710A_D000_0000) as i64;
        vec![
            Value::I64(device),
            Value::Timestamp(ts),
            Value::I64(payload),
        ]
    }

    /// The next `n` rows, advancing the cursor.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<Value>> {
        let from = self.next;
        self.next += n as u64;
        (from..self.next).map(|i| self.row_at(i)).collect()
    }

    /// Rows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next
    }

    /// Recomputes the first `count` rows — the oracle's reference set.
    pub fn expected(&self, count: u64) -> Vec<Vec<Value>> {
        (0..count).map(|i| self.row_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic_and_keys_unique() {
        let mut a = FleetLoad::new(42, 16, 1_000_000);
        let mut b = FleetLoad::new(42, 16, 1_000_000);
        assert_eq!(a.batch(100), b.batch(100));
        assert_eq!(a.emitted(), 100);
        // Keys unique and recomputable.
        let rows = a.expected(100);
        let keys: HashSet<(i64, i64)> = rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::I64(d), Value::Timestamp(t)) => (*d, *t),
                _ => panic!("bad row shape"),
            })
            .collect();
        assert_eq!(keys.len(), 100);
        // batch() and row_at() agree.
        let mut c = FleetLoad::new(42, 16, 1_000_000);
        assert_eq!(c.batch(7)[6], c.row_at(6));
    }

    #[test]
    fn different_seeds_differ_and_devices_bound() {
        let a = FleetLoad::new(1, 8, 0).expected(50);
        let b = FleetLoad::new(2, 8, 0).expected(50);
        assert_ne!(a, b);
        for row in &a {
            match row[0] {
                Value::I64(d) => assert!((0..8).contains(&d)),
                _ => panic!("bad device"),
            }
        }
    }
}
