//! Production-fleet workload models for the LittleTable paper's §5.2.
//!
//! The paper's production figures characterize the *workload*, not the
//! engine: shard storage footprints (Fig. 7), per-table key/value sizes
//! (Fig. 8), the query mix and its scan efficiency (Fig. 9), TTLs and
//! query lookbacks (Fig. 10), and long-term rates (§5.2.3). This crate
//! synthesizes a fleet with those published statistics so the benchmark
//! harness can regenerate each figure — and, for engine-dependent
//! quantities like rows-scanned/rows-returned, actually drive the engine
//! with the modelled mix.

#![warn(missing_docs)]

pub mod catalog;
pub mod dist;
pub mod fleetload;
pub mod queries;
pub mod shards;

pub use catalog::{generate_catalog, TableSpec};
pub use dist::Cdf;
pub use fleetload::FleetLoad;
pub use queries::{sample_lookback, sample_query_kind, QueryKind, RateModel};
pub use shards::{Fleet, ShardSpec};
