//! Synthetic table catalogs matching §5.2.2 of the paper.
//!
//! Each production shard hosts ~270 LittleTable tables whose key and value
//! sizes, TTLs, and batch sizes the paper characterizes:
//!
//! * median key 45 B, every key < 128 B (Fig. 8);
//! * median value 61 B, 91% of tables average ≤ 1 kB, a tail of
//!   probabilistic-set values up to 75 kB (Fig. 8);
//! * median table ~875 MB compressed, largest 704 GB;
//! * TTLs mostly a year or longer, bounded by disk (Fig. 10, lower line);
//! * batch sizes: the bottom 20% of tables insert single rows, half see
//!   ≥128 rows per batch, the top 20% over 6,000 (§5.2.4).

use crate::dist::lognormal;
use littletable_vfs::Micros;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const DAY: Micros = 86_400 * 1_000_000;

/// A synthesized table's shape.
#[derive(Debug, Clone, Serialize)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Average encoded key size in bytes (< 128).
    pub key_bytes: u32,
    /// Average value payload size in bytes (≤ 75 kB).
    pub value_bytes: u32,
    /// Total compressed size in bytes.
    pub table_bytes: u64,
    /// Row time-to-live.
    pub ttl: Micros,
    /// Average rows per insert batch.
    pub batch_rows: u32,
}

impl TableSpec {
    /// Average row footprint (key + value).
    pub fn row_bytes(&self) -> u64 {
        (self.key_bytes + self.value_bytes) as u64
    }
}

/// Generates one shard's catalog of `n` tables, deterministic in `seed`.
pub fn generate_catalog(n: usize, seed: u64) -> Vec<TableSpec> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xCA7A_0609);
    (0..n)
        .map(|i| {
            // Keys: lognormal around 45 B, clamped below 128 B.
            let key_bytes = lognormal(&mut rng, 45f64.ln(), 0.45).clamp(8.0, 127.0) as u32;
            // Values: lognormal around 61 B with a heavy tail; ~9% of
            // tables exceed 1 kB, capped at 75 kB (HLL-style sketches).
            let value_bytes = if rng.gen_bool(0.03) {
                rng.gen_range(4_096.0..75_000.0)
            } else {
                lognormal(&mut rng, 61f64.ln(), 1.15).clamp(4.0, 4_096.0)
            } as u32;
            // Table sizes: median ~875 MB, max ~704 GB.
            let table_bytes =
                lognormal(&mut rng, (875f64 * 1e6).ln(), 1.9).clamp(1e6, 7.04e11) as u64;
            // TTLs: most tables keep a year or more; steps at human spans.
            let ttl_days = *crate::dist::weighted_choice(
                &mut rng,
                &[
                    (&7i64, 0.03),
                    (&30, 0.06),
                    (&90, 0.08),
                    (&180, 0.08),
                    (&395, 0.45),
                    (&790, 0.30),
                ],
            );
            // Batch sizes (§5.2.4): bottom 20% single rows, half ≥ 128,
            // top 20% over 6,000.
            let batch_rows = *crate::dist::weighted_choice(
                &mut rng,
                &[
                    (&1u32, 0.20),
                    (&32, 0.15),
                    (&128, 0.15),
                    (&512, 0.20),
                    (&2_048, 0.10),
                    (&6_500, 0.15),
                    (&20_000, 0.05),
                ],
            );
            TableSpec {
                name: format!("table_{i:03}"),
                key_bytes,
                value_bytes,
                table_bytes,
                ttl: ttl_days * DAY,
                batch_rows,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Cdf;

    fn catalog() -> Vec<TableSpec> {
        generate_catalog(270, 7)
    }

    #[test]
    fn key_sizes_match_paper() {
        let c = catalog();
        let keys = Cdf::from_samples(c.iter().map(|t| t.key_bytes as f64).collect());
        let median = keys.quantile(0.5);
        assert!((30.0..60.0).contains(&median), "median key {median}");
        assert!(keys.max() < 128.0, "all keys under 128 B");
    }

    #[test]
    fn value_sizes_match_paper() {
        let c = catalog();
        let values = Cdf::from_samples(c.iter().map(|t| t.value_bytes as f64).collect());
        let median = values.quantile(0.5);
        assert!((35.0..110.0).contains(&median), "median value {median}");
        // ~91% of tables average ≤ 1 kB.
        let frac_small = values.fraction_le(1024.0);
        assert!(frac_small > 0.85 && frac_small < 0.99, "frac={frac_small}");
        assert!(values.max() <= 75_000.0);
    }

    #[test]
    fn table_sizes_match_paper() {
        let c = generate_catalog(2000, 3);
        let sizes = Cdf::from_samples(c.iter().map(|t| t.table_bytes as f64).collect());
        let median = sizes.quantile(0.5);
        assert!(
            (300e6..2.5e9).contains(&median),
            "median table size {median}"
        );
        assert!(sizes.max() <= 7.04e11);
    }

    #[test]
    fn ttls_mostly_a_year_or_longer() {
        let c = catalog();
        let year = 365 * DAY;
        let long = c.iter().filter(|t| t.ttl >= year).count();
        assert!(long * 100 / c.len() >= 60, "long-ttl fraction too small");
    }

    #[test]
    fn batch_size_quantiles() {
        let c = generate_catalog(2000, 5);
        let batches = Cdf::from_samples(c.iter().map(|t| t.batch_rows as f64).collect());
        assert!(batches.quantile(0.5) >= 128.0, "half see ≥128-row batches");
        assert!(batches.quantile(0.85) >= 6_000.0, "top 20% over 6000");
        assert!(batches.fraction_le(1.0) >= 0.15, "bottom fifth single rows");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_catalog(10, 42);
        let b = generate_catalog(10, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key_bytes, y.key_bytes);
            assert_eq!(x.table_bytes, y.table_bytes);
        }
    }
}
