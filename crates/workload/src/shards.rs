//! The shard fleet model (§2.1, §5.2.1, Fig. 7).
//!
//! Dashboard is horizontally partitioned into several hundred shards. The
//! operations team splits a shard when its PostgreSQL size exceeds RAM or
//! its LittleTable data fills the disks, so LittleTable holds roughly 20×
//! more data than PostgreSQL — the ratio of disk to main memory on the
//! servers. As of the paper's snapshot: 320 TB total LittleTable (largest
//! instance 6.7 TB) versus 14 TB PostgreSQL (largest 341 GB).

use crate::dist::{lognormal, Cdf};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// One shard's storage footprint.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSpec {
    /// Shard index.
    pub id: u32,
    /// LittleTable bytes on this shard.
    pub littletable_bytes: u64,
    /// PostgreSQL bytes on this shard.
    pub postgres_bytes: u64,
    /// Meraki devices hosted (the primary load determinant, §2.2).
    pub devices: u32,
}

/// A synthesized fleet.
#[derive(Debug, Clone, Serialize)]
pub struct Fleet {
    /// All shards.
    pub shards: Vec<ShardSpec>,
}

impl Fleet {
    /// Generates `n` shards deterministic in `seed`, calibrated to the
    /// paper's totals and maxima.
    pub fn generate(n: usize, seed: u64) -> Fleet {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5AD5);
        let mut shards: Vec<ShardSpec> = (0..n as u32)
            .map(|id| {
                // LittleTable per shard: lognormal with mean ≈ 320 TB / n,
                // clamped below the observed 6.7 TB maximum (operators
                // split shards whose disks fill, §2.2).
                let sigma = 1.0f64;
                let mu = (320e12 / n as f64).ln() - sigma * sigma / 2.0;
                let lt = lognormal(&mut rng, mu, sigma).clamp(3e10, 6.7e12) as u64;
                // PostgreSQL is roughly LittleTable / 20, capped at 341 GB.
                let pg = ((lt as f64 / 20.0) * lognormal(&mut rng, 0.0, 0.35)).clamp(1e9, 3.41e11)
                    as u64;
                // Device counts scale with stored telemetry, up to the ~30k
                // devices the largest shards host (§2.1).
                let devices = ((lt as f64 / 1e8) * lognormal(&mut rng, 0.0, 0.3))
                    .clamp(300.0, 33_000.0) as u32;
                ShardSpec {
                    id,
                    littletable_bytes: lt,
                    postgres_bytes: pg,
                    devices,
                }
            })
            .collect();
        // Normalize so the fleet total matches the paper's 320 TB while
        // preserving shape (rescale, re-clamping the max).
        let total: f64 = shards.iter().map(|s| s.littletable_bytes as f64).sum();
        let scale = 320e12 / total;
        for s in &mut shards {
            s.littletable_bytes =
                ((s.littletable_bytes as f64 * scale) as u64).min(6_700_000_000_000);
            s.postgres_bytes = ((s.postgres_bytes as f64 * scale) as u64).min(341_000_000_000);
        }
        Fleet { shards }
    }

    /// CDF of LittleTable sizes across shards (Fig. 7, solid line).
    pub fn littletable_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.shards
                .iter()
                .map(|s| s.littletable_bytes as f64)
                .collect(),
        )
    }

    /// CDF of PostgreSQL sizes across shards (Fig. 7, dashed line).
    pub fn postgres_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.shards
                .iter()
                .map(|s| s.postgres_bytes as f64)
                .collect(),
        )
    }

    /// Total LittleTable bytes fleet-wide.
    pub fn littletable_total(&self) -> u64 {
        self.shards.iter().map(|s| s.littletable_bytes).sum()
    }

    /// Total PostgreSQL bytes fleet-wide.
    pub fn postgres_total(&self) -> u64 {
        self.shards.iter().map(|s| s.postgres_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_scale() {
        let f = Fleet::generate(400, 17);
        let lt_total = f.littletable_total() as f64;
        assert!(
            (2.4e14..3.4e14).contains(&lt_total),
            "LT total = {lt_total:.2e}"
        );
        let pg_total = f.postgres_total() as f64;
        assert!(
            (0.5e13..3.0e13).contains(&pg_total),
            "PG total = {pg_total:.2e}"
        );
        // LittleTable holds roughly 20x PostgreSQL.
        let ratio = lt_total / pg_total;
        assert!((10.0..35.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn maxima_match_paper() {
        let f = Fleet::generate(400, 17);
        let lt_max = f.littletable_cdf().max();
        assert!(lt_max <= 6.7e12);
        assert!(
            lt_max > 2.0e12,
            "some shard should be multi-TB: {lt_max:.2e}"
        );
        let pg_max = f.postgres_cdf().max();
        assert!(pg_max <= 3.41e11);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Fleet::generate(50, 3);
        let b = Fleet::generate(50, 3);
        assert_eq!(
            a.shards.iter().map(|s| s.littletable_bytes).sum::<u64>(),
            b.shards.iter().map(|s| s.littletable_bytes).sum::<u64>()
        );
    }

    #[test]
    fn device_counts_are_plausible() {
        let f = Fleet::generate(400, 9);
        assert!(f.shards.iter().all(|s| s.devices >= 300));
        assert!(f.shards.iter().any(|s| s.devices > 15_000));
        assert!(f.shards.iter().all(|s| s.devices <= 33_000));
    }
}
