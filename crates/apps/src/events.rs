//! EventsGrabber (§4.2): pulls device event logs into LittleTable.
//!
//! Each device numbers its events with a monotonically increasing id. The
//! grabber caches the most recent id fetched per device, supplies it on
//! each poll, and inserts one row per returned event keyed
//! `(network, device, ts)` with the id and contents as the value.
//!
//! Recovery combines three techniques from the paper:
//!
//! * a bounded query over recent rows rebuilds most of the cache;
//! * for devices absent from that window, the grabber asks the device for
//!   its **oldest retained event** and uses that timestamp to bound a
//!   [`littletable_core::table::Table::latest`] search;
//! * optional **sentinel rows** record each device's latest event id
//!   periodically, so recovery never needs to search further back than
//!   one sentinel period.

use crate::device::{DeviceId, Fleet};
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::Table;
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Query, Result};
use littletable_vfs::Micros;
use std::collections::HashMap;
use std::sync::Arc;

/// The events table: `(network, device, ts)` → (event id, kind, detail).
pub fn events_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("event_id", ColumnType::I64),
            ColumnDef::new("kind", ColumnType::Str),
            ColumnDef::new("detail", ColumnType::Str),
        ],
        &["network", "device", "ts"],
    )
    .expect("events schema is valid")
}

/// Sentinel table: `(network, device, ts)` → latest event id at `ts`.
pub fn sentinel_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("event_id", ColumnType::I64),
        ],
        &["network", "device", "ts"],
    )
    .expect("sentinel schema is valid")
}

/// The event-polling daemon.
pub struct EventsGrabber {
    table: Arc<Table>,
    sentinels: Option<Arc<Table>>,
    cache: HashMap<DeviceId, i64>,
    /// How often to write a sentinel row per device.
    pub sentinel_period: Micros,
    last_sentinel: HashMap<DeviceId, Micros>,
    /// Max events fetched per device per poll.
    pub fetch_limit: usize,
}

impl EventsGrabber {
    /// Creates a grabber; pass a sentinel table to enable sentinel rows.
    pub fn new(table: Arc<Table>, sentinels: Option<Arc<Table>>) -> EventsGrabber {
        EventsGrabber {
            table,
            sentinels,
            cache: HashMap::new(),
            sentinel_period: 10 * 60 * 1_000_000,
            last_sentinel: HashMap::new(),
            fetch_limit: 10_000,
        }
    }

    /// Devices with a cached last-event id.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Polls every device at `t`, inserting new events. Returns rows
    /// inserted (events + sentinels).
    pub fn poll_all(&mut self, fleet: &Fleet, t: Micros) -> Result<usize> {
        let mut inserted = 0;
        for &dev in fleet.devices() {
            let after = self.cache.get(&dev).copied();
            let Some(events) = fleet.poll_events(dev, after, t, self.fetch_limit) else {
                continue;
            };
            if events.is_empty() {
                continue;
            }
            let last_id = events.last().unwrap().id;
            let rows: Vec<Vec<Value>> = events
                .into_iter()
                .map(|e| {
                    vec![
                        Value::I64(dev.network),
                        Value::I64(dev.device),
                        Value::Timestamp(e.ts),
                        Value::I64(e.id),
                        Value::Str(e.kind.to_string()),
                        Value::Str(e.detail),
                    ]
                })
                .collect();
            let report = self.table.insert(rows)?;
            inserted += report.inserted;
            self.cache.insert(dev, last_id);
            // Sentinels: cheap periodic breadcrumbs for fast recovery.
            if let Some(sent) = &self.sentinels {
                let due = self
                    .last_sentinel
                    .get(&dev)
                    .is_none_or(|&last| t - last >= self.sentinel_period);
                if due {
                    sent.insert(vec![vec![
                        Value::I64(dev.network),
                        Value::I64(dev.device),
                        Value::Timestamp(t),
                        Value::I64(last_id),
                    ]])?;
                    self.last_sentinel.insert(dev, t);
                    inserted += 1;
                }
            }
        }
        Ok(inserted)
    }

    /// Rebuilds the id cache after a restart (§4.2):
    ///
    /// 1. scan a fixed recent window, keeping the max event id per device;
    /// 2. consult sentinels for devices still missing (when enabled);
    /// 3. for devices *still* missing, query the most recent row for that
    ///    device's key prefix, bounding the search with the device's
    ///    oldest retained event.
    pub fn rebuild_cache(&mut self, fleet: &Fleet, now: Micros, window: Micros) -> Result<()> {
        self.cache.clear();
        // Step 1: recent window.
        let q = Query::all().with_ts_min(now - window, true);
        let mut cur = self.table.query(&q)?;
        while let Some(row) = cur.next_row()? {
            let (Value::I64(network), Value::I64(device), Value::I64(id)) =
                (&row.values[0], &row.values[1], &row.values[3])
            else {
                continue;
            };
            let dev = DeviceId {
                network: *network,
                device: *device,
            };
            let entry = self.cache.entry(dev).or_insert(*id);
            if *id > *entry {
                *entry = *id;
            }
        }
        // Step 2: sentinels.
        if let Some(sent) = &self.sentinels {
            for &dev in fleet.devices() {
                if self.cache.contains_key(&dev) {
                    continue;
                }
                if let Some(row) =
                    sent.latest(&[Value::I64(dev.network), Value::I64(dev.device)])?
                {
                    if let Value::I64(id) = row.values[3] {
                        self.cache.insert(dev, id);
                    }
                }
            }
        }
        // Step 3: latest-row-for-prefix per missing device.
        for &dev in fleet.devices() {
            if self.cache.contains_key(&dev) {
                continue;
            }
            if let Some(row) = self
                .table
                .latest(&[Value::I64(dev.network), Value::I64(dev.device)])?
            {
                if let Value::I64(id) = row.values[3] {
                    self.cache.insert(dev, id);
                }
            }
            // A device with no rows at all will be fetched from its oldest
            // retained event on the next poll (cache stays empty for it).
        }
        Ok(())
    }
}

/// Browses a device's events over a time range — the Dashboard event-log
/// page (§4.2). Returns `(ts, kind, detail)` rows, newest first.
pub fn browse_events(
    table: &Table,
    dev: DeviceId,
    from: Micros,
    to: Micros,
    limit: usize,
) -> Result<Vec<(Micros, String, String)>> {
    let q = Query::all()
        .with_prefix(vec![Value::I64(dev.network), Value::I64(dev.device)])
        .with_ts_range(from, to)
        .descending()
        .with_limit(limit);
    let mut cur = table.query(&q)?;
    let mut out = Vec::new();
    while let Some(row) = cur.next_row()? {
        let Value::Timestamp(ts) = row.values[2] else {
            continue;
        };
        let (Value::Str(kind), Value::Str(detail)) = (&row.values[4], &row.values[5]) else {
            continue;
        };
        out.push((ts, kind.clone(), detail.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::{Db, Options};
    use littletable_vfs::Clock as _;
    use littletable_vfs::{SimClock, SimVfs, MICROS_PER_SEC};

    const EPOCH: Micros = 1_700_000_000_000_000;
    const HOUR: Micros = 3600 * MICROS_PER_SEC;

    fn setup(sentinels: bool) -> (Db, SimClock, Fleet, EventsGrabber, Arc<Table>) {
        let clock = SimClock::new(EPOCH + HOUR);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let table = db.create_table("events", events_schema(), None).unwrap();
        let sent = sentinels.then(|| {
            db.create_table("sentinels", sentinel_schema(), None)
                .unwrap()
        });
        let fleet = Fleet::new(EPOCH, 2, 2, 11);
        let grabber = EventsGrabber::new(table.clone(), sent);
        (db, clock, fleet, grabber, table)
    }

    #[test]
    fn polls_insert_each_event_exactly_once() {
        let (_db, clock, fleet, mut g, table) = setup(false);
        let n1 = g.poll_all(&fleet, clock.now_micros()).unwrap();
        assert!(n1 > 0);
        // Immediately re-polling inserts nothing new.
        assert_eq!(g.poll_all(&fleet, clock.now_micros()).unwrap(), 0);
        clock.advance(10 * 60 * MICROS_PER_SEC);
        let n2 = g.poll_all(&fleet, clock.now_micros()).unwrap();
        assert!(n2 > 0);
        let rows = table.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), n1 + n2);
        assert_eq!(table.stats().snapshot().duplicate_keys, 0);
    }

    #[test]
    fn rebuild_from_recent_window() {
        let (_db, clock, fleet, mut g, table) = setup(false);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        let expected: HashMap<DeviceId, i64> = g.cache.clone();
        // Restart with a window covering everything.
        let mut g2 = EventsGrabber::new(table.clone(), None);
        g2.rebuild_cache(&fleet, clock.now_micros(), 2 * HOUR)
            .unwrap();
        assert_eq!(g2.cache, expected);
        // Next poll inserts nothing (no duplicates either).
        assert_eq!(g2.poll_all(&fleet, clock.now_micros()).unwrap(), 0);
    }

    #[test]
    fn rebuild_falls_back_to_latest_prefix_search() {
        let (_db, clock, mut fleet, mut g, table) = setup(false);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        let expected = g.cache.clone();
        // A long time passes with one device unreachable the whole time;
        // its rows are far outside the recent window.
        let dark = fleet.devices()[0];
        fleet.add_outage(dark, clock.now_micros(), clock.now_micros() + 100 * HOUR);
        clock.advance(50 * HOUR);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        // Restart with a tiny window: the dark device is found via the
        // latest-for-prefix path instead.
        let mut g2 = EventsGrabber::new(table.clone(), None);
        g2.rebuild_cache(&fleet, clock.now_micros(), HOUR).unwrap();
        assert_eq!(g2.cache.get(&dark), expected.get(&dark));
    }

    #[test]
    fn sentinels_bound_recovery() {
        let (_db, clock, fleet, mut g, table) = setup(true);
        g.sentinel_period = 0; // sentinel on every poll for the test
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        let expected = g.cache.clone();
        let sent = g.sentinels.clone().unwrap();
        // Restart with a zero-width recent window: everything must come
        // from sentinels.
        let mut g2 = EventsGrabber::new(table, Some(sent));
        g2.rebuild_cache(&fleet, clock.now_micros(), 0).unwrap();
        assert_eq!(g2.cache, expected);
    }

    #[test]
    fn crash_recovery_refetches_lost_events_without_duplicates() {
        let clock = SimClock::new(EPOCH + HOUR);
        let vfs = SimVfs::instant();
        let db = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let table = db.create_table("events", events_schema(), None).unwrap();
        let fleet = Fleet::new(EPOCH, 1, 2, 5);
        let mut g = EventsGrabber::new(table.clone(), None);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        table.flush_all().unwrap();
        let durable = table.query_all(&Query::all()).unwrap().len();
        // More events arrive and are inserted but NOT flushed.
        clock.advance(HOUR);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        let total = table.query_all(&Query::all()).unwrap().len();
        assert!(total > durable);
        // Crash: memtables lost.
        vfs.crash();
        let db2 = Db::open(
            Arc::new(vfs.clone()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let table2 = db2.table("events").unwrap();
        assert_eq!(table2.query_all(&Query::all()).unwrap().len(), durable);
        // New grabber recovers its cache from surviving rows, then re-polls:
        // the devices replay the lost events (recoverability), and re-
        // inserting the surviving ones is idempotent via key uniqueness.
        let mut g2 = EventsGrabber::new(table2.clone(), None);
        g2.rebuild_cache(&fleet, clock.now_micros(), 3 * HOUR)
            .unwrap();
        g2.poll_all(&fleet, clock.now_micros()).unwrap();
        assert_eq!(table2.query_all(&Query::all()).unwrap().len(), total);
    }

    #[test]
    fn browse_returns_newest_first() {
        let (_db, clock, fleet, mut g, table) = setup(false);
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        let dev = fleet.devices()[0];
        let events = browse_events(&table, dev, EPOCH, clock.now_micros() + 1, 10).unwrap();
        assert!(!events.is_empty());
        assert!(events.len() <= 10);
        for w in events.windows(2) {
            assert!(w[0].0 > w[1].0, "must be newest-first");
        }
    }
}
