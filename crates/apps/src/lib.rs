//! The LittleTable applications of §4, over a simulated device fleet.
//!
//! Three representative Dashboard applications, each built around the same
//! pattern: a *grabber* daemon pulls time-series data from devices into
//! LittleTable; the data is single-writer, append-only, and recoverable
//! from the devices themselves, which is what lets LittleTable drop its
//! write-ahead log.
//!
//! * [`usage`] — UsageGrabber: byte/packet counters and transfer-rate rows,
//!   with the unavailability threshold `T` doing double duty for crash
//!   recovery (§4.1).
//! * [`events`] — EventsGrabber: device event logs with monotonically
//!   increasing ids, exponential-lookback recovery, and sentinel rows
//!   (§4.2).
//! * [`motion`] — MotionGrabber and video motion search over bit-vector
//!   motion words (§4.3).
//! * [`aggregate`] — background aggregators and rollups, including
//!   HyperLogLog distinct-client sketches and tag joins against the
//!   configuration store (§4.1.2).
//! * [`device`] — the simulated fleet standing in for real hardware, with
//!   deterministic (re-readable) counters, logs, and motion streams.
//! * [`config`] — the in-memory stand-in for the shard's PostgreSQL
//!   configuration database.

#![warn(missing_docs)]

pub mod aggregate;
pub mod config;
pub mod device;
pub mod events;
pub mod motion;
pub mod usage;

pub use config::ConfigStore;
pub use device::{DeviceId, Fleet};
pub use events::EventsGrabber;
pub use motion::MotionGrabber;
pub use usage::UsageGrabber;
