//! Video motion search (§4.3): MotionGrabber and rectangle search.
//!
//! Cameras encode motion per video frame as one 32-bit word per coarse
//! cell (a nibble each for the cell's row and column, a bit per 16×16
//! macroblock), coalescing consecutive frames. MotionGrabber pulls these
//! events like EventsGrabber pulls logs; Dashboard then searches backwards
//! in time for motion intersecting a user-drawn rectangle and draws
//! heatmaps of motion over time.

use crate::device::{DeviceId, Fleet, MotionEvent};
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::Table;
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Query, Result};
use littletable_vfs::Micros;
use std::collections::HashMap;
use std::sync::Arc;

/// The motion table: `(network, camera, ts)` → (duration_ms, word).
pub fn motion_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("camera", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("duration_ms", ColumnType::I64),
            ColumnDef::new("word", ColumnType::I64),
        ],
        &["network", "camera", "ts"],
    )
    .expect("motion schema is valid")
}

/// A rectangle of coarse cells in the camera frame, inclusive bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRect {
    /// First row.
    pub row_min: u8,
    /// Last row.
    pub row_max: u8,
    /// First column.
    pub col_min: u8,
    /// Last column.
    pub col_max: u8,
}

impl CellRect {
    /// True when the rectangle covers the event's coarse cell.
    pub fn covers(&self, e: &MotionEvent) -> bool {
        (self.row_min..=self.row_max).contains(&e.row())
            && (self.col_min..=self.col_max).contains(&e.col())
    }
}

/// The motion-polling daemon: tracks the last fetched instant per camera.
pub struct MotionGrabber {
    table: Arc<Table>,
    cursor: HashMap<DeviceId, Micros>,
}

impl MotionGrabber {
    /// Creates a grabber writing to a [`motion_schema`] table.
    pub fn new(table: Arc<Table>) -> MotionGrabber {
        MotionGrabber {
            table,
            cursor: HashMap::new(),
        }
    }

    /// Polls every camera for motion since the last poll (or `lookback`
    /// for the first). Returns rows inserted.
    pub fn poll_all(&mut self, fleet: &Fleet, t: Micros, lookback: Micros) -> Result<usize> {
        let mut inserted = 0;
        for &cam in fleet.devices() {
            let from = self.cursor.get(&cam).copied().unwrap_or(t - lookback);
            if !fleet.reachable(cam, t) {
                continue;
            }
            let events = fleet.poll_motion(cam, from, t);
            let rows: Vec<Vec<Value>> = events
                .iter()
                .map(|e| {
                    vec![
                        Value::I64(cam.network),
                        Value::I64(cam.device),
                        Value::Timestamp(e.ts),
                        Value::I64(e.duration_ms as i64),
                        Value::I64(e.word as i64),
                    ]
                })
                .collect();
            if !rows.is_empty() {
                inserted += self.table.insert(rows)?.inserted;
            }
            self.cursor.insert(cam, t);
        }
        Ok(inserted)
    }
}

fn decode_row(row: &littletable_core::Row) -> Option<(Micros, u32, u32)> {
    let Value::Timestamp(ts) = row.values[2] else {
        return None;
    };
    let Value::I64(duration) = row.values[3] else {
        return None;
    };
    let Value::I64(word) = row.values[4] else {
        return None;
    };
    Some((ts, duration as u32, word as u32))
}

/// Searches backwards in time for motion events on one camera whose cell
/// intersects `rect`, newest first, up to `limit` hits — the user's
/// "select an area and search backwards" flow (§4.3).
pub fn search_motion(
    table: &Table,
    camera: DeviceId,
    rect: CellRect,
    until: Micros,
    limit: usize,
) -> Result<Vec<(Micros, u32)>> {
    let q = Query::all()
        .with_prefix(vec![Value::I64(camera.network), Value::I64(camera.device)])
        .with_ts_max(until, false)
        .descending();
    let mut cur = table.query(&q)?;
    let mut out = Vec::new();
    while let Some(row) = cur.next_row()? {
        let Some((ts, duration, word)) = decode_row(&row) else {
            continue;
        };
        let e = MotionEvent {
            ts,
            duration_ms: duration,
            word,
        };
        if rect.covers(&e) {
            out.push((ts, duration));
            if out.len() >= limit {
                break;
            }
        }
    }
    Ok(out)
}

/// Builds a heatmap of motion over `[from, to)`: total motion-milliseconds
/// per coarse cell, indexed `[row][col]` (§4.3's heatmap view).
pub fn motion_heatmap(
    table: &Table,
    camera: DeviceId,
    from: Micros,
    to: Micros,
) -> Result<Vec<Vec<u64>>> {
    let q = Query::all()
        .with_prefix(vec![Value::I64(camera.network), Value::I64(camera.device)])
        .with_ts_range(from, to);
    let mut cur = table.query(&q)?;
    let mut grid = vec![vec![0u64; 16]; 16];
    while let Some(row) = cur.next_row()? {
        let Some((ts, duration, word)) = decode_row(&row) else {
            continue;
        };
        let e = MotionEvent {
            ts,
            duration_ms: duration,
            word,
        };
        grid[e.row() as usize][e.col() as usize] += duration as u64;
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::{Db, Options};
    use littletable_vfs::Clock as _;
    use littletable_vfs::{SimClock, SimVfs, MICROS_PER_SEC};

    const EPOCH: Micros = 1_700_000_000_000_000;

    fn setup() -> (SimClock, Fleet, MotionGrabber, Arc<Table>) {
        let clock = SimClock::new(EPOCH + 600 * MICROS_PER_SEC);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let table = db.create_table("motion", motion_schema(), None).unwrap();
        let fleet = Fleet::new(EPOCH, 1, 2, 99);
        let g = MotionGrabber::new(table.clone());
        (clock, fleet, g, table)
    }

    #[test]
    fn polls_are_incremental_and_idempotent() {
        let (clock, fleet, mut g, table) = setup();
        let n1 = g
            .poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
            .unwrap();
        assert!(n1 > 0);
        assert_eq!(
            g.poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
                .unwrap(),
            0
        );
        clock.advance(300 * MICROS_PER_SEC);
        let n2 = g
            .poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
            .unwrap();
        assert!(n2 > 0);
        assert_eq!(table.query_all(&Query::all()).unwrap().len(), n1 + n2);
    }

    #[test]
    fn search_finds_only_intersecting_cells_newest_first() {
        let (clock, fleet, mut g, table) = setup();
        g.poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
            .unwrap();
        let cam = fleet.devices()[0];
        let all_rect = CellRect {
            row_min: 0,
            row_max: 15,
            col_min: 0,
            col_max: 15,
        };
        let hits = search_motion(&table, cam, all_rect, clock.now_micros(), 1000).unwrap();
        let raw = fleet.poll_motion(cam, EPOCH, clock.now_micros());
        assert_eq!(hits.len(), raw.len());
        for w in hits.windows(2) {
            assert!(w[0].0 > w[1].0);
        }
        // A narrow rectangle returns a strict subset matching the raw
        // stream's filter.
        let narrow = CellRect {
            row_min: 2,
            row_max: 4,
            col_min: 3,
            col_max: 6,
        };
        let hits = search_motion(&table, cam, narrow, clock.now_micros(), 1000).unwrap();
        let expect = raw.iter().filter(|e| narrow.covers(e)).count();
        assert_eq!(hits.len(), expect);
        assert!(hits.len() < raw.len());
    }

    #[test]
    fn search_respects_limit() {
        let (clock, fleet, mut g, table) = setup();
        g.poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
            .unwrap();
        let cam = fleet.devices()[0];
        let rect = CellRect {
            row_min: 0,
            row_max: 15,
            col_min: 0,
            col_max: 15,
        };
        let hits = search_motion(&table, cam, rect, clock.now_micros(), 3).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn heatmap_totals_match_stream() {
        let (clock, fleet, mut g, table) = setup();
        g.poll_all(&fleet, clock.now_micros(), 600 * MICROS_PER_SEC)
            .unwrap();
        let cam = fleet.devices()[0];
        let grid = motion_heatmap(&table, cam, EPOCH, clock.now_micros()).unwrap();
        let total: u64 = grid.iter().flatten().sum();
        let expect: u64 = fleet
            .poll_motion(cam, EPOCH, clock.now_micros())
            .iter()
            .map(|e| e.duration_ms as u64)
            .sum();
        assert_eq!(total, expect);
        // Cameras don't bleed into each other: the second camera's grid
        // matches its own stream, not the first's.
        let other = fleet.devices()[1];
        let grid2 = motion_heatmap(&table, other, EPOCH, clock.now_micros()).unwrap();
        let expect2: u64 = fleet
            .poll_motion(other, EPOCH, clock.now_micros())
            .iter()
            .map(|e| e.duration_ms as u64)
            .sum();
        assert_eq!(grid2.iter().flatten().sum::<u64>(), expect2);
        assert_ne!(expect2, expect, "streams should differ between cameras");
    }
}
