//! UsageGrabber (§4.1.1): polls device byte counters and stores transfer
//! rates in LittleTable.
//!
//! Every poll interval the grabber fetches each device's cumulative byte
//! counter, computes the average rate over the interval since the previous
//! sample, and inserts a row keyed `(network, device, ts)` with value
//! `(prev_ts, count, rate)`. The in-memory cache of previous samples is
//! disposable: after a LittleTable crash (or its own restart) the grabber
//! rebuilds it from the table itself — and because any gap longer than the
//! threshold `T` is treated like a first contact, the cache rebuild only
//! ever needs to look `T` into the past (§4.1.1's key trick).

use crate::device::{DeviceId, Fleet};
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::Table;
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Query, Result};
use littletable_vfs::Micros;
use std::collections::HashMap;
use std::sync::Arc;

/// The schema of the usage table: keyed by network and device so
/// Dashboard can efficiently load either a whole network or one device
/// (§4.1.1).
pub fn usage_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("prev_ts", ColumnType::Timestamp),
            ColumnDef::new("count", ColumnType::I64),
            ColumnDef::new("rate", ColumnType::F64),
        ],
        &["network", "device", "ts"],
    )
    .expect("usage schema is valid")
}

/// The usage-polling daemon.
pub struct UsageGrabber {
    table: Arc<Table>,
    /// Previous `(t1, c1)` per device.
    cache: HashMap<DeviceId, (Micros, u64)>,
    /// Unavailability threshold `T`: a gap longer than this renders a row
    /// disingenuous, so the grabber records nothing and Dashboard shows a
    /// gap. Dashboard sets T to an hour.
    pub threshold: Micros,
}

impl UsageGrabber {
    /// Creates a grabber writing to `table` (of [`usage_schema`]).
    pub fn new(table: Arc<Table>, threshold: Micros) -> UsageGrabber {
        UsageGrabber {
            table,
            cache: HashMap::new(),
            threshold,
        }
    }

    /// Number of devices currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Polls every device at time `t` and stores one row per device with a
    /// usable previous sample. Returns the number of rows inserted.
    pub fn poll_all(&mut self, fleet: &Fleet, t: Micros) -> Result<usize> {
        let mut rows = Vec::new();
        for &dev in fleet.devices() {
            let Some(c2) = fleet.poll_counter(dev, t) else {
                continue; // unreachable; cache entry ages out naturally
            };
            match self.cache.get(&dev).copied() {
                Some((t1, c1)) if t - t1 <= self.threshold && t > t1 => {
                    let rate = (c2.saturating_sub(c1)) as f64 / ((t - t1) as f64 / 1_000_000.0);
                    rows.push(vec![
                        Value::I64(dev.network),
                        Value::I64(dev.device),
                        Value::Timestamp(t),
                        Value::Timestamp(t1),
                        Value::I64(c2 as i64),
                        Value::F64(rate),
                    ]);
                }
                // First response ever, or a gap exceeding T: cache only.
                _ => {}
            }
            self.cache.insert(dev, (t, c2));
        }
        let n = rows.len();
        if n > 0 {
            self.table.insert(rows)?;
        }
        Ok(n)
    }

    /// Rebuilds the in-memory cache after a crash: one query over the last
    /// `T` of data, keeping each device's most recent `(ts, count)`
    /// (§4.1.1 — "this query takes under four seconds").
    pub fn rebuild_cache(&mut self, now: Micros) -> Result<()> {
        self.cache.clear();
        let q = Query::all().with_ts_min(now - self.threshold, true);
        let mut cur = self.table.query(&q)?;
        while let Some(row) = cur.next_row()? {
            let (Value::I64(network), Value::I64(device), Value::Timestamp(ts), Value::I64(count)) = (
                &row.values[0],
                &row.values[1],
                &row.values[2],
                &row.values[4],
            ) else {
                continue;
            };
            let dev = DeviceId {
                network: *network,
                device: *device,
            };
            let entry = self.cache.entry(dev).or_insert((*ts, *count as u64));
            if *ts > entry.0 {
                *entry = (*ts, *count as u64);
            }
        }
        Ok(())
    }
}

/// Convenience for Dashboard pages: total bytes per device in a network
/// over a time range, exploiting the (network, device, ts) clustering.
pub fn bytes_per_device(
    table: &Table,
    network: i64,
    from: Micros,
    to: Micros,
) -> Result<Vec<(i64, f64)>> {
    let q = Query::all()
        .with_prefix(vec![Value::I64(network)])
        .with_ts_range(from, to);
    let mut cur = table.query(&q)?;
    let mut out: Vec<(i64, f64)> = Vec::new();
    while let Some(row) = cur.next_row()? {
        let Value::I64(device) = row.values[1] else {
            continue;
        };
        let (Value::F64(rate), Value::Timestamp(ts), Value::Timestamp(prev)) =
            (&row.values[5], &row.values[2], &row.values[3])
        else {
            continue;
        };
        let bytes = rate * ((ts - prev) as f64 / 1_000_000.0);
        // Rows arrive sorted by (device, ts): aggregate without resorting,
        // as the paper's adaptor does (§3.1).
        match out.last_mut() {
            Some((d, total)) if *d == device => *total += bytes,
            _ => out.push((device, bytes)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MINUTE;
    use littletable_core::{Db, Options};
    use littletable_vfs::Clock as _;
    use littletable_vfs::{SimClock, SimVfs};

    const EPOCH: Micros = 1_700_000_000_000_000;

    fn setup() -> (Db, SimClock, Fleet, Arc<Table>) {
        let clock = SimClock::new(EPOCH);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let table = db.create_table("usage", usage_schema(), None).unwrap();
        let fleet = Fleet::new(EPOCH, 2, 3, 7);
        (db, clock, fleet, table)
    }

    #[test]
    fn first_poll_inserts_nothing_then_rates_flow() {
        let (_db, clock, fleet, table) = setup();
        let mut g = UsageGrabber::new(table.clone(), 3600 * 1_000_000);
        assert_eq!(g.poll_all(&fleet, clock.now_micros()).unwrap(), 0);
        clock.advance(MINUTE);
        assert_eq!(g.poll_all(&fleet, clock.now_micros()).unwrap(), 6);
        let rows = table.query_all(&Query::all()).unwrap();
        assert_eq!(rows.len(), 6);
        // Rate is consistent with counter delta over one minute.
        let dev = fleet.devices()[0];
        let c1 = fleet.poll_counter(dev, EPOCH).unwrap();
        let c2 = fleet.poll_counter(dev, EPOCH + MINUTE).unwrap();
        let Value::F64(rate) = rows[0].values[5] else {
            panic!()
        };
        assert!((rate - (c2 - c1) as f64 / 60.0).abs() < 1e-6);
    }

    #[test]
    fn outage_longer_than_threshold_leaves_gap() {
        let (_db, clock, mut fleet, table) = setup();
        let threshold = 30 * MINUTE;
        let mut g = UsageGrabber::new(table.clone(), threshold);
        let dev = fleet.devices()[0];
        g.poll_all(&fleet, clock.now_micros()).unwrap();
        // Device 0 goes dark for 40 minutes.
        fleet.add_outage(dev, EPOCH + MINUTE, EPOCH + 41 * MINUTE);
        for _ in 0..45 {
            clock.advance(MINUTE);
            g.poll_all(&fleet, clock.now_micros()).unwrap();
        }
        // Dev 0 has a gap: rows with prev-to-ts spans > threshold never
        // appear.
        let rows = table
            .query_all(
                &Query::all().with_prefix(vec![Value::I64(dev.network), Value::I64(dev.device)]),
            )
            .unwrap();
        for row in &rows {
            let (Value::Timestamp(ts), Value::Timestamp(prev)) = (&row.values[2], &row.values[3])
            else {
                panic!()
            };
            assert!(ts - prev <= threshold);
        }
        // Other devices have a full series (45 samples).
        let other = fleet.devices()[1];
        let rows = table
            .query_all(
                &Query::all()
                    .with_prefix(vec![Value::I64(other.network), Value::I64(other.device)]),
            )
            .unwrap();
        assert_eq!(rows.len(), 45);
    }

    #[test]
    fn cache_rebuild_after_crash_resumes_cleanly() {
        let (_db, clock, fleet, table) = setup();
        let mut g = UsageGrabber::new(table.clone(), 3600 * 1_000_000);
        for _ in 0..5 {
            g.poll_all(&fleet, clock.now_micros()).unwrap();
            clock.advance(MINUTE);
        }
        let before = table.stats().snapshot().rows_inserted;
        // Grabber restarts: cache rebuilt from the table.
        let mut g2 = UsageGrabber::new(table.clone(), 3600 * 1_000_000);
        g2.rebuild_cache(clock.now_micros()).unwrap();
        assert_eq!(g2.cache_len(), 6);
        // The next poll continues the series without duplicate work: each
        // device contributes exactly one new row.
        let n = g2.poll_all(&fleet, clock.now_micros()).unwrap();
        assert_eq!(n, 6);
        assert_eq!(table.stats().snapshot().rows_inserted, before + 6);
        assert_eq!(table.stats().snapshot().duplicate_keys, 0);
    }

    #[test]
    fn bytes_per_device_aggregates_in_key_order() {
        let (_db, clock, fleet, table) = setup();
        let mut g = UsageGrabber::new(table.clone(), 3600 * 1_000_000);
        for _ in 0..10 {
            g.poll_all(&fleet, clock.now_micros()).unwrap();
            clock.advance(MINUTE);
        }
        let per_dev = bytes_per_device(&table, 1, EPOCH, clock.now_micros()).unwrap();
        assert_eq!(per_dev.len(), 3);
        assert_eq!(per_dev[0].0, 1);
        assert_eq!(per_dev[2].0, 3);
        // Totals match the counters' deltas over the covered interval.
        for &(device, bytes) in &per_dev {
            let dev = DeviceId { network: 1, device };
            let c1 = fleet.poll_counter(dev, EPOCH).unwrap();
            let c2 = fleet.poll_counter(dev, EPOCH + 9 * MINUTE).unwrap();
            let expect = (c2 - c1) as f64;
            assert!(
                (bytes - expect).abs() / expect.max(1.0) < 1e-6,
                "device {device}: {bytes} vs {expect}"
            );
        }
    }
}
