//! A simulated fleet of Meraki-style devices.
//!
//! The paper's grabbers poll real devices over mtunnel; here the device
//! side is simulated with three crucial properties preserved:
//!
//! * **Determinism** — a device's counters, event log, and motion stream
//!   are pure functions of (device id, time), so after a LittleTable crash
//!   a grabber that re-polls genuinely *re-reads the same data from the
//!   device*, which is the recoverability assumption the whole durability
//!   story rests on (§2.3.4).
//! * **Monotonic counters and event ids** — byte counters only grow and
//!   each event id is one greater than the last (§4.2).
//! * **Injectable unavailability** — devices can be made unreachable for
//!   arbitrary windows to exercise the grabbers' gap-handling (§4.1.1).

use littletable_vfs::{Micros, MICROS_PER_SEC};
use std::collections::HashMap;

fn mix(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One minute in micros.
pub const MINUTE: Micros = 60 * MICROS_PER_SEC;

/// Identifies a device within the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId {
    /// The network (customer grouping) the device belongs to.
    pub network: i64,
    /// The device's own id.
    pub device: i64,
}

/// One event from a device's log (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvent {
    /// Monotonically increasing per-device id.
    pub id: i64,
    /// When the event occurred on the device.
    pub ts: Micros,
    /// Event kind (e.g. "dhcp_lease", "assoc", "8021x").
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// One coalesced motion event from a camera (§4.3): a 32-bit word with a
/// nibble each for the coarse cell's row and column and a bit per 16×16
/// macroblock inside the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionEvent {
    /// Event start time.
    pub ts: Micros,
    /// Coalesced duration in milliseconds.
    pub duration_ms: u32,
    /// Encoded `[row nibble][col nibble][24-bit macroblock mask]`.
    pub word: u32,
}

impl MotionEvent {
    /// Builds the encoded word.
    pub fn encode_word(row: u8, col: u8, mask: u32) -> u32 {
        debug_assert!(row < 16 && col < 16);
        ((row as u32) << 28) | ((col as u32) << 24) | (mask & 0x00FF_FFFF)
    }

    /// The coarse cell row (0..=15; the frame uses 0..34/4 rows).
    pub fn row(&self) -> u8 {
        (self.word >> 28) as u8
    }

    /// The coarse cell column (0..=15; the frame uses 0..60/6 columns).
    pub fn col(&self) -> u8 {
        ((self.word >> 24) & 0xF) as u8
    }

    /// The 24-bit macroblock presence mask.
    pub fn mask(&self) -> u32 {
        self.word & 0x00FF_FFFF
    }
}

/// The simulated fleet.
#[derive(Debug, Default)]
pub struct Fleet {
    /// Time the simulation considers "device boot"; counters and logs
    /// start here.
    epoch: Micros,
    devices: Vec<DeviceId>,
    /// Per-device unreachability windows `[from, to)`.
    outages: HashMap<DeviceId, Vec<(Micros, Micros)>>,
    /// How many events the device keeps in flash (older ones fall off).
    event_history: usize,
    seed: u64,
}

impl Fleet {
    /// Creates a fleet of `networks × devices_per_network` devices whose
    /// history begins at `epoch`.
    pub fn new(epoch: Micros, networks: i64, devices_per_network: i64, seed: u64) -> Fleet {
        let mut devices = Vec::new();
        for n in 1..=networks {
            for d in 1..=devices_per_network {
                devices.push(DeviceId {
                    network: n,
                    device: d,
                });
            }
        }
        Fleet {
            epoch,
            devices,
            outages: HashMap::new(),
            event_history: 10_000,
            seed,
        }
    }

    /// All device ids.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// The simulation epoch.
    pub fn epoch(&self) -> Micros {
        self.epoch
    }

    /// Marks a device unreachable during `[from, to)`.
    pub fn add_outage(&mut self, dev: DeviceId, from: Micros, to: Micros) {
        self.outages.entry(dev).or_default().push((from, to));
    }

    /// True when the device answers polls at `t`.
    pub fn reachable(&self, dev: DeviceId, t: Micros) -> bool {
        self.outages
            .get(&dev)
            .map(|windows| !windows.iter().any(|&(a, b)| t >= a && t < b))
            .unwrap_or(true)
    }

    fn dev_seed(&self, dev: DeviceId) -> u64 {
        mix(self.seed ^ (dev.network as u64) << 32 ^ dev.device as u64)
    }

    // ------------------------------------------------------------- counters

    /// The device's per-minute transfer in bytes for the minute starting
    /// at `minute_start` — a deterministic, bursty pattern.
    pub fn rate_in_minute(&self, dev: DeviceId, minute_index: i64) -> u64 {
        let h = mix(self.dev_seed(dev) ^ minute_index as u64);
        // Mostly modest traffic with occasional bursts.
        let base = h % 1_000_000; // up to ~1 MB/min
        if h.is_multiple_of(16) {
            base * 20 // burst
        } else {
            base
        }
    }

    /// The device's cumulative byte counter as read at time `t`, or `None`
    /// when the device is unreachable. Strictly monotone in `t`.
    pub fn poll_counter(&self, dev: DeviceId, t: Micros) -> Option<u64> {
        if !self.reachable(dev, t) {
            return None;
        }
        if t < self.epoch {
            return Some(0);
        }
        let full_minutes = (t - self.epoch) / MINUTE;
        let mut total: u64 = 0;
        for m in 0..full_minutes {
            total += self.rate_in_minute(dev, m);
        }
        // Partial current minute, linearly interpolated.
        let partial = (t - self.epoch) % MINUTE;
        total += self.rate_in_minute(dev, full_minutes) * partial as u64 / MINUTE as u64;
        Some(total)
    }

    // --------------------------------------------------------------- events

    fn event_at(&self, dev: DeviceId, id: i64) -> DeviceEvent {
        let h = mix(self.dev_seed(dev) ^ 0xE0E0 ^ id as u64);
        // Per-device constant base gap (5–64 s) plus per-event jitter
        // bounded below half the gap, keeping timestamps strictly
        // increasing in the event id.
        let base_gap = 5 * MICROS_PER_SEC + (self.dev_seed(dev) % 60) as i64 * MICROS_PER_SEC;
        let jitter = (h % (base_gap / 2) as u64) as i64;
        let ts = self.epoch + id * base_gap + jitter;
        let kind = match h % 4 {
            0 => "dhcp_lease",
            1 => "assoc",
            2 => "disassoc",
            _ => "8021x_auth",
        };
        DeviceEvent {
            id,
            ts,
            kind,
            detail: format!("client-{:x}", h & 0xFFFF),
        }
    }

    /// Number of events the device has generated by time `t`.
    fn event_count_at(&self, dev: DeviceId, t: Micros) -> i64 {
        if t <= self.epoch {
            return 0;
        }
        // Events are strictly increasing in ts; binary search the count.
        let mut lo = 0i64;
        let mut hi = ((t - self.epoch) / MICROS_PER_SEC).max(1); // ≥1 event/sec never happens
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.event_at(dev, mid).ts < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Fetches events newer than `after_id` (pass `None` for "from the
    /// oldest retained event", which is how a grabber resyncs after losing
    /// its cache, §4.2). Returns `None` when unreachable.
    pub fn poll_events(
        &self,
        dev: DeviceId,
        after_id: Option<i64>,
        t: Micros,
        max: usize,
    ) -> Option<Vec<DeviceEvent>> {
        if !self.reachable(dev, t) {
            return None;
        }
        let count = self.event_count_at(dev, t);
        let oldest_retained = (count - self.event_history as i64).max(0);
        let start = match after_id {
            Some(id) => (id + 1).max(oldest_retained),
            None => oldest_retained,
        };
        Some(
            (start..count)
                .take(max)
                .map(|id| self.event_at(dev, id))
                .collect(),
        )
    }

    /// The oldest event the device still retains at `t` (what a device
    /// answers when polled without a previous event id).
    pub fn oldest_event(&self, dev: DeviceId, t: Micros) -> Option<DeviceEvent> {
        let count = self.event_count_at(dev, t);
        if count == 0 {
            return None;
        }
        let oldest = (count - self.event_history as i64).max(0);
        Some(self.event_at(dev, oldest))
    }

    // --------------------------------------------------------------- motion

    /// Coalesced motion events for camera `dev` in `[from, to)`: roughly
    /// one event per busy second, deterministic.
    pub fn poll_motion(&self, dev: DeviceId, from: Micros, to: Micros) -> Vec<MotionEvent> {
        let mut out = Vec::new();
        let s0 = from.div_euclid(MICROS_PER_SEC);
        let s1 = to.div_euclid(MICROS_PER_SEC);
        for s in s0..s1 {
            let h = mix(self.dev_seed(dev) ^ 0xCA3E ^ s as u64);
            // ~25% of seconds contain motion.
            if !h.is_multiple_of(4) {
                continue;
            }
            let row = ((h >> 8) % 9) as u8; // 34 rows of blocks / 4 per cell
            let col = ((h >> 16) % 10) as u8; // 60 cols / 6 per cell
            let mask = (h >> 24) as u32 & 0x00FF_FFFF;
            out.push(MotionEvent {
                ts: s * MICROS_PER_SEC + (h % 1000) as i64,
                duration_ms: 200 + (h % 4800) as u32,
                word: MotionEvent::encode_word(row, col, mask | 1),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPOCH: Micros = 1_700_000_000_000_000;

    fn fleet() -> Fleet {
        Fleet::new(EPOCH, 2, 3, 42)
    }

    #[test]
    fn counters_are_monotone_and_deterministic() {
        let f = fleet();
        let dev = f.devices()[0];
        let mut prev = 0;
        for i in 0..100 {
            let t = EPOCH + i * MINUTE / 3;
            let c = f.poll_counter(dev, t).unwrap();
            assert!(c >= prev, "counter went backwards at {i}");
            prev = c;
        }
        // Re-polling the same instant gives the same answer (recoverable).
        assert_eq!(
            f.poll_counter(dev, EPOCH + 55 * MINUTE),
            f.poll_counter(dev, EPOCH + 55 * MINUTE)
        );
    }

    #[test]
    fn outages_block_polls() {
        let mut f = fleet();
        let dev = f.devices()[0];
        f.add_outage(dev, EPOCH + MINUTE, EPOCH + 3 * MINUTE);
        assert!(f.poll_counter(dev, EPOCH).is_some());
        assert!(f.poll_counter(dev, EPOCH + 2 * MINUTE).is_none());
        assert!(f.poll_counter(dev, EPOCH + 3 * MINUTE).is_some());
        // Other devices are unaffected.
        assert!(f.poll_counter(f.devices()[1], EPOCH + 2 * MINUTE).is_some());
    }

    #[test]
    fn events_have_monotone_ids_and_timestamps() {
        let f = fleet();
        let dev = f.devices()[0];
        let t = EPOCH + 3600 * MICROS_PER_SEC;
        let events = f.poll_events(dev, None, t, 10_000).unwrap();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert_eq!(w[1].id, w[0].id + 1);
            assert!(w[1].ts > w[0].ts, "timestamps must be unique/increasing");
        }
        assert!(events.last().unwrap().ts < t);
    }

    #[test]
    fn events_since_id_resume_exactly() {
        let f = fleet();
        let dev = f.devices()[0];
        let t = EPOCH + 3600 * MICROS_PER_SEC;
        let all = f.poll_events(dev, None, t, 10_000).unwrap();
        let mid = all[all.len() / 2].id;
        let rest = f.poll_events(dev, Some(mid), t, 10_000).unwrap();
        assert_eq!(rest[0].id, mid + 1);
        assert_eq!(rest.len(), all.len() - (all.len() / 2) - 1);
    }

    #[test]
    fn event_history_is_bounded() {
        let mut f = fleet();
        f.event_history = 10;
        let dev = f.devices()[0];
        let t = EPOCH + 48 * 3600 * MICROS_PER_SEC;
        let events = f.poll_events(dev, None, t, 10_000).unwrap();
        assert_eq!(events.len(), 10);
        assert_eq!(f.oldest_event(dev, t).unwrap().id, events[0].id);
    }

    #[test]
    fn motion_words_encode_cells() {
        let w = MotionEvent::encode_word(3, 7, 0xABCDEF);
        let e = MotionEvent {
            ts: 0,
            duration_ms: 100,
            word: w,
        };
        assert_eq!(e.row(), 3);
        assert_eq!(e.col(), 7);
        assert_eq!(e.mask(), 0xABCDEF);
    }

    #[test]
    fn motion_stream_is_deterministic_and_in_range() {
        let f = fleet();
        let cam = f.devices()[0];
        let a = f.poll_motion(cam, EPOCH, EPOCH + 600 * MICROS_PER_SEC);
        let b = f.poll_motion(cam, EPOCH, EPOCH + 600 * MICROS_PER_SEC);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for e in &a {
            assert!(e.ts >= EPOCH && e.ts < EPOCH + 600 * MICROS_PER_SEC);
            assert!(e.row() < 9 && e.col() < 10);
            assert!(e.mask() != 0);
        }
        // Sub-ranges re-read identically (recoverability for MotionGrabber).
        let sub = f.poll_motion(
            cam,
            EPOCH + 100 * MICROS_PER_SEC,
            EPOCH + 200 * MICROS_PER_SEC,
        );
        let expect: Vec<_> = a
            .iter()
            .filter(|e| e.ts >= EPOCH + 100 * MICROS_PER_SEC && e.ts < EPOCH + 200 * MICROS_PER_SEC)
            .copied()
            .collect();
        assert_eq!(sub, expect);
    }
}
