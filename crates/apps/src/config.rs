//! A small in-memory configuration store.
//!
//! Stands in for the PostgreSQL side of a shard (§2.1): device-to-network
//! mapping, user-defined tags on devices, and client operating-system
//! labels — the dimension tables aggregators join LittleTable data against
//! (§4.1.2).

use crate::device::DeviceId;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Shared configuration state.
#[derive(Debug, Default)]
pub struct ConfigStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    tags: HashMap<DeviceId, Vec<String>>,
    client_os: HashMap<i64, String>,
}

impl ConfigStore {
    /// Creates an empty store.
    pub fn new() -> ConfigStore {
        ConfigStore::default()
    }

    /// Adds a user-defined tag to a device (e.g. "classrooms").
    pub fn tag_device(&self, dev: DeviceId, tag: &str) {
        let mut inner = self.inner.write();
        let tags = inner.tags.entry(dev).or_default();
        if !tags.iter().any(|t| t == tag) {
            tags.push(tag.to_string());
        }
    }

    /// The tags on a device.
    pub fn device_tags(&self, dev: DeviceId) -> Vec<String> {
        self.inner
            .read()
            .tags
            .get(&dev)
            .cloned()
            .unwrap_or_default()
    }

    /// Records a client's likely operating system.
    pub fn set_client_os(&self, client: i64, os: &str) {
        self.inner.write().client_os.insert(client, os.to_string());
    }

    /// A client's likely operating system, defaulting to "unknown".
    pub fn client_os(&self, client: i64) -> String {
        self.inner
            .read()
            .client_os
            .get(&client)
            .cloned()
            .unwrap_or_else(|| "unknown".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_accumulate_without_duplicates() {
        let c = ConfigStore::new();
        let dev = DeviceId {
            network: 1,
            device: 2,
        };
        c.tag_device(dev, "classrooms");
        c.tag_device(dev, "classrooms");
        c.tag_device(dev, "east-wing");
        assert_eq!(c.device_tags(dev), vec!["classrooms", "east-wing"]);
        assert!(c
            .device_tags(DeviceId {
                network: 9,
                device: 9
            })
            .is_empty());
    }

    #[test]
    fn client_os_defaults_to_unknown() {
        let c = ConfigStore::new();
        c.set_client_os(7, "macOS");
        assert_eq!(c.client_os(7), "macOS");
        assert_eq!(c.client_os(8), "unknown");
    }
}
