//! Aggregators and rollups (§4.1.2).
//!
//! Background processes read a source table, compute per-period summaries,
//! and write them to a much smaller destination table so Dashboard can
//! render month-long graphs from a few thousand rows instead of millions.
//!
//! Aggregators cope with LittleTable's weak durability in two ways the
//! paper spells out:
//!
//! * Because rows flush in insertion order, finding *any* destination row
//!   for a period proves all earlier periods are complete; aggregators
//!   locate the most recent destination row by querying **exponentially
//!   longer lookbacks** and then binary-searching ([`latest_row_ts`]).
//! * They never aggregate source data that might not be on disk yet,
//!   assuming (configurably) that data older than 20 minutes is durable.

use crate::config::ConfigStore;
use crate::device::DeviceId;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::Table;
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Query, Result};
use littletable_hll::HyperLogLog;
use littletable_vfs::Micros;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Finds the timestamp of the most recent row in `table` (any key), the
/// way aggregators must: LittleTable has no built-in "latest row" call, so
/// query exponentially longer periods back from `now` until some row
/// appears, then binary-search for the most recent populated instant
/// (§4.1.2).
pub fn latest_row_ts(table: &Table, now: Micros) -> Result<Option<Micros>> {
    let mut span = 60 * 1_000_000i64; // start with one minute
    let mut hit: Option<Micros> = None;
    loop {
        let q = Query::all().with_ts_min(now.saturating_sub(span), true);
        let mut cur = table.query(&q)?;
        let mut max_ts: Option<Micros> = None;
        while let Some(row) = cur.next_row()? {
            let ts = row.ts(&table.schema())?;
            if max_ts.is_none_or(|m| ts > m) {
                max_ts = Some(ts);
            }
        }
        if let Some(ts) = max_ts {
            hit = Some(ts);
            break;
        }
        if now.saturating_sub(span) == i64::MIN || span > 400 * 7 * 86_400 * 1_000_000 {
            break; // beyond any retention
        }
        span = span.saturating_mul(2);
    }
    Ok(hit)
}

/// Schema of the per-network usage rollup: `(network, ts)` → total bytes
/// over a fixed bucket ending at `ts`.
pub fn rollup_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::F64),
        ],
        &["network", "ts"],
    )
    .expect("rollup schema is valid")
}

/// Rolls up per-device usage rows into per-network totals over fixed
/// buckets (the paper's example compresses one row per device per minute
/// into one row per network per ten minutes).
pub struct UsageRollup {
    source: Arc<Table>,
    dest: Arc<Table>,
    /// Bucket width (10 minutes in the paper's example).
    pub bucket: Micros,
    /// Only aggregate source rows older than this, assuming they have
    /// reached disk (20 minutes in §4.1.2).
    pub durability_lag: Micros,
    /// Next bucket start to process.
    cursor: Option<Micros>,
}

impl UsageRollup {
    /// Creates a rollup from a [`crate::usage::usage_schema`] table into a
    /// [`rollup_schema`] table.
    pub fn new(
        source: Arc<Table>,
        dest: Arc<Table>,
        bucket: Micros,
        durability_lag: Micros,
    ) -> Self {
        UsageRollup {
            source,
            dest,
            bucket,
            durability_lag,
            cursor: None,
        }
    }

    /// Recovers the processing cursor after a restart: the bucket after
    /// the most recent destination row, re-processing that row's own
    /// bucket first since it may be incomplete (§4.1.2 — "re-process the
    /// period for the row it found and all subsequent periods").
    pub fn recover(&mut self, now: Micros) -> Result<()> {
        self.cursor = match latest_row_ts(&self.dest, now)? {
            // Destination rows are stamped with their bucket's *end*.
            Some(ts) => Some(ts - self.bucket),
            None => None,
        };
        Ok(())
    }

    /// Processes every complete, durably-sourced bucket up to `now`.
    /// Returns the number of buckets written.
    pub fn run_once(&mut self, now: Micros) -> Result<usize> {
        let safe_end = now - self.durability_lag;
        let mut start = match self.cursor {
            Some(c) => c,
            None => match source_min_ts(&self.source)? {
                Some(ts) => ts.div_euclid(self.bucket) * self.bucket,
                None => return Ok(0),
            },
        };
        let mut buckets = 0;
        while start + self.bucket <= safe_end {
            let end = start + self.bucket;
            let q = Query::all().with_ts_range(start, end);
            let mut totals: BTreeMap<i64, f64> = BTreeMap::new();
            let mut cur = self.source.query(&q)?;
            while let Some(row) = cur.next_row()? {
                let Value::I64(network) = row.values[0] else {
                    continue;
                };
                let (Value::F64(rate), Value::Timestamp(ts), Value::Timestamp(prev)) =
                    (&row.values[5], &row.values[2], &row.values[3])
                else {
                    continue;
                };
                *totals.entry(network).or_insert(0.0) += rate * ((ts - prev) as f64 / 1_000_000.0);
            }
            // One destination row per network, keyed by bucket end; rows
            // insert in ascending key order, hitting the fast uniqueness
            // path (§3.4.4).
            let rows: Vec<Vec<Value>> = totals
                .into_iter()
                .map(|(network, bytes)| {
                    vec![
                        Value::I64(network),
                        Value::Timestamp(end),
                        Value::F64(bytes),
                    ]
                })
                .collect();
            if !rows.is_empty() {
                self.dest.insert(rows)?;
            }
            buckets += 1;
            start = end;
            self.cursor = Some(start);
        }
        Ok(buckets)
    }
}

fn source_min_ts(table: &Table) -> Result<Option<Micros>> {
    let mut cur = table.query(&Query::all())?;
    let schema = table.schema();
    let mut min: Option<Micros> = None;
    while let Some(row) = cur.next_row()? {
        let ts = row.ts(&schema)?;
        if min.is_none_or(|m| ts < m) {
            min = Some(ts);
        }
    }
    Ok(min)
}

/// Schema for distinct-client sketches: `(network, ts)` → serialized
/// HyperLogLog of the clients seen in the bucket ending at `ts` (§4.1.2).
pub fn client_sketch_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("network", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("sketch", ColumnType::Blob),
        ],
        &["network", "ts"],
    )
    .expect("sketch schema is valid")
}

/// Writes one HyperLogLog row per (network, bucket) from client sightings.
///
/// `sightings` is any iterator of `(network, client_id)` pairs observed in
/// the bucket ending at `bucket_end`.
pub fn write_client_sketches(
    dest: &Table,
    bucket_end: Micros,
    sightings: impl IntoIterator<Item = (i64, i64)>,
) -> Result<usize> {
    let mut per_network: BTreeMap<i64, HyperLogLog> = BTreeMap::new();
    for (network, client) in sightings {
        per_network
            .entry(network)
            .or_insert_with(HyperLogLog::default_precision)
            .add_bytes(&client.to_le_bytes());
    }
    let rows: Vec<Vec<Value>> = per_network
        .into_iter()
        .map(|(network, hll)| {
            vec![
                Value::I64(network),
                Value::Timestamp(bucket_end),
                Value::Blob(hll.to_bytes()),
            ]
        })
        .collect();
    let n = rows.len();
    if n > 0 {
        dest.insert(rows)?;
    }
    Ok(n)
}

/// Estimates distinct clients on `network` over `[from, to)` by unioning
/// the stored sketches — the fixed-size-union property that makes
/// HyperLogLog the right tool here.
pub fn estimate_clients(table: &Table, network: i64, from: Micros, to: Micros) -> Result<f64> {
    let q = Query::all()
        .with_prefix(vec![Value::I64(network)])
        .with_ts_range(from, to);
    let mut cur = table.query(&q)?;
    let mut merged: Option<HyperLogLog> = None;
    while let Some(row) = cur.next_row()? {
        let Value::Blob(bytes) = &row.values[2] else {
            continue;
        };
        let Some(hll) = HyperLogLog::from_bytes(bytes) else {
            continue;
        };
        match &mut merged {
            None => merged = Some(hll),
            Some(m) => m.merge(&hll),
        }
    }
    Ok(merged.map(|m| m.estimate()).unwrap_or(0.0))
}

/// Schema for tag-keyed usage: `(tag, ts)` → bytes, joining LittleTable
/// usage against the configuration store's user-defined device tags
/// (§4.1.2's school example).
pub fn tag_usage_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("tag", ColumnType::Str),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::F64),
        ],
        &["tag", "ts"],
    )
    .expect("tag schema is valid")
}

/// Aggregates usage per tag over one bucket, joining against the config
/// store's tags.
pub fn rollup_usage_by_tag(
    source: &Table,
    dest: &Table,
    config: &ConfigStore,
    bucket_start: Micros,
    bucket_end: Micros,
) -> Result<usize> {
    let q = Query::all().with_ts_range(bucket_start, bucket_end);
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut cur = source.query(&q)?;
    while let Some(row) = cur.next_row()? {
        let (Value::I64(network), Value::I64(device)) = (&row.values[0], &row.values[1]) else {
            continue;
        };
        let (Value::F64(rate), Value::Timestamp(ts), Value::Timestamp(prev)) =
            (&row.values[5], &row.values[2], &row.values[3])
        else {
            continue;
        };
        let bytes = rate * ((ts - prev) as f64 / 1_000_000.0);
        for tag in config.device_tags(DeviceId {
            network: *network,
            device: *device,
        }) {
            *totals.entry(tag).or_insert(0.0) += bytes;
        }
    }
    let rows: Vec<Vec<Value>> = totals
        .into_iter()
        .map(|(tag, bytes)| {
            vec![
                Value::Str(tag),
                Value::Timestamp(bucket_end),
                Value::F64(bytes),
            ]
        })
        .collect();
    let n = rows.len();
    if n > 0 {
        dest.insert(rows)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Fleet, MINUTE};
    use crate::usage::{usage_schema, UsageGrabber};
    use littletable_core::{Db, Options};
    use littletable_vfs::Clock as _;
    use littletable_vfs::{SimClock, SimVfs};

    const EPOCH: Micros = 1_700_000_000_000_000;

    fn setup() -> (Db, SimClock, Fleet, Arc<Table>) {
        let clock = SimClock::new(EPOCH);
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(clock.clone()),
            Options::small_for_tests(),
        )
        .unwrap();
        let source = db.create_table("usage", usage_schema(), None).unwrap();
        let fleet = Fleet::new(EPOCH, 2, 2, 3);
        (db, clock, fleet, source)
    }

    fn fill_usage(clock: &SimClock, fleet: &Fleet, table: &Arc<Table>, minutes: i64) {
        let mut g = UsageGrabber::new(table.clone(), 3600 * 1_000_000);
        for _ in 0..minutes {
            g.poll_all(fleet, clock.now_micros()).unwrap();
            clock.advance(MINUTE);
        }
    }

    #[test]
    fn rollup_compresses_and_totals_match() {
        let (db, clock, fleet, source) = setup();
        fill_usage(&clock, &fleet, &source, 65);
        let dest = db.create_table("rollup", rollup_schema(), None).unwrap();
        let mut r = UsageRollup::new(source.clone(), dest.clone(), 10 * MINUTE, 0);
        let buckets = r.run_once(clock.now_micros()).unwrap();
        assert!(buckets >= 6, "buckets = {buckets}");
        let rollup_rows = dest.query_all(&Query::all()).unwrap();
        let source_rows = source.query_all(&Query::all()).unwrap();
        assert!(rollup_rows.len() < source_rows.len() / 2);
        // Total bytes across the rollup equals total across the source.
        let total_rollup: f64 = rollup_rows
            .iter()
            .map(|r| match r.values[2] {
                Value::F64(b) => b,
                _ => 0.0,
            })
            .sum();
        // The first bucket is epoch-aligned to the bucket width starting
        // from the earliest source row.
        let bucket0 = (EPOCH + MINUTE).div_euclid(10 * MINUTE) * (10 * MINUTE);
        let total_source: f64 = source_rows
            .iter()
            .filter(|r| {
                let Value::Timestamp(ts) = r.values[2] else {
                    return false;
                };
                // Only rows inside complete buckets.
                ts >= bucket0 && ts < bucket0 + (buckets as i64) * 10 * MINUTE
            })
            .map(|r| {
                let (Value::F64(rate), Value::Timestamp(ts), Value::Timestamp(prev)) =
                    (&r.values[5], &r.values[2], &r.values[3])
                else {
                    return 0.0;
                };
                rate * ((ts - prev) as f64 / 1_000_000.0)
            })
            .sum();
        assert!(
            (total_rollup - total_source).abs() / total_source.max(1.0) < 1e-9,
            "{total_rollup} vs {total_source}"
        );
    }

    #[test]
    fn durability_lag_is_respected() {
        let (db, clock, fleet, source) = setup();
        fill_usage(&clock, &fleet, &source, 30);
        let dest = db.create_table("rollup", rollup_schema(), None).unwrap();
        let lag = 20 * MINUTE;
        let mut r = UsageRollup::new(source, dest.clone(), 10 * MINUTE, lag);
        r.run_once(clock.now_micros()).unwrap();
        let schema = dest.schema();
        for row in dest.query_all(&Query::all()).unwrap() {
            let end = row.ts(&schema).unwrap();
            assert!(end <= clock.now_micros() - lag);
        }
    }

    #[test]
    fn recovery_resumes_without_holes_or_double_rows() {
        let (db, clock, fleet, source) = setup();
        fill_usage(&clock, &fleet, &source, 35);
        let dest = db.create_table("rollup", rollup_schema(), None).unwrap();
        let mut r = UsageRollup::new(source.clone(), dest.clone(), 10 * MINUTE, 0);
        r.run_once(clock.now_micros()).unwrap();
        let mid_count = dest.query_all(&Query::all()).unwrap().len();
        assert!(mid_count > 0);
        // More data arrives; a *new* aggregator (post-crash) recovers.
        fill_usage(&clock, &fleet, &source, 25);
        let mut r2 = UsageRollup::new(source, dest.clone(), 10 * MINUTE, 0);
        r2.recover(clock.now_micros()).unwrap();
        r2.run_once(clock.now_micros()).unwrap();
        // The re-processed bucket's rows are duplicates (same key) and are
        // skipped by uniqueness; every bucket appears exactly once per
        // network.
        let rows = dest.query_all(&Query::all()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &rows {
            let key = (row.values[0].to_string(), row.values[1].to_string());
            assert!(seen.insert(key), "duplicate bucket row {row:?}");
        }
        assert!(rows.len() > mid_count);
    }

    #[test]
    fn exponential_lookback_finds_latest() {
        let (db, clock, _, _) = setup();
        let dest = db.create_table("d", rollup_schema(), None).unwrap();
        assert_eq!(latest_row_ts(&dest, clock.now_micros()).unwrap(), None);
        // A row far in the past (8 days).
        let old_ts = EPOCH - 8 * 86_400 * 1_000_000;
        dest.insert(vec![vec![
            Value::I64(1),
            Value::Timestamp(old_ts),
            Value::F64(1.0),
        ]])
        .unwrap();
        assert_eq!(
            latest_row_ts(&dest, clock.now_micros()).unwrap(),
            Some(old_ts)
        );
    }

    #[test]
    fn client_sketches_union_across_buckets() {
        let (db, clock, _, _) = setup();
        let dest = db
            .create_table("clients", client_sketch_schema(), None)
            .unwrap();
        // Bucket 1: clients 0..500 on network 1; bucket 2: 250..750.
        write_client_sketches(&dest, clock.now_micros(), (0..500).map(|c| (1i64, c))).unwrap();
        write_client_sketches(
            &dest,
            clock.now_micros() + 10 * MINUTE,
            (250..750).map(|c| (1i64, c)),
        )
        .unwrap();
        let est =
            estimate_clients(&dest, 1, EPOCH - MINUTE, clock.now_micros() + 11 * MINUTE).unwrap();
        assert!((est - 750.0).abs() / 750.0 < 0.1, "est = {est}");
        // An unknown network estimates zero.
        assert_eq!(
            estimate_clients(&dest, 9, EPOCH, EPOCH + MINUTE).unwrap(),
            0.0
        );
    }

    #[test]
    fn tag_rollup_joins_config() {
        let (db, clock, fleet, source) = setup();
        fill_usage(&clock, &fleet, &source, 12);
        let dest = db.create_table("bytag", tag_usage_schema(), None).unwrap();
        let config = ConfigStore::new();
        config.tag_device(fleet.devices()[0], "classrooms");
        config.tag_device(fleet.devices()[1], "classrooms");
        config.tag_device(fleet.devices()[1], "east");
        let n = rollup_usage_by_tag(&source, &dest, &config, EPOCH, clock.now_micros()).unwrap();
        assert_eq!(n, 2); // "classrooms" and "east"
        let rows = dest.query_all(&Query::all()).unwrap();
        let classrooms: f64 = rows
            .iter()
            .find(|r| r.values[0] == Value::Str("classrooms".into()))
            .map(|r| match r.values[2] {
                Value::F64(b) => b,
                _ => 0.0,
            })
            .unwrap();
        let east: f64 = rows
            .iter()
            .find(|r| r.values[0] == Value::Str("east".into()))
            .map(|r| match r.values[2] {
                Value::F64(b) => b,
                _ => 0.0,
            })
            .unwrap();
        assert!(classrooms > east, "classrooms covers two devices");
    }
}
