//! Criterion microbenchmarks over the engine's hot paths, in real time on
//! the host (complementing the virtual-time figure harness): key
//! encoding, block compression, block search, memtable and engine
//! inserts, scans, HyperLogLog, and SQL parsing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use littletable_bench::env::{bench_row, bench_row_sequential, bench_schema, XorShift64};
use littletable_core::keyenc::encode_prefix;
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Db, Options, Query};
use littletable_vfs::{SimClock, SimVfs};
use std::sync::Arc;

fn instant_db() -> Db {
    Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(1_700_000_000_000_000)),
        Options::default(),
    )
    .unwrap()
}

fn bench_key_encoding(c: &mut Criterion) {
    let types = [ColumnType::Str, ColumnType::I64, ColumnType::Timestamp];
    let values = vec![
        Value::Str("network-000123".into()),
        Value::I64(456_789),
        Value::Timestamp(1_700_000_000_000_000),
    ];
    c.bench_function("keyenc/encode_3col", |b| {
        b.iter(|| encode_prefix(std::hint::black_box(&values), &types).unwrap())
    });
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    // Telemetry-like block: repetitive structure.
    let telemetry: Vec<u8> = (0..64 * 1024u32).map(|i| ((i / 97) % 251) as u8).collect();
    let mut rng = XorShift64::new(5);
    let mut random = vec![0u8; 64 * 1024];
    rng.fill(&mut random);
    for (name, data) in [("telemetry_64k", &telemetry), ("random_64k", &random)] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_function(format!("compress/{name}"), |b| {
            b.iter(|| littletable_compress::compress(std::hint::black_box(data)))
        });
        let compressed = littletable_compress::compress(data);
        g.bench_function(format!("decompress/{name}"), |b| {
            b.iter(|| {
                littletable_compress::decompress(std::hint::black_box(&compressed), data.len())
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_block_search(c: &mut Criterion) {
    let mut builder = littletable_core::block::BlockBuilder::new();
    for i in 0..500u32 {
        builder.add(format!("key-{i:06}").as_bytes(), &[0u8; 100]);
    }
    let block = littletable_core::block::Block::parse(builder.finish()).unwrap();
    c.bench_function("block/seek_ge_500rows", |b| {
        b.iter(|| block.seek_ge(std::hint::black_box(b"key-000250")).unwrap())
    });
}

fn bench_engine_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_insert");
    for &batch in &[32usize, 512] {
        g.throughput(Throughput::Bytes((batch * 128) as u64));
        g.bench_function(format!("batch_{batch}x128B"), |b| {
            let db = instant_db();
            let table = db.create_table("t", bench_schema(), None).unwrap();
            let mut rng = XorShift64::new(1);
            let mut seq = 0u64;
            let mut ts = 1_700_000_000_000_000i64;
            b.iter_batched(
                || {
                    let rows: Vec<_> = (0..batch)
                        .map(|_| {
                            seq += 1;
                            ts += 1;
                            bench_row(&mut rng, seq, ts, 128)
                        })
                        .collect();
                    rows
                },
                |rows| {
                    table.insert(rows).unwrap();
                    table.flush_next_group().unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_query_scan(c: &mut Criterion) {
    let db = instant_db();
    let table = db.create_table("t", bench_schema(), None).unwrap();
    let mut rng = XorShift64::new(2);
    let mut batch = Vec::new();
    for seq in 1..=100_000u64 {
        batch.push(bench_row(
            &mut rng,
            seq,
            1_700_000_000_000_000 + seq as i64,
            128,
        ));
        if batch.len() == 1024 {
            table.insert(std::mem::take(&mut batch)).unwrap();
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    let mut g = c.benchmark_group("query");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("full_scan_100k_rows", |b| {
        b.iter(|| {
            let mut cur = table.query(&Query::all()).unwrap();
            let mut n = 0u64;
            while cur.next_row().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 100_000);
        })
    });
    g.finish();
}

fn bench_block_cache(c: &mut Criterion) {
    // Point reads against one merged on-disk tablet, cold (cache
    // disabled: every read decompresses) versus warm (default cache:
    // repeats return the cached Arc), plus a full scan running against a
    // warm cache to show the cursor path's hit behaviour.
    let build = |cache_bytes: usize| {
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            Options {
                block_cache_bytes: cache_bytes,
                ..Options::default()
            },
        )
        .unwrap();
        let table = db.create_table("t", bench_schema(), None).unwrap();
        let mut rng = XorShift64::new(3);
        let mut batch = Vec::new();
        for seq in 1..=50_000u64 {
            batch.push(bench_row_sequential(
                &mut rng,
                seq,
                1_700_000_000_000_000 + seq as i64,
                128,
            ));
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            table.insert(batch).unwrap();
        }
        table.flush_all().unwrap();
        while table.run_merge_once(db.now()).unwrap() {}
        (db, table)
    };
    let point_query = |table: &littletable_core::Table, rng: &mut XorShift64| {
        let seq = rng.next_u64() % 50_000 + 1;
        let q = Query::all().with_prefix(vec![Value::I64(seq as i64)]);
        let rows = table.query_all(&q).unwrap();
        assert_eq!(rows.len(), 1);
        std::hint::black_box(rows)
    };
    let mut g = c.benchmark_group("block_cache");
    g.bench_function("point_read_cold_uncached", |b| {
        let (_db, table) = build(0);
        let mut rng = XorShift64::new(7);
        b.iter(|| point_query(&table, &mut rng))
    });
    g.bench_function("point_read_warm_cached", |b| {
        let (_db, table) = build(64 << 20);
        let mut rng = XorShift64::new(7);
        // Warm every block once so the measured loop is all hits.
        let mut warm = XorShift64::new(7);
        for _ in 0..50_000 {
            point_query(&table, &mut warm);
        }
        b.iter(|| point_query(&table, &mut rng))
    });
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("full_scan_warm_cache", |b| {
        let (_db, table) = build(64 << 20);
        b.iter(|| {
            let mut cur = table.query(&Query::all()).unwrap();
            let mut n = 0u64;
            while cur.next_row().unwrap().is_some() {
                n += 1;
            }
            assert_eq!(n, 50_000);
        })
    });
    g.finish();
}

fn bench_scan_formats(c: &mut Criterion) {
    // Row-v2 vs columnar-v3 block layout on the same flushed telemetry
    // data: full cursor scans and aggregate pushdown (SUM needs the
    // value column; COUNT/MIN/MAX folds footer statistics without
    // touching block bytes on v3).
    use littletable_core::block::BlockFormat;
    use littletable_core::table::{PushdownRequest, ScanUnit};
    use littletable_core::value::ColumnType;

    const ROWS: u64 = 50_000;
    let build = |format: BlockFormat| {
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            Options {
                block_format: format,
                ..Options::default()
            },
        )
        .unwrap();
        let schema = littletable_core::schema::Schema::new(
            vec![
                littletable_core::schema::ColumnDef::new("device", ColumnType::I64),
                littletable_core::schema::ColumnDef::new("ts", ColumnType::Timestamp),
                littletable_core::schema::ColumnDef::new("bytes", ColumnType::I64),
            ],
            &["device", "ts"],
        )
        .unwrap();
        let table = db.create_table("t", schema, None).unwrap();
        let mut batch = Vec::new();
        for i in 0..ROWS {
            batch.push(vec![
                Value::I64((i / 1000) as i64),
                Value::Timestamp(1_700_000_000_000_000 + (i % 1000) as i64),
                Value::I64(i as i64 * 37),
            ]);
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            table.insert(batch).unwrap();
        }
        table.flush_all().unwrap();
        while table.run_merge_once(db.now()).unwrap() {}
        (db, table)
    };
    let mut g = c.benchmark_group("scan_formats");
    g.throughput(Throughput::Elements(ROWS));
    for (label, format) in [
        ("row_v2", BlockFormat::Row),
        ("col_v3", BlockFormat::Columnar),
    ] {
        let (_db, table) = build(format);
        g.bench_function(format!("full_scan/{label}"), |b| {
            b.iter(|| {
                let mut cur = table.query(&Query::all()).unwrap();
                let mut n = 0u64;
                while cur.next_row().unwrap().is_some() {
                    n += 1;
                }
                assert_eq!(n, ROWS);
            })
        });
        g.bench_function(format!("agg_sum_pushdown/{label}"), |b| {
            let req = PushdownRequest {
                query: Query::all(),
                predicates: Vec::new(),
                stats_cols: None,
            };
            b.iter(|| {
                let mut sum = 0i64;
                table
                    .pushdown_scan(&req, &mut |unit| {
                        match unit {
                            ScanUnit::Stats { .. } => unreachable!(),
                            ScanUnit::Block { block, .. } => {
                                let col = block.column(2).unwrap();
                                for ri in 0..block.len() {
                                    if let Value::I64(v) = col.value(ri) {
                                        sum += v;
                                    }
                                }
                            }
                            ScanUnit::Rows(rows) => {
                                for row in rows {
                                    if let Value::I64(v) = row.values[2] {
                                        sum += v;
                                    }
                                }
                            }
                        }
                        Ok(())
                    })
                    .unwrap();
                std::hint::black_box(sum)
            })
        });
        g.bench_function(format!("agg_count_stats/{label}"), |b| {
            let req = PushdownRequest {
                query: Query::all(),
                predicates: Vec::new(),
                stats_cols: Some(vec![2]),
            };
            b.iter(|| {
                let mut n = 0u64;
                table
                    .pushdown_scan(&req, &mut |unit| {
                        match unit {
                            ScanUnit::Stats { rows, .. } => n += rows,
                            ScanUnit::Block { block, .. } => n += block.len() as u64,
                            ScanUnit::Rows(rows) => n += rows.len() as u64,
                        }
                        Ok(())
                    })
                    .unwrap();
                assert_eq!(n, ROWS);
            })
        });
    }
    g.finish();
}

fn bench_hll(c: &mut Criterion) {
    c.bench_function("hll/add_1000", |b| {
        b.iter(|| {
            let mut h = littletable_hll::HyperLogLog::default_precision();
            for i in 0..1000u64 {
                h.add_hash(std::hint::black_box(i).wrapping_mul(0x9E3779B97F4A7C15));
            }
            h.estimate()
        })
    });
}

fn bench_sql_parse(c: &mut Criterion) {
    let sql = "SELECT device, SUM(bytes), COUNT(*) FROM usage \
               WHERE network = 7 AND ts >= NOW() - INTERVAL '1w' \
               GROUP BY device ORDER BY network DESC LIMIT 100";
    c.bench_function("sql/parse_select", |b| {
        b.iter(|| littletable_sql::parse(std::hint::black_box(sql)).unwrap())
    });
}

fn bench_fault_hook(c: &mut Criterion) {
    // Cost of the fault-injection hook on the simulated VFS's hot write
    // path: flush with no plan installed (the plain op-count bump) vs a
    // plan whose rules never match (full decide() walk on every op).
    let mut g = c.benchmark_group("fault_hook");
    for (label, with_plan) in [("no_plan", false), ("armed_no_match", true)] {
        g.bench_function(format!("insert_flush_512/{label}"), |b| {
            let vfs = SimVfs::instant();
            if with_plan {
                vfs.set_fault_plan(
                    littletable_vfs::FaultPlan::new().rule(
                        littletable_vfs::FaultRule::new(littletable_vfs::FaultKind::Eio)
                            .at_op(u64::MAX)
                            .on_path("never-matches"),
                    ),
                );
            }
            let db = Db::open(
                Arc::new(vfs),
                Arc::new(SimClock::new(1_700_000_000_000_000)),
                Options::default(),
            )
            .unwrap();
            let table = db.create_table("t", bench_schema(), None).unwrap();
            let mut rng = XorShift64::new(3);
            let mut seq = 0u64;
            let mut ts = 1_700_000_000_000_000i64;
            b.iter_batched(
                || {
                    (0..512)
                        .map(|_| {
                            seq += 1;
                            ts += 1;
                            bench_row(&mut rng, seq, ts, 128)
                        })
                        .collect::<Vec<_>>()
                },
                |rows| {
                    table.insert(rows).unwrap();
                    table.flush_next_group().unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_catalog(c: &mut Criterion) {
    // Hot catalog resolution against a 64-table Db: the snapshot cell's
    // pinned `Db::table()` vs the `RwLock<HashMap>` design it replaced,
    // the presorted `list_tables()`, and one create/drop cycle (the
    // copy-on-write publish cost a catalog writer pays).
    let mut g = c.benchmark_group("catalog");
    let db = instant_db();
    let names: Vec<String> = (0..64).map(|i| format!("table{i:03}")).collect();
    for n in &names {
        db.create_table(n, bench_schema(), None).unwrap();
    }
    let locked = parking_lot::RwLock::new(
        names
            .iter()
            .map(|n| (n.clone(), db.table(n).unwrap()))
            .collect::<std::collections::HashMap<_, _>>(),
    );
    let mut i = 0usize;
    g.bench_function("table/snapshot", |b| {
        b.iter(|| {
            i += 1;
            db.table(std::hint::black_box(&names[i % names.len()]))
                .unwrap()
        })
    });
    let mut j = 0usize;
    g.bench_function("table/rwlock", |b| {
        b.iter(|| {
            j += 1;
            locked
                .read()
                .get(std::hint::black_box(names[j % names.len()].as_str()))
                .cloned()
                .unwrap()
        })
    });
    g.bench_function("list_tables", |b| b.iter(|| db.list_tables()));
    g.bench_function("ddl/create_drop", |b| {
        b.iter(|| {
            db.create_table("churn", bench_schema(), None).unwrap();
            db.drop_table("churn").unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_key_encoding,
    bench_compression,
    bench_block_search,
    bench_engine_insert,
    bench_query_scan,
    bench_block_cache,
    bench_scan_formats,
    bench_hll,
    bench_sql_parse,
    bench_fault_hook,
    bench_catalog
);
criterion_main!(benches);
