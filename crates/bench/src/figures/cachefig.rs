//! BENCH_cache: point-read latency and hit ratio vs. block-cache budget,
//! plus a tier-split sweep at a fixed joint budget.
//!
//! Not a figure from the paper — it characterises this implementation's
//! two-tier block cache (the §3.2 footer-caching idea extended to hot
//! data blocks, with a compressed lower tier). A merged tablet of
//! sequential keys is probed with uniform random point reads on the
//! simulated paper disk; the cache budget sweeps from 0 (the paper's
//! uncached read path) to enough for the whole tablet. A second sweep
//! holds the joint budget fixed and varies `compressed_cache_fraction`
//! over a working set ~2x the decompressed slice, comparing the
//! single-tier configuration (fraction 0) against two-tier splits.
//! Disk-model caches are cleared before each measured pass so only the
//! *engine's* cache can make repeats cheap.

use crate::env::{bench_row_sequential, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::value::Value;
use littletable_core::{Options, Query};
use littletable_vfs::DiskParams;

const ROW: usize = 128;

/// Builds one fully merged tablet of `rows` sequential keys.
fn build(env: &SimEnv, rows: u64) -> std::sync::Arc<littletable_core::Table> {
    let table = env
        .db
        .create_table("cache", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xCAC4E);
    let mut batch = Vec::with_capacity(1024);
    for seq in 1..=rows {
        batch.push(bench_row_sequential(
            &mut rng,
            seq,
            1_700_000_000_000_000 + seq as i64,
            ROW,
        ));
        if batch.len() == 1024 {
            table.insert(std::mem::take(&mut batch)).unwrap();
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(env.db.now()).unwrap() {}
    table
}

/// Mean virtual latency (ms) and cache hit ratio of `probes` uniform
/// random point reads with the given cache budget.
fn measure(budget: usize, rows: u64, probes: usize) -> (f64, f64) {
    let opts = Options {
        block_cache_bytes: budget,
        ..Options::default()
    };
    let env = SimEnv::new(DiskParams::paper_disk(), opts);
    let table = build(&env, rows);
    let mut rng = XorShift64::new(budget as u64 + 17);
    let probe = |rng: &mut XorShift64| {
        let seq = rng.next_u64() % rows + 1;
        let q = Query::all().with_prefix(vec![Value::I64(seq as i64)]);
        let rows = table.query_all(&q).unwrap();
        assert_eq!(rows.len(), 1);
    };
    // Warm pass: touch every cacheable block once.
    for _ in 0..probes {
        probe(&mut rng);
    }
    // Measured pass, against a cold disk but a warm engine cache.
    env.vfs.clear_caches();
    let before = table.stats().snapshot();
    let t0 = env.now();
    for _ in 0..probes {
        probe(&mut rng);
    }
    let mean_ms = (env.now() - t0) as f64 / 1e3 / probes as f64;
    let after = table.stats().snapshot();
    let hits = (after.cache_hits - before.cache_hits) as f64;
    let misses = (after.cache_misses - before.cache_misses) as f64;
    let ratio = if hits + misses == 0.0 {
        0.0
    } else {
        hits / (hits + misses)
    };
    (mean_ms, ratio)
}

/// Mean virtual latency (ms) and compressed-tier hit share of `probes`
/// point reads over the first `ws_rows` keys, at a fixed joint budget
/// split by `fraction`.
fn measure_split(
    total: usize,
    fraction: f64,
    rows: u64,
    ws_rows: u64,
    probes: usize,
) -> (f64, f64) {
    let opts = Options {
        block_cache_bytes: total,
        compressed_cache_fraction: fraction,
        // One shard: at these small sweep budgets, auto-sharding would
        // split the compressed slice below one 64 kB block per shard.
        block_cache_shards: 1,
        // This figure sweeps the *static* split; the adaptive tuner
        // would drift every point toward the same operating split.
        adaptive_cache_split: false,
        ..Options::default()
    };
    let env = SimEnv::new(DiskParams::paper_disk(), opts);
    let table = build(&env, rows);
    let mut rng = XorShift64::new((fraction * 1024.0) as u64 + 29);
    let probe = |rng: &mut XorShift64| {
        let seq = rng.next_u64() % ws_rows + 1;
        let q = Query::all().with_prefix(vec![Value::I64(seq as i64)]);
        let rows = table.query_all(&q).unwrap();
        assert_eq!(rows.len(), 1);
    };
    // Two warm rounds so every working-set block has passed through the
    // cache (and its overflow has settled into the compressed tier).
    for _ in 0..2 * probes {
        probe(&mut rng);
    }
    env.vfs.clear_caches();
    let before = table.stats().snapshot();
    let t0 = env.now();
    for _ in 0..probes {
        probe(&mut rng);
    }
    let mean_ms = (env.now() - t0) as f64 / 1e3 / probes as f64;
    let after = table.stats().snapshot();
    let hits = (after.cache_hits - before.cache_hits) as f64;
    let compressed = (after.cache_compressed_hits - before.cache_compressed_hits) as f64;
    let misses = (after.cache_misses - before.cache_misses) as f64;
    let total_lookups = hits + compressed + misses;
    let compressed_share = if total_lookups == 0.0 {
        0.0
    } else {
        compressed / total_lookups
    };
    (mean_ms, compressed_share)
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let (rows, probes) = if quick {
        (10_000u64, 100)
    } else {
        (50_000u64, 400)
    };
    // ~ROW bytes decompressed per row; the top budget fits the tablet.
    let budgets: &[usize] = if quick {
        &[0, 256 << 10, 1 << 20, 4 << 20]
    } else {
        &[0, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20]
    };
    let mut latency = Vec::new();
    let mut hit_pct = Vec::new();
    for &b in budgets {
        let (ms, ratio) = measure(b, rows, probes);
        let mb = b as f64 / (1 << 20) as f64;
        latency.push((mb, ms));
        hit_pct.push((mb, ratio * 100.0));
    }
    let mut fig = FigureResult::new(
        "bench_cache",
        "Point-read latency vs. decompressed-block-cache budget",
        "cache budget (MB)",
        "mean point-read latency (ms) / hit ratio (%)",
    );
    fig.push_series("mean point-read latency (ms)", latency.clone());
    fig.push_series("cache hit ratio (%)", hit_pct);
    fig.paper("no direct paper counterpart; §3.2 caches tablet footers \"almost indefinitely\"");
    fig.paper("~31 ms per cold point read (inode + trailer + footer + block, §5.1.6)");
    let cold = latency.first().map(|&(_, ms)| ms).unwrap_or(0.0);
    let warm = latency.last().map(|&(_, ms)| ms).unwrap_or(0.0);
    fig.note(&format!(
        "uncached {:.2} ms/read vs {:.3} ms/read with the tablet resident ({}x)",
        cold,
        warm,
        if warm > 0.0 {
            (cold / warm).round()
        } else {
            f64::INFINITY
        }
    ));
    fig.note("disk-model caches cleared before each measured pass");

    // Tier-split sweep: fixed joint budget, working set ~2x what the
    // default split's decompressed slice holds, fraction swept from
    // single-tier (0) up. The bench payload is random (incompressible),
    // so a cached block charges ~2x its 64 kB decompressed size (block
    // plus retained compressed copy); at the default split the upper
    // tier holds 0.75*total / 128 kB blocks, and twice that working set
    // is 0.75*total / 64 kB blocks, at ~150 bytes per row.
    let split_total: usize = if quick { 1 << 20 } else { 2 << 20 };
    let ws_rows = (split_total as f64 * 0.75 / 150.0) as u64;
    let mut split_latency = Vec::new();
    let mut split_share = Vec::new();
    for &f in &[0.0, 0.25, 0.5, 0.75] {
        let (ms, share) = measure_split(split_total, f, rows, ws_rows, probes);
        split_latency.push((f, ms));
        split_share.push((f, share * 100.0));
    }
    fig.push_series(
        &format!(
            "tier-split sweep: mean latency (ms) vs compressed fraction @ {} kB joint budget",
            split_total >> 10
        ),
        split_latency.clone(),
    );
    fig.push_series(
        "tier-split sweep: compressed-tier hit share (%) vs fraction",
        split_share,
    );
    let single = split_latency.first().map(|&(_, ms)| ms).unwrap_or(0.0);
    let two_tier = split_latency.get(1).map(|&(_, ms)| ms).unwrap_or(0.0);
    fig.note(&format!(
        "working set ~2x the decompressed slice: single-tier (fraction 0) {:.2} ms/read \
         vs two-tier (default 0.25) {:.2} ms/read at the same joint budget",
        single, two_tier
    ));
    if quick {
        fig.note("quick mode: 10k rows, 100 probes per budget");
    }
    fig
}
