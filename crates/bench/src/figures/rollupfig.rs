//! BENCH_rollup: dashboard refresh latency with and without the
//! continuous rollup tier and the query-result cache.
//!
//! Not a figure from the paper — it characterises the pre-aggregation
//! subsystem. A fleet of sensors reports minutely samples; a dashboard
//! repeatedly refreshes the same hourly `TIME_BUCKET` SUM/COUNT/MIN/MAX
//! panel over the whole retained history. Three configurations answer
//! the identical refresh stream on the simulated paper disk:
//!
//! * **pushdown** — no rollup, result cache off: every refresh runs the
//!   aggregate pushdown scan over the base table;
//! * **rollup** — an hourly rollup serves the covered window, so each
//!   refresh reads only `hours` pre-aggregated rows and *zero* base
//!   blocks (asserted on the `pushdown_scans` / `rows_materialized`
//!   counters);
//! * **rollup+cache** — the result cache answers every repeat after the
//!   first without touching storage at all.
//!
//! Disk-model caches are cleared before every refresh (a dashboard
//! shares the spindle with the ingest path), and the engine block cache
//! is held far below the base table's footprint, so the baseline pays
//! for its reads each time — exactly the workload §4 motivates rollups
//! with. Scanned rows are charged to the CPU model on every path.

use crate::env::SimEnv;
use crate::report::FigureResult;
use littletable_core::value::Value;
use littletable_core::Options;
use littletable_sql::{Session, SqlOutput};
use littletable_vfs::DiskParams;

const HOUR: i64 = 3_600_000_000;
const MINUTE: i64 = 60_000_000;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Pushdown,
    Rollup,
    RollupCache,
}

struct Dashboard {
    env: SimEnv,
    session: Session,
    query: String,
    hours: i64,
}

/// Builds the sensor table (minutely samples, `hours * sensors * 60`
/// rows, flushed and fully merged) and, for the rollup modes, an hourly
/// rollup folded over the whole history.
fn setup(mode: Mode, hours: i64, sensors: i64, cache_bytes: usize) -> Dashboard {
    let opts = Options {
        block_cache_bytes: cache_bytes,
        result_cache_fraction: if mode == Mode::RollupCache { 0.25 } else { 0.0 },
        ..Options::default()
    };
    let env = SimEnv::new(DiskParams::paper_disk(), opts);
    let session = Session::new(env.db.clone());
    session
        .execute(
            "CREATE TABLE d (sensor INT64, ts TIMESTAMP, v INT64, \
             PRIMARY KEY (sensor, ts))",
        )
        .unwrap();
    // History ends on the bucket boundary at or before "now".
    let end = {
        let now = env.now();
        now - now.rem_euclid(HOUR)
    };
    let start = end - hours * HOUR;
    let table = env.db.table("d").unwrap();
    let mut batch = Vec::with_capacity(2048);
    for sensor in 0..sensors {
        for h in 0..hours {
            for m in 0..60 {
                batch.push(vec![
                    Value::I64(sensor),
                    Value::Timestamp(start + h * HOUR + m * MINUTE),
                    Value::I64((h * 60 + m) % 997 + sensor),
                ]);
                if batch.len() == 2048 {
                    table.insert(std::mem::take(&mut batch)).unwrap();
                }
            }
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(env.db.now()).unwrap() {}
    if mode != Mode::Pushdown {
        session
            .execute("CREATE ROLLUP d_1h ON d PERIOD '1h' AGGREGATE (v)")
            .unwrap();
        env.db.maintain().unwrap();
        // Steady state: the fold batches have compacted into one tablet,
        // so a cold refresh pays one metadata chain, not one per batch.
        let rtable = env.db.table("d_1h").unwrap();
        rtable.flush_all().unwrap();
        while rtable.run_merge_once(env.db.now()).unwrap() {}
    }
    let query = format!(
        "SELECT TIME_BUCKET(ts, INTERVAL '1h'), SUM(v), COUNT(*), MIN(v), MAX(v) \
         FROM d WHERE ts >= {start} AND ts < {end} \
         GROUP BY TIME_BUCKET(ts, INTERVAL '1h')"
    );
    Dashboard {
        env,
        session,
        query,
        hours,
    }
}

/// One dashboard refresh against a cold disk: returns its virtual
/// latency in milliseconds, with every scanned row (base or rollup) and
/// every returned group charged to the CPU model inside the timed
/// window.
fn refresh(d: &Dashboard) -> f64 {
    d.env.vfs.clear_caches();
    let base = d.env.db.table("d").unwrap();
    let rollup = d.env.db.table("d_1h").ok();
    let b0 = base.stats().snapshot();
    let r0 = rollup.as_ref().map(|t| t.stats().snapshot());
    let t0 = d.env.now();
    let out = d.session.execute(&d.query).unwrap();
    let groups = match out {
        SqlOutput::Rows { rows, .. } => rows.len(),
        _ => 0,
    };
    assert_eq!(groups as i64, d.hours, "dashboard lost buckets");
    let b1 = base.stats().snapshot();
    let mut scanned = b1.rows_scanned - b0.rows_scanned;
    if let (Some(t), Some(r0)) = (&rollup, &r0) {
        scanned += t.stats().snapshot().rows_scanned - r0.rows_scanned;
    }
    d.env.charge_scan(scanned + groups as u64);
    (d.env.now() - t0) as f64 / 1e3
}

/// Runs `refreshes` dashboard refreshes under `mode` and returns the
/// per-refresh latencies, asserting the mode's serving-path counters.
fn measure(mode: Mode, hours: i64, sensors: i64, cache_bytes: usize, refreshes: usize) -> Vec<f64> {
    let d = setup(mode, hours, sensors, cache_bytes);
    let before = d.env.db.table("d").unwrap().stats().snapshot();
    let lat: Vec<f64> = (0..refreshes).map(|_| refresh(&d)).collect();
    let after = d.env.db.table("d").unwrap().stats().snapshot();
    match mode {
        Mode::Pushdown => {
            assert_eq!(after.rollup_hits, before.rollup_hits);
            assert!(after.pushdown_scans > before.pushdown_scans);
        }
        Mode::Rollup | Mode::RollupCache => {
            // The acceptance property: a fully covered window never
            // touches the base table.
            assert_eq!(
                after.pushdown_scans, before.pushdown_scans,
                "rollup-covered refresh started a base-table scan"
            );
            assert_eq!(
                after.rows_materialized, before.rows_materialized,
                "rollup-covered refresh materialized base rows"
            );
            let served = (after.rollup_hits - before.rollup_hits) as usize;
            let cached = (after.result_cache_hits - before.result_cache_hits) as usize;
            if mode == Mode::Rollup {
                assert_eq!(served, refreshes);
            } else {
                assert_eq!(served, 1, "repeats bypassed the result cache");
                assert_eq!(cached, refreshes - 1);
            }
        }
    }
    lat
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    // Full mode: 14 days of minutely samples from 4 sensors (80,640
    // rows, ~25 data blocks); the 1h rollup is 1,344 rows. The engine
    // block cache is a fraction of the base footprint in either mode.
    let (hours, sensors, cache, refreshes) = if quick {
        (48i64, 2i64, 64usize << 10, 5usize)
    } else {
        (336, 4, 512 << 10, 10)
    };
    let push = measure(Mode::Pushdown, hours, sensors, cache, refreshes);
    let roll = measure(Mode::Rollup, hours, sensors, cache, refreshes);
    let both = measure(Mode::RollupCache, hours, sensors, cache, refreshes);

    let mut fig = FigureResult::new(
        "bench_rollup",
        "Dashboard refresh latency: pushdown scan vs rollup vs rollup+result cache",
        "refresh #",
        "refresh latency (ms, virtual)",
    );
    let idx = |xs: &[f64]| {
        xs.iter()
            .enumerate()
            .map(|(i, &y)| ((i + 1) as f64, y))
            .collect::<Vec<_>>()
    };
    fig.push_series("aggregate pushdown over the base table", idx(&push));
    fig.push_series("served from the hourly rollup", idx(&roll));
    fig.push_series("rollup + result cache", idx(&both));
    fig.paper("no direct paper counterpart; §4 describes downsampled mirror tables");
    // Refresh #1 is the cold start: every path pays one metadata chain
    // per (time-partitioned) tablet it opens. The repeated-query figure
    // of merit is the steady state — refreshes 2..n.
    let (pm, rm, bm) = (mean(&push[1..]), mean(&roll[1..]), mean(&both[1..]));
    fig.note(&format!(
        "steady-state refresh: pushdown {pm:.2} ms, rollup {rm:.3} ms ({:.0}x), \
         rollup+cache {bm:.3} ms ({:.0}x)",
        pm / rm.max(1e-3),
        pm / bm.max(1e-3)
    ));
    fig.note(&format!(
        "cold start (refresh #1): pushdown {:.0} ms, rollup {:.0} ms, rollup+cache {:.0} ms",
        push[0], roll[0], both[0]
    ));
    fig.note("rollup paths read zero base-table blocks (counter-asserted)");
    fig.note("disk-model caches cleared before every refresh");
    if quick {
        fig.note("quick mode: 2 days x 2 sensors, 5 refreshes");
    }
    assert!(
        pm >= 5.0 * rm.max(1e-3) && pm >= 5.0 * bm.max(1e-3),
        "rollup tier not >=5x faster on repeats: pushdown {pm} ms, rollup {rm} ms, cached {bm} ms"
    );
    fig
}
