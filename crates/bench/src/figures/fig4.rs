//! Figure 4: aggregate insert throughput vs. number of writers (§5.1.4).
//!
//! Each of N writers streams 32-row batches of 128-byte rows into its own
//! table. The server shares almost no state between tables, so insert
//! work parallelizes across cores until the disk becomes the bottleneck;
//! the paper reaches ~75% of the disk's peak write rate at 32 writers.
//!
//! Methodology: the engine work runs for real against the shared
//! simulated disk (whose busy time is measured), while writer CPU — which
//! in production runs on separate cores — is modelled as parallel across
//! `min(N, cores)` cores. Aggregate time = max(parallel CPU, serial disk).

use crate::env::{
    bench_row, SimEnv, XorShift64, CPU_PER_COMMAND, CPU_PER_INSERT_BYTE, CPU_PER_INSERT_ROW,
};
use crate::report::FigureResult;
use littletable_core::Options;
use littletable_vfs::{Clock, DiskParams};

/// Cores on the paper's test machine (two 6-core Xeons).
const CORES: f64 = 12.0;

/// Bytes each writer inserts.
fn per_writer_bytes(quick: bool) -> usize {
    if quick {
        8 << 20
    } else {
        32 << 20
    }
}

fn aggregate_throughput_mb_s(writers: usize, per_writer: usize) -> f64 {
    let env = SimEnv::new(DiskParams::paper_disk(), Options::default());
    let mut rng = XorShift64::new(0xF164 + writers as u64);
    const ROW: usize = 128;
    const BATCH_ROWS: usize = 32;
    let tables: Vec<_> = (0..writers)
        .map(|w| {
            env.db
                .create_table(&format!("w{w}"), crate::env::bench_schema(), None)
                .unwrap()
        })
        .collect();
    let batches_per_writer = per_writer / (ROW * BATCH_ROWS);
    let mut seq = 0u64;
    // Run all inserts through the engine round-robin (real disk charges
    // accumulate on the shared model); don't charge CPU to the clock —
    // writer CPU is accounted as a parallel resource below.
    for b in 0..batches_per_writer {
        for table in &tables {
            let ts_base = env.clock.now_micros() + b as i64;
            let rows: Vec<_> = (0..BATCH_ROWS)
                .map(|i| {
                    seq += 1;
                    bench_row(&mut rng, seq, ts_base + i as i64, ROW)
                })
                .collect();
            table.insert(rows).unwrap();
            table.flush_next_group().unwrap();
        }
    }
    for table in &tables {
        table.flush_all().unwrap();
    }
    let disk_busy_s = env.vfs.model().busy_micros() as f64 / 1e6;
    let total_batches = (batches_per_writer * writers) as f64;
    let cpu_per_batch = CPU_PER_COMMAND
        + BATCH_ROWS as f64 * CPU_PER_INSERT_ROW
        + (BATCH_ROWS * ROW) as f64 * CPU_PER_INSERT_BYTE;
    let cpu_total_s = total_batches * cpu_per_batch / 1e6;
    let parallel_cpu_s = cpu_total_s / CORES.min(writers as f64);
    let elapsed = parallel_cpu_s.max(disk_busy_s);
    (per_writer * writers) as f64 / 1e6 / elapsed
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let per_writer = per_writer_bytes(quick);
    let writer_counts: &[usize] = if quick {
        &[1, 2, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let points: Vec<(f64, f64)> = writer_counts
        .iter()
        .map(|&n| (n as f64, aggregate_throughput_mb_s(n, per_writer)))
        .collect();
    let mut fig = FigureResult::new(
        "fig4",
        "Aggregate insert throughput vs. number of writers",
        "writers (tables)",
        "aggregate throughput (MB/s)",
    );
    fig.push_series("32 x 128 B batches per command", points);
    fig.paper("single writer sustains 37 MB/s; each additional writer increases throughput");
    fig.paper("32 writers reach almost 75% of the 120 MB/s peak disk write rate");
    fig.note(&format!(
        "each writer inserts {} MB (paper: 500 MB); writer CPU modelled parallel over {} cores, disk serialized",
        per_writer >> 20,
        CORES
    ));
    fig
}
