//! One module per regenerated table or figure.

pub mod ablations;
pub mod applog;
pub mod cachefig;
pub mod catalogfig;
pub mod contention;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig9;
pub mod fleetfigs;
pub mod headline;
pub mod ingestfig;
pub mod rollupfig;
pub mod scanfig;

#[cfg(test)]
mod smoke_tests {
    //! Cheap smoke tests over the figure harness: the fleet-model figures
    //! and the appendix check run in milliseconds and pin their headline
    //! statistics so harness regressions surface in `cargo test`.

    #[test]
    fn fleet_figures_match_paper_statistics() {
        let dir = std::env::temp_dir().join(format!("ltfig-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let fig7 = super::fleetfigs::run_fig7(true);
        assert_eq!(fig7.series.len(), 2);
        // The LittleTable CDF ends at the 6.7 TB max.
        let lt_max = fig7.series[0].points.last().unwrap().0;
        assert!(lt_max <= 6.7e12 && lt_max > 2e12);

        let fig8 = super::fleetfigs::run_fig8(true);
        let key_max = fig8.series[0].points.last().unwrap().0;
        assert!(key_max < 128.0, "all keys under 128 B");

        let fig10 = super::fleetfigs::run_fig10(true);
        // Over 90% of lookbacks within a week (7 days).
        let lookbacks = &fig10.series[0].points;
        let frac_week = lookbacks
            .iter()
            .filter(|&&(days, _)| days <= 7.0)
            .map(|&(_, f)| f)
            .fold(0.0f64, f64::max);
        assert!(frac_week > 0.9, "within-week fraction {frac_week}");

        let rates = super::fleetfigs::run_rates(true);
        assert_eq!(rates.series.len(), 2);
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn block_cache_figure_shows_warm_speedup() {
        let dir = std::env::temp_dir().join(format!("ltcache-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let fig = super::cachefig::run(true);
        let latency = &fig.series[0].points;
        let uncached = latency.first().unwrap().1;
        let resident = latency.last().unwrap().1;
        assert!(
            uncached >= 5.0 * resident.max(1e-3),
            "warm reads not >=5x faster: uncached {uncached} ms, resident {resident} ms"
        );
        let hit = fig.series[1].points.last().unwrap().1;
        assert!(hit > 90.0, "resident hit ratio {hit}%");
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn scan_figure_shows_columnar_wins() {
        let dir = std::env::temp_dir().join(format!("ltscan-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let fig = super::scanfig::run(true);
        let disk = &fig.series[2].points;
        let (row_mb, col_mb) = (disk[0].1, disk[1].1);
        assert!(
            col_mb < row_mb,
            "columnar-v3 not smaller on disk: {col_mb} MB vs {row_mb} MB"
        );
        // Aggregate pushdown (SUM and footer-stats) must beat the row
        // layout — the acceptance criterion for the v3 format.
        for op in [2, 3] {
            let row_rate = fig.series[0].points[op].1;
            let col_rate = fig.series[1].points[op].1;
            assert!(
                col_rate > row_rate,
                "columnar aggregate op {op} not faster: {col_rate} vs {row_rate} Mrows/s"
            );
        }
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rollup_figure_shows_dashboard_speedup() {
        let dir = std::env::temp_dir().join(format!("ltrollup-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        // run() asserts the >=5x acceptance bound and the zero-base-read
        // counters internally.
        let fig = super::rollupfig::run(true);
        assert_eq!(fig.series.len(), 3);
        // Compare steady-state repeats (refresh #2 on) — refresh #1 is
        // the cold start on every path.
        let push = fig.series[0].points[1].1;
        let cached = fig.series[2].points.last().unwrap().1;
        assert!(
            push >= 5.0 * cached.max(1e-3),
            "cached dashboard refresh not >=5x faster: {push} ms vs {cached} ms"
        );
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn applog_bounds_hold_in_quick_mode() {
        let dir = std::env::temp_dir().join(format!("ltapplog-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        // run() asserts the appendix bound internally.
        let fig = super::applog::run(true);
        assert!(!fig.series[0].points.is_empty());
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
