//! Figure 3: insert throughput over time with active tablet merging
//! (§5.1.3).
//!
//! 4 kB rows in 64 kB batches stream into one table; the merger wakes 90
//! (virtual) seconds in. Throughput is reported over 5-second windows and
//! merge completions are marked. The expected shape: a high CPU-bound
//! plateau, a drop to disk-bound once the 100-tablet backlog cap bites,
//! then merge/flush competition settling toward an equilibrium with write
//! amplification ≈ 2.

use crate::env::{bench_row, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::Options;
use littletable_vfs::{Clock, DiskParams, Micros};

/// Total bytes to insert.
fn data_bytes(quick: bool) -> usize {
    if quick {
        384 << 20
    } else {
        2 << 30
    }
}

/// Runs the figure. Returns the result plus the measured write
/// amplification (used by the headline harness).
pub fn run_with_amplification(quick: bool) -> (FigureResult, f64) {
    let total = data_bytes(quick);
    // The paper inserts 16 GB over ~350 s with the merger waking at 90 s.
    // At our scaled volume the run is proportionally shorter, so the merge
    // delay scales too (noted on the figure); the dynamics are unchanged.
    let mut opts = Options::default();
    opts.merge_delay = if quick { 2_000_000 } else { 5_000_000 };
    let env = SimEnv::new(DiskParams::paper_disk(), opts);
    let table = env
        .db
        .create_table("bench", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xF163);
    const ROW: usize = 4 << 10;
    const BATCH_ROWS: usize = 16; // 64 kB batches

    let window: Micros = if quick { 2_000_000 } else { 5_000_000 };
    let t0 = env.now();
    let mut window_start = t0;
    let mut window_bytes = 0usize;
    let mut inserted = 0usize;
    let mut seq = 0u64;
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut merges: Vec<f64> = Vec::new();
    let mut last_merge_probe = t0;

    while inserted < total {
        let ts_base = env.clock.now_micros();
        let rows: Vec<_> = (0..BATCH_ROWS)
            .map(|i| {
                seq += 1;
                bench_row(&mut rng, seq, ts_base + i as i64, ROW)
            })
            .collect();
        table.insert(rows).unwrap();
        env.charge_insert_command(BATCH_ROWS, BATCH_ROWS * ROW);
        table.flush_next_group().unwrap();
        inserted += BATCH_ROWS * ROW;
        window_bytes += BATCH_ROWS * ROW;

        // The merge thread runs continuously; probe it about once per
        // virtual second so merges interleave with inserts.
        let now = env.now();
        if now - last_merge_probe >= 250_000 {
            last_merge_probe = now;
            if table.run_merge_once(now).unwrap() {
                merges.push((env.now() - t0) as f64 / 1e6);
            }
        }
        while env.now() - window_start >= window {
            let secs = window as f64 / 1e6;
            points.push((
                (window_start - t0) as f64 / 1e6 + secs,
                window_bytes as f64 / 1e6 / secs,
            ));
            window_start += window;
            window_bytes = 0;
        }
    }
    // Drain: finish flushes and merges, attributing their time to the tail.
    while table.flush_next_group().unwrap() {}
    while table.run_merge_once(env.now()).unwrap() {
        merges.push((env.now() - t0) as f64 / 1e6);
    }

    let snap = table.stats().snapshot();
    let amplification = snap.write_amplification();

    let mut fig = FigureResult::new(
        "fig3",
        "Insert throughput over time with active tablet merging",
        "time (s)",
        "insert throughput (MB/s)",
    );
    // The serial virtual timeline alternates insert and merge work where
    // production overlaps them on one spindle, so the raw windows square-
    // wave; the moving average corresponds to the paper's overlapped
    // throughput trace.
    let avg_window = 5usize;
    let moving: Vec<(f64, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, &(x, _))| {
            let lo = i.saturating_sub(avg_window - 1);
            let slice = &points[lo..=i];
            (
                x,
                slice.iter().map(|p| p.1).sum::<f64>() / slice.len() as f64,
            )
        })
        .collect();
    fig.push_series("window throughput (raw, alternating)", points.clone());
    fig.push_series("moving average (overlap-equivalent)", moving);
    fig.push_series(
        "merge completions (impulses)",
        merges.iter().map(|&t| (t, 0.0)).collect(),
    );
    fig.paper("initial CPU-bound plateau, then disk-bound ~70 MB/s at the 100-tablet cap");
    fig.paper("merging begins at 90 s; equilibrium insert throughput 30-40 MB/s");
    fig.paper("write amplification factor 2 at this insert rate");
    fig.note(&format!(
        "inserted {} MB (paper: 16 GB); merge delay scaled to {} s (paper: 90 s); measured write amplification {:.2}",
        total >> 20,
        if quick { 2 } else { 5 },
        amplification
    ));
    (fig, amplification)
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    run_with_amplification(quick).0
}
