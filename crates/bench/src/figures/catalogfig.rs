//! BENCH_catalog: lock-free catalog lookup scaling and adaptive cache
//! split convergence.
//!
//! Not a figure from the paper — it characterises two pieces of this
//! implementation's hot path:
//!
//! 1. **Catalog lookups.** `Db::table()` and `list_tables()` resolve
//!    through an atomically published immutable snapshot (one pinned
//!    pointer load, no mutex). The figure measures lookup throughput and
//!    p99 latency at 1/8/64 threads against a `RwLock<HashMap>` baseline
//!    — the catalog design this refactor replaced — in *wall-clock* time
//!    on real threads, since lock contention is exactly the quantity
//!    under test.
//!
//! 2. **Adaptive tier split.** The block cache splits one byte budget
//!    between decompressed and compressed tiers. A static split must be
//!    hand-tuned per workload; the adaptive split watches ghost-list
//!    hits (ARC-style) and retunes during maintenance. The figure sweeps
//!    static fractions over a working set that overflows the
//!    decompressed tier and reports each one's hit rate, then lets the
//!    adaptive split start from the default 25% and converge on its own
//!    — plotted at the fraction it converged to. Virtual time, fully
//!    deterministic.

use crate::env::{SimEnv, XorShift64, BENCH_ROW_OVERHEAD};
use crate::report::FigureResult;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Db, Options, Query, Table};
use littletable_vfs::{DiskParams, Micros, SimClock, SimVfs};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Tables in the lookup catalog: enough that the name hash spreads but
/// every lookup still hits.
const CATALOG_TABLES: usize = 64;

/// Thread counts for the scaling sweep.
const THREADS: [usize; 3] = [1, 8, 64];

fn tiny_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("k", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
        ],
        &["k", "ts"],
    )
    .unwrap()
}

/// A Db holding `CATALOG_TABLES` empty tables, plus their names.
fn lookup_db() -> (Db, Vec<String>) {
    let db = Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(1_700_000_000_000_000)),
        Options::small_for_tests(),
    )
    .unwrap();
    let names: Vec<String> = (0..CATALOG_TABLES)
        .map(|i| format!("table{i:03}"))
        .collect();
    for n in &names {
        db.create_table(n, tiny_schema(), None).unwrap();
    }
    (db, names)
}

/// The pre-refactor catalog design: one reader-writer lock around the
/// name map, a read-lock acquisition per lookup.
struct LockedCatalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl LockedCatalog {
    fn mirror(db: &Db, names: &[String]) -> LockedCatalog {
        let mut map = HashMap::new();
        for n in names {
            map.insert(n.clone(), db.table(n).unwrap());
        }
        LockedCatalog {
            tables: RwLock::new(map),
        }
    }

    fn lookup(&self, name: &str) -> Arc<Table> {
        self.tables.read().get(name).cloned().unwrap()
    }
}

/// The durability stall inside each DDL cycle's commit: a real
/// `create_table` fsyncs its descriptor and directory, which costs
/// milliseconds on the paper's disk (§2.1 budgets ~10 ms per seek) —
/// the instant VFS the lookup benchmark runs on would otherwise hide
/// it. The locked baseline holds the catalog lock across the stall, as
/// the design it models did; the snapshot catalog's readers never see
/// it. 3 ms is deliberately conservative.
const DDL_STALL: std::time::Duration = std::time::Duration::from_millis(3);

/// Idle time between DDL cycles, so churn models "a DDL every ~10 ms"
/// rather than a tight mutation loop.
const DDL_IDLE: std::time::Duration = std::time::Duration::from_millis(7);

/// Runs `iters` lookups per thread across `threads` reader threads,
/// each cycling through the table names from a different offset, while
/// one churn thread runs a catalog create/drop cycle (including its
/// [`DDL_STALL`] commit stall) every [`DDL_IDLE`]. This is the scenario
/// the snapshot catalog exists for: with a reader-writer lock every
/// catalog mutation stalls the whole reader population for the
/// duration of the table build, teardown, and commit fsync it covers —
/// even on a single core, parked readers leave the CPU idle for the
/// stall — while snapshot readers never block. The churner is paced by
/// sleeps, so it wakes reliably even on an oversubscribed machine.
///
/// Returns (million lookups per second, p99 latency in nanoseconds).
/// Wall time is the span from the earliest reader's start to the latest
/// reader's finish, measured by the readers themselves (a coordinator
/// thread's clock is unreliable on an oversubscribed machine); the p99
/// is taken over every 32nd lookup timed individually — a lookup that
/// parks behind a catalog writer shows up in the tail.
fn measure_lookups(
    threads: usize,
    iters: usize,
    names: &[String],
    lookup: &(dyn Fn(&str) + Sync),
    churn: &(dyn Fn() + Sync),
) -> (f64, f64) {
    let barrier = Barrier::new(threads + 1);
    let done = AtomicBool::new(false);
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let spans: Mutex<Vec<(Instant, Instant)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                churn();
                std::thread::sleep(DDL_IDLE);
            }
        });
        let mut readers = Vec::new();
        for t in 0..threads {
            let barrier = &barrier;
            let samples = &samples;
            let spans = &spans;
            readers.push(s.spawn(move || {
                let mut local = Vec::with_capacity(iters / 32 + 1);
                barrier.wait();
                let start = Instant::now();
                for i in 0..iters {
                    let name = &names[(t * 7 + i) % names.len()];
                    if i % 32 == 0 {
                        let t0 = Instant::now();
                        lookup(name);
                        local.push(t0.elapsed().as_nanos() as u64);
                    } else {
                        lookup(name);
                    }
                }
                let end = Instant::now();
                spans.lock().unwrap().push((start, end));
                samples.lock().unwrap().extend(local);
            }));
        }
        barrier.wait();
        for r in readers {
            r.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });
    let spans = spans.into_inner().unwrap();
    let first_start = spans.iter().map(|&(s, _)| s).min().unwrap();
    let last_end = spans.iter().map(|&(_, e)| e).max().unwrap();
    let wall_secs = last_end.duration_since(first_start).as_secs_f64();
    let mut samples = samples.into_inner().unwrap();
    samples.sort_unstable();
    let p99 = samples[(samples.len() - 1) * 99 / 100] as f64;
    let mops = (threads * iters) as f64 / wall_secs / 1e6;
    (mops, p99)
}

/// One measured run of the shifting-working-set cache workload.
struct SplitOutcome {
    /// Fraction of block requests served from either cache tier.
    hit_rate: f64,
    /// The split the cache ended the run at (equals the configured
    /// fraction for static runs, clamp aside).
    final_fraction: f64,
    /// Rebalance passes that actually moved budget.
    rebalances: u64,
}

/// A bench row whose payload compresses ~4x: the first quarter is
/// random, the rest zeros. The compressed tier can therefore hold ~4
/// blocks for every one the decompressed tier holds — which is what
/// gives the split a real trade-off to optimise.
fn compressible_row(rng: &mut XorShift64, seq: u64, ts: Micros, row_bytes: usize) -> Vec<Value> {
    let payload_len = row_bytes.saturating_sub(BENCH_ROW_OVERHEAD);
    let mut payload = vec![0u8; payload_len];
    let random_len = payload_len / 4;
    rng.fill(&mut payload[..random_len]);
    vec![
        Value::I64(seq as i64),
        Value::I64(0),
        Value::I64(0),
        Value::I64(0),
        Value::I64(0),
        Value::Timestamp(ts),
        Value::Blob(payload),
    ]
}

/// Probes a merged table under a two-phase workload — a small hot set
/// that fits decompressed, then a shift to a working set that only fits
/// as compressed bytes — calling the maintenance-time rebalance hook at
/// a fixed cadence, exactly as the embedded engine's `maintain()` and
/// the server's commit shards do.
fn measure_split(fraction: f64, adaptive: bool, quick: bool) -> SplitOutcome {
    const TOTAL: usize = 512 << 10;
    const ROW: usize = 256;
    const TABLE_ROWS: u64 = 10_240; // ~40 blocks of 64 kB
    const HOT_ROWS: u64 = 512; // phase A: ~2 blocks
    const SHIFT_ROWS: u64 = 8_192; // phase B: ~32 blocks

    let env = SimEnv::new(
        DiskParams::paper_disk(),
        Options {
            block_cache_bytes: TOTAL,
            block_cache_shards: 1,
            compressed_cache_fraction: fraction,
            adaptive_cache_split: adaptive,
            ..Options::default()
        },
    );
    let table = env
        .db
        .create_table("split", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xCA7A106);
    let mut batch = Vec::with_capacity(1024);
    for seq in 1..=TABLE_ROWS {
        batch.push(compressible_row(
            &mut rng,
            seq,
            1_700_000_000_000_000 + seq as i64,
            ROW,
        ));
        if batch.len() == 1024 {
            table.insert(std::mem::take(&mut batch)).unwrap();
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(env.db.now()).unwrap() {}

    let (phase_a, phase_b) = if quick {
        (1_500, 6_000)
    } else {
        (4_000, 16_000)
    };
    let mut probe_rng = XorShift64::new(0x5411_7000 + (fraction * 1000.0) as u64 + adaptive as u64);
    let before = table.stats().snapshot();
    let mut probes = 0usize;
    let mut run_phase = |range: u64, count: usize, probe_rng: &mut XorShift64| {
        for _ in 0..count {
            let seq = probe_rng.next_u64() % range + 1;
            let q = Query::all().with_prefix(vec![Value::I64(seq as i64)]);
            let got = table.query_all(&q).unwrap();
            assert_eq!(got.len(), 1);
            probes += 1;
            // Maintenance cadence: retune the split every 128 probes.
            if probes.is_multiple_of(128) {
                env.db.rebalance_cache();
            }
        }
    };
    run_phase(HOT_ROWS, phase_a, &mut probe_rng);
    run_phase(SHIFT_ROWS, phase_b, &mut probe_rng);

    let after = table.stats().snapshot();
    let hits = (after.cache_hits - before.cache_hits + after.cache_compressed_hits
        - before.cache_compressed_hits) as f64;
    let misses = (after.cache_misses - before.cache_misses) as f64;
    let db_stats = env.db.stats();
    SplitOutcome {
        hit_rate: hits / (hits + misses).max(1.0),
        final_fraction: db_stats.cache_split_fraction,
        rebalances: db_stats.cache_rebalances,
    }
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    // Part 1: catalog lookup scaling, snapshot vs locked.
    let (db, names) = lookup_db();
    let locked = LockedCatalog::mirror(&db, &names);
    // Total lookups per measurement, sized so every window spans many
    // DDL_STALL + DDL_IDLE churn periods — the comparison averages over
    // churn rather than gambling on catching a single cycle.
    let total_iters = if quick { 1_000_000 } else { 4_000_000 };
    let mut snap_tput = Vec::new();
    let mut lock_tput = Vec::new();
    let mut snap_p99 = Vec::new();
    let mut lock_p99 = Vec::new();
    // Backing store for the locked baseline's churn: an identical
    // 64-table database, so its create/drop cycle does exactly the
    // same work as the snapshot churn. A lock-based catalog constructs,
    // commits, and tears tables down *while holding* the write lock —
    // that serialization against every reader is exactly what the
    // snapshot design removed — so the locked churn runs its cycle,
    // commit stall included, inside the lock.
    let (churn_db, _) = lookup_db();
    let snapshot_churn = || {
        db.create_table("churn", tiny_schema(), None).unwrap();
        std::thread::sleep(DDL_STALL);
        db.drop_table("churn").unwrap();
    };
    let locked_churn = || {
        {
            let mut map = locked.tables.write();
            churn_db.create_table("churn", tiny_schema(), None).unwrap();
            map.insert("churn".to_string(), churn_db.table("churn").unwrap());
            std::thread::sleep(DDL_STALL);
        }
        {
            let mut map = locked.tables.write();
            map.remove("churn");
            churn_db.drop_table("churn").unwrap();
        }
    };
    for &threads in &THREADS {
        // Keep total work constant so the 64-thread point does not
        // dominate wall time.
        let iters = total_iters / threads;
        let snapshot_lookup = |name: &str| {
            db.table(name).unwrap();
        };
        let (mops, p99) =
            measure_lookups(threads, iters, &names, &snapshot_lookup, &snapshot_churn);
        snap_tput.push((threads as f64, mops));
        snap_p99.push((threads as f64, p99));
        let locked_lookup = |name: &str| {
            locked.lookup(name);
        };
        let (mops, p99) = measure_lookups(threads, iters, &names, &locked_lookup, &locked_churn);
        lock_tput.push((threads as f64, mops));
        lock_p99.push((threads as f64, p99));
    }

    // Part 2: static split sweep vs the adaptive split, shifting working
    // set, deterministic virtual time.
    let fractions: &[f64] = if quick {
        &[0.125, 0.25, 0.875]
    } else {
        &[0.125, 0.25, 0.5, 0.75, 0.875]
    };
    let static_points: Vec<(f64, f64)> = fractions
        .iter()
        .map(|&f| (f, measure_split(f, false, quick).hit_rate * 100.0))
        .collect();
    let adaptive = measure_split(0.25, true, quick);

    let mut fig = FigureResult::new(
        "BENCH_catalog",
        "Lock-free catalog lookup scaling and adaptive cache split convergence",
        "threads (lookup series) / compressed fraction (split series)",
        "Mlookups/s, ns, or hit %",
    );
    fig.push_series("Db::table() snapshot (Mlookups/s)", snap_tput.clone());
    fig.push_series("RwLock catalog (Mlookups/s)", lock_tput.clone());
    fig.push_series("snapshot lookup p99 (ns)", snap_p99);
    fig.push_series("locked lookup p99 (ns)", lock_p99);
    fig.push_series("static split hit rate (%)", static_points.clone());
    fig.push_series(
        "adaptive split hit rate (%) at converged fraction",
        vec![(adaptive.final_fraction, adaptive.hit_rate * 100.0)],
    );
    fig.paper(
        "no direct paper counterpart; §3 catalogs tables per server and §4's cache \
         serves the query hot path",
    );
    let best_static = static_points.iter().map(|&(_, h)| h).fold(0.0f64, f64::max);
    fig.note(&format!(
        "lookup throughput under DDL churn: snapshot {:.2} -> {:.2} Mlookups/s \
         across 1 -> 64 reader threads, locked {:.2} -> {:.2}; the contrast is \
         sharpest at low reader counts, where the scheduler lets the churner run \
         at its design frequency (on a core-starved host, CPU-bound readers \
         throttle the churner's wake-ups, so high-thread points see less DDL and \
         converge toward the uncontended per-op cost of each design)",
        snap_tput[0].1,
        snap_tput.last().unwrap().1,
        lock_tput[0].1,
        lock_tput.last().unwrap().1,
    ));
    fig.note(&format!(
        "adaptive split converged to {:.3} (started 0.25) over {} rebalances; \
         hit rate {:.1}% vs best static {:.1}%",
        adaptive.final_fraction,
        adaptive.rebalances,
        adaptive.hit_rate * 100.0,
        best_static,
    ));
    fig.note(&format!(
        "lookups are wall-clock on real threads under catalog churn: one DDL \
         create/drop cycle every {} ms whose commit stalls {} ms (the descriptor \
         fsync an instant VFS would otherwise hide; the paper's disk budgets ~10 ms \
         per seek). The locked baseline holds the write lock across the cycle, \
         commit stall included, as the design it models did — every parked reader \
         leaves the CPU idle for the stall — while snapshot readers never block. \
         The split workload is virtual-time and deterministic: a 2-block hot set, \
         then a shift to a 32-block working set that fits only compressed",
        (DDL_STALL + DDL_IDLE).as_millis(),
        DDL_STALL.as_millis(),
    ));
    if quick {
        fig.note("quick mode: reduced iteration counts");
    }
    fig
}

#[cfg(test)]
mod tests {
    #[test]
    fn catalog_figure_quick_smoke() {
        let dir = std::env::temp_dir().join(format!("ltcatalog-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let fig = super::run(true);

        // Lookups under concurrent DDL must improve over the locked
        // baseline. The mechanism is deterministic: the locked catalog
        // holds its write lock across each DDL cycle's commit stall, so
        // every reader parks for the stall — idle CPU that shows up
        // directly in wall-clock throughput even on a single core —
        // while snapshot readers keep running through it. Assert at the
        // 1-reader point, where the scheduler lets the churner run at
        // its design frequency regardless of core count (with ~25% of
        // each churn period stalled the expected gap is >=1.33x); at
        // high reader counts a core-starved host throttles the churner
        // itself, so the 64-thread point only gets a parity guard.
        let snap = &fig.series[0].points;
        let lock = &fig.series[1].points;
        let (snap_1t, lock_1t) = (snap[0].1, lock[0].1);
        assert!(
            snap_1t > 1.2 * lock_1t,
            "snapshot lookups not faster under DDL churn: {snap_1t:.2} vs {lock_1t:.2} Mlookups/s"
        );
        let (snap_mt, lock_mt) = (snap.last().unwrap().1, lock.last().unwrap().1);
        assert!(
            snap_mt > 0.8 * lock_mt,
            "snapshot lookups regressed at 64 threads: {snap_mt:.2} vs {lock_mt:.2} Mlookups/s"
        );
        // And the snapshot tail must never see the DDL stall: a lookup
        // that blocked behind a catalog writer would cost milliseconds.
        let snap_p99 = fig.series[2].points.last().unwrap().1;
        assert!(
            snap_p99 < (super::DDL_STALL.as_nanos() / 2) as f64,
            "snapshot p99 at 64 threads sees the DDL stall: {snap_p99:.0} ns"
        );

        // The adaptive split must converge: hit rate at least the best
        // static configuration's (small epsilon for the adaptation
        // transient), having actually moved from the 0.25 start.
        let best_static = fig.series[4]
            .points
            .iter()
            .map(|&(_, h)| h)
            .fold(0.0f64, f64::max);
        let &(converged, adaptive_hit) = &fig.series[5].points[0];
        // The epsilon covers the learning transient: the adaptive run
        // starts at the worst-case 0.25 split and its hit rate includes
        // the probes served while it was still converging.
        assert!(
            adaptive_hit >= best_static - 3.0,
            "adaptive hit rate {adaptive_hit:.1}% below best static {best_static:.1}%"
        );
        assert!(
            converged > 0.3,
            "adaptive split never moved toward compressed demand: {converged}"
        );

        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
