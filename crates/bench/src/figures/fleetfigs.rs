//! Figures 7, 8, and 10, and the §5.2.3 rate table: regenerated from the
//! production-fleet workload model.

use crate::report::FigureResult;
use littletable_workload::catalog::generate_catalog;
use littletable_workload::dist::Cdf;
use littletable_workload::queries::{lookback_samples, RateModel};
use littletable_workload::shards::Fleet;

const DAY_MICROS: f64 = 86_400.0 * 1e6;

/// Figure 7: distribution of PostgreSQL and LittleTable sizes across
/// production shards.
pub fn run_fig7(_quick: bool) -> FigureResult {
    let fleet = Fleet::generate(400, 0x2017);
    let mut fig = FigureResult::new(
        "fig7",
        "Distribution of PostgreSQL and LittleTable sizes in production",
        "size (bytes)",
        "cumulative fraction of shards",
    );
    fig.push_series("LittleTable", fleet.littletable_cdf().downsample(40).points);
    fig.push_series("PostgreSQL", fleet.postgres_cdf().downsample(40).points);
    fig.paper("320 TB total LittleTable; largest instance 6.7 TB");
    fig.paper("14 TB total PostgreSQL; largest shard 341 GB");
    fig.note(&format!(
        "synthesized fleet: {} shards, {:.0} TB LittleTable total ({:.1} TB max), {:.1} TB PostgreSQL total ({:.0} GB max)",
        fleet.shards.len(),
        fleet.littletable_total() as f64 / 1e12,
        fleet.littletable_cdf().max() / 1e12,
        fleet.postgres_total() as f64 / 1e12,
        fleet.postgres_cdf().max() / 1e9,
    ));
    fig
}

/// Figure 8: distribution of key and value sizes per table.
pub fn run_fig8(_quick: bool) -> FigureResult {
    let catalog = generate_catalog(270 * 8, 0x2018);
    let keys = Cdf::from_samples(catalog.iter().map(|t| t.key_bytes as f64).collect());
    let values = Cdf::from_samples(catalog.iter().map(|t| t.value_bytes as f64).collect());
    let mut fig = FigureResult::new(
        "fig8",
        "Distribution of key and value sizes per table in production",
        "size (bytes)",
        "cumulative fraction of tables",
    );
    fig.push_series("keys", keys.downsample(40).points.clone());
    fig.push_series("values", values.downsample(40).points.clone());
    fig.paper("median key 45 B; all keys < 128 B");
    fig.paper("median value 61 B; 91% of tables average <= 1 kB; max ~75 kB");
    fig.note(&format!(
        "synthesized catalog: median key {:.0} B (max {:.0}), median value {:.0} B, {:.0}% <= 1 kB",
        keys.quantile(0.5),
        keys.max(),
        values.quantile(0.5),
        values.fraction_le(1024.0) * 100.0,
    ));
    fig
}

/// Figure 10: distributions of row TTL by table and lookback period by
/// query.
pub fn run_fig10(_quick: bool) -> FigureResult {
    let catalog = generate_catalog(270 * 8, 0x2020);
    let ttls = Cdf::from_samples(catalog.iter().map(|t| t.ttl as f64 / DAY_MICROS).collect());
    let lookbacks = Cdf::from_samples(
        lookback_samples(20_000, 0x2020)
            .iter()
            .map(|&l| l as f64 / DAY_MICROS)
            .collect(),
    );
    let mut fig = FigureResult::new(
        "fig10",
        "Distributions of row TTL by table and lookback period by query",
        "days",
        "cumulative fraction",
    );
    fig.push_series("query lookback", lookbacks.downsample(40).points.clone());
    fig.push_series("row TTL", ttls.downsample(40).points.clone());
    fig.paper("over 90% of requests cover only the most recent week");
    fig.paper("most tables retain data for a year or longer");
    fig.note(&format!(
        "synthesized: {:.1}% of queries within one week; {:.0}% of tables keep >= 1 year",
        lookbacks.fraction_le(7.0) * 100.0,
        (1.0 - ttls.fraction_le(364.0)) * 100.0,
    ));
    fig
}

/// §5.2.3: long-term insert and query rates per shard.
pub fn run_rates(_quick: bool) -> FigureResult {
    let model = RateModel::default();
    let mut fig = FigureResult::new(
        "rates",
        "Long-term insert and query rates per shard (sect. 5.2.3)",
        "hour of week",
        "rows/second",
    );
    let inserts: Vec<(f64, f64)> = (0..168)
        .map(|h| (h as f64, model.insert_rate_at(h as f64)))
        .collect();
    let queries: Vec<(f64, f64)> = (0..168)
        .map(|h| (h as f64, model.query_rate_at(h as f64)))
        .collect();
    let insert_avg = inserts.iter().map(|p| p.1).sum::<f64>() / 168.0;
    let query_avg = queries.iter().map(|p| p.1).sum::<f64>() / 168.0;
    fig.push_series("insert rows/s", inserts);
    fig.push_series("query rows/s returned", queries);
    fig.paper("average 14,000 rows/s inserted and 143,000 rows/s returned per shard");
    fig.paper("read-heavy in part because multiple aggregators read each source table");
    fig.note(&format!(
        "model weekly averages: {insert_avg:.0} rows/s inserted, {query_avg:.0} rows/s returned (ratio {:.1}x)",
        query_avg / insert_avg
    ));
    fig
}
