//! BENCH_ingest: pipelined ingest throughput of the nonblocking
//! readiness-loop server vs. a thread-per-connection baseline.
//!
//! Not a figure from the paper — it characterises this implementation's
//! ingest front end (the paper's deployment ingests from thousands of
//! access points through a handful of collector connections per shard,
//! §4). Both servers front an identical engine on an instant simulated
//! disk and speak the same pipelined wire protocol; the only variable is
//! the connection-handling architecture. Clients keep a bounded window
//! of insert batches in flight and record per-batch acknowledgement
//! latency; the figure reports aggregate rows/s and p99 ack latency
//! over a connections × batch-size grid, measured in wall-clock time on
//! real sockets.

use crate::report::FigureResult;
use littletable_core::db::Db;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::{ColumnType, Value};
use littletable_core::Options;
use littletable_proto::{
    decode_response_frame, encode_request_frame, read_frame, write_frame, Request, Response,
};
use littletable_server::{handle_request, Server, ServerConfig};
use littletable_vfs::{SimClock, SimVfs};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const WINDOW: usize = 8;
const TABLE: &str = "ingest";

fn ingest_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("n", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("v", ColumnType::I64),
        ],
        &["n", "ts"],
    )
    .unwrap()
}

fn bench_db() -> Db {
    // Instant simulated disk: the quantity under test is the front end,
    // not the storage stack. Background maintenance is off; each server
    // variant brings its own flush policy.
    Db::open(
        Arc::new(SimVfs::instant()),
        Arc::new(SimClock::new(1_700_000_000_000_000)),
        Options::small_for_tests(),
    )
    .unwrap()
}

/// The pre-rework architecture, kept as the benchmark baseline: one
/// blocking handler thread per connection, responses written per
/// request, maintenance driven per-request rather than group-committed.
/// It speaks the same enveloped protocol, so the identical client loop
/// drives both servers. Accepts exactly `conns` connections; drops the
/// listener afterwards and joins handlers when clients hang up.
struct ThreadPerConnServer {
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ThreadPerConnServer {
    fn start(db: Db, conns: usize) -> ThreadPerConnServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One maintenance guard shared by every handler, standing in for
        // the old single background maintenance thread: handlers pool
        // their dirty-row counts and exactly one runs maintenance at a
        // time (concurrent maintainers are not a supported engine mode).
        let maint: Arc<(std::sync::atomic::AtomicU64, std::sync::Mutex<()>)> = Arc::default();
        let accept = std::thread::spawn(move || {
            let mut handlers = Vec::new();
            for _ in 0..conns {
                let (stream, _) = match listener.accept() {
                    Ok(a) => a,
                    Err(_) => break,
                };
                let db = db.clone();
                let maint = maint.clone();
                handlers.push(std::thread::spawn(move || {
                    let _ = Self::serve(&db, stream, &maint);
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        ThreadPerConnServer {
            addr,
            accept: Some(accept),
        }
    }

    fn serve(
        db: &Db,
        mut stream: TcpStream,
        maint: &(std::sync::atomic::AtomicU64, std::sync::Mutex<()>),
    ) -> std::io::Result<()> {
        use std::sync::atomic::Ordering;
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        loop {
            let payload = match read_frame(&mut reader)? {
                Some(p) => p,
                None => return Ok(()),
            };
            let (id, req) = match littletable_proto::decode_request_frame(&payload) {
                Ok(x) => x,
                Err(_) => return Ok(()),
            };
            let resp = handle_request(db, req);
            if let Response::InsertResult { inserted, .. } = &resp {
                let dirty = maint.0.fetch_add(*inserted, Ordering::Relaxed) + *inserted;
                if dirty >= 4096 {
                    // A handler that finds the guard taken skips; the
                    // maintainer in progress covers its rows.
                    if let Ok(_g) = maint.1.try_lock() {
                        maint.0.store(0, Ordering::Relaxed);
                        let _ = db.maintain();
                    }
                }
            }
            write_frame(
                &mut stream,
                &littletable_proto::encode_response_frame(id, &resp),
            )?;
        }
    }

    fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Drives `conns` pipelined client connections against `addr`, each
/// inserting `batches` batches of `batch` rows with up to [`WINDOW`]
/// batches in flight. Returns `(rows_per_sec, p99_ack_ms)`.
fn run_clients(addr: SocketAddr, conns: usize, batch: usize, batches: usize) -> (f64, f64) {
    let t0 = Instant::now();
    let mut lat_ms: Vec<f64> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_nodelay(true).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut in_flight: VecDeque<(u64, Instant)> = VecDeque::new();
                    let mut lats = Vec::with_capacity(batches);
                    let recv_one = |reader: &mut BufReader<TcpStream>,
                                    in_flight: &mut VecDeque<(u64, Instant)>,
                                    lats: &mut Vec<f64>| {
                        let (want, sent) = in_flight.pop_front().unwrap();
                        let payload = read_frame(reader).unwrap().unwrap();
                        let (id, resp) = decode_response_frame(&payload).unwrap();
                        assert_eq!(id, want);
                        assert!(
                            matches!(resp, Response::InsertResult { .. }),
                            "unexpected {resp:?}"
                        );
                        lats.push(sent.elapsed().as_secs_f64() * 1e3);
                    };
                    for b in 0..batches {
                        while in_flight.len() >= WINDOW {
                            recv_one(&mut reader, &mut in_flight, &mut lats);
                        }
                        // Disjoint keys per connection: n is the
                        // connection index, ts strictly increases.
                        let base = (b * batch) as i64;
                        let rows: Vec<Vec<Option<Value>>> = (0..batch as i64)
                            .map(|i| {
                                vec![
                                    Some(Value::I64(c as i64)),
                                    Some(Value::Timestamp(base + i)),
                                    Some(Value::I64(base + i)),
                                ]
                            })
                            .collect();
                        let id = (b + 1) as u64;
                        write_frame(
                            &mut stream,
                            &encode_request_frame(
                                id,
                                &Request::Insert {
                                    table: TABLE.into(),
                                    rows,
                                },
                            ),
                        )
                        .unwrap();
                        in_flight.push_back((id, Instant::now()));
                    }
                    while !in_flight.is_empty() {
                        recv_one(&mut reader, &mut in_flight, &mut lats);
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            lat_ms.extend(h.join().unwrap());
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let total_rows = (conns * batch * batches) as f64;
    lat_ms.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = lat_ms[((lat_ms.len() - 1) as f64 * 0.99) as usize];
    (total_rows / elapsed, p99)
}

fn measure_nonblocking(conns: usize, batch: usize, batches: usize) -> (f64, f64) {
    let db = bench_db();
    handle_request(
        &db,
        Request::CreateTable {
            table: TABLE.into(),
            schema: ingest_schema(),
            ttl: None,
        },
    );
    let mut server = Server::bind_with(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    server.start().unwrap();
    let out = run_clients(server.local_addr(), conns, batch, batches);
    server.shutdown();
    out
}

fn measure_baseline(conns: usize, batch: usize, batches: usize) -> (f64, f64) {
    let db = bench_db();
    handle_request(
        &db,
        Request::CreateTable {
            table: TABLE.into(),
            schema: ingest_schema(),
            ttl: None,
        },
    );
    let server = ThreadPerConnServer::start(db, conns);
    let out = run_clients(server.addr, conns, batch, batches);
    server.join();
    out
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let (conn_grid, batch_grid, rows_per_cell): (&[usize], &[usize], usize) = if quick {
        (&[4, 64], &[64, 512], 1 << 17)
    } else {
        (&[1, 8, 64, 128], &[64, 512], 1 << 19)
    };

    let mut fig = FigureResult::new(
        "BENCH_ingest",
        "Pipelined ingest: nonblocking event loop vs. thread-per-connection",
        "client connections",
        "rows/s (series also report p99 batch-ack ms)",
    );

    let mut summary = Vec::new();
    for &batch in batch_grid {
        let mut nb_tp = Vec::new();
        let mut nb_p99 = Vec::new();
        let mut tc_tp = Vec::new();
        let mut tc_p99 = Vec::new();
        for &conns in conn_grid {
            let batches = (rows_per_cell / (conns * batch)).max(4);
            let (tp, p99) = measure_nonblocking(conns, batch, batches);
            nb_tp.push((conns as f64, tp));
            nb_p99.push((conns as f64, p99));
            let (tp_b, p99_b) = measure_baseline(conns, batch, batches);
            tc_tp.push((conns as f64, tp_b));
            tc_p99.push((conns as f64, p99_b));
            if conns >= 64 {
                summary.push(format!(
                    "{conns} conns, batch {batch}: nonblocking {:.0} rows/s (p99 {:.2} ms) \
                     vs thread-per-conn {:.0} rows/s (p99 {:.2} ms)",
                    tp, p99, tp_b, p99_b
                ));
            }
        }
        fig.push_series(&format!("nonblocking rows/s (batch {batch})"), nb_tp);
        fig.push_series(&format!("thread-per-conn rows/s (batch {batch})"), tc_tp);
        fig.push_series(&format!("nonblocking p99 ack ms (batch {batch})"), nb_p99);
        fig.push_series(
            &format!("thread-per-conn p99 ack ms (batch {batch})"),
            tc_p99,
        );
    }

    fig.paper(
        "no direct paper counterpart; §4's collectors ingest over persistent \
         connections in ~512-row batches",
    );
    for line in summary {
        fig.note(&line);
    }
    fig.note(&format!(
        "pipelined clients, window {WINDOW} batches in flight per connection; \
         wall-clock timing on real sockets; instant simulated disk"
    ));
    fig.note(
        "both servers speak the identical enveloped protocol and front the same \
         engine options; the variable is the connection-handling architecture \
         (poll-based worker shards + group commit vs. one blocking thread per \
         connection with per-handler maintenance)",
    );
    if quick {
        fig.note(&format!(
            "quick mode: ~{} rows per grid cell",
            rows_per_cell
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    /// Manual A/B probe of one grid cell; run with
    /// `cargo test -p littletable-bench --release -- --ignored --nocapture ingest_cell`.
    #[test]
    #[ignore]
    fn ingest_cell_probe() {
        for round in 0..3 {
            let (tp, p99) = super::measure_nonblocking(64, 64, 16);
            let (tpb, p99b) = super::measure_baseline(64, 64, 16);
            println!(
                "round {round}: nonblocking {tp:.0} rows/s (p99 {p99:.1} ms) vs \
                 baseline {tpb:.0} rows/s (p99 {p99b:.1} ms)"
            );
        }
    }

    #[test]
    fn ingest_figure_runs_smoke() {
        let dir = std::env::temp_dir().join(format!("ltingest-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        // Tiny direct grid rather than run(true): smoke-checks both
        // server paths without a multi-second perf run in unit tests.
        let (tp, p99) = super::measure_nonblocking(4, 32, 8);
        assert!(tp > 0.0 && p99 > 0.0);
        let (tp, p99) = super::measure_baseline(4, 32, 8);
        assert!(tp > 0.0 && p99 > 0.0);
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
