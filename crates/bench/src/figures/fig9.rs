//! Figure 9: distribution of rows scanned / rows returned per table
//! (§5.2.4).
//!
//! Unlike Figures 7/8/10, this one is *engine-dependent*: it measures how
//! many rows LittleTable's cursors step over (inside the key bounds but
//! outside the timestamp bounds) per row returned. We build a population
//! of tables with production-like layouts, drive each with the modelled
//! query mix, and read the engine's own scan counters.

use crate::env::SimEnv;
use crate::report::FigureResult;
use littletable_apps::usage::usage_schema;
use littletable_core::value::Value;
use littletable_core::{Options, Query};
use littletable_vfs::{DiskParams, Micros};
use littletable_workload::dist::Cdf;
use littletable_workload::queries::{sample_lookback, sample_query_kind, QueryKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MINUTE: Micros = 60 * 1_000_000;

fn num_tables(quick: bool) -> usize {
    if quick {
        6
    } else {
        24
    }
}

/// Builds and exercises one table; returns its scanned/returned ratio.
fn table_ratio(seed: u64, quick: bool) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut opts = Options::default();
    // Small flushes so the table develops a real tablet structure.
    opts.flush_size = 64 << 10;
    opts.merge_delay = 0;
    // The paper predates the Bloom-filter extension; Fig. 9's tail comes
    // from latest-for-prefix scans.
    opts.bloom_filters = false;
    let env = SimEnv::new(DiskParams::instant(), opts);
    let table = env.db.create_table("t", usage_schema(), None).unwrap();

    let networks = rng.gen_range(2..5i64);
    let devices = rng.gen_range(4..10i64);
    let hours = if quick { 4 } else { 12 };
    let history: Micros = hours * 60 * MINUTE;
    let sample_every = rng.gen_range(1..4i64) * MINUTE;

    // Populate: per-minute-ish samples, advancing the virtual clock so
    // data lands in realistic time periods.
    let start = env.now();
    while env.now() - start < history {
        let now = env.now();
        let mut rows = Vec::new();
        for n in 1..=networks {
            for d in 1..=devices {
                rows.push(vec![
                    Value::I64(n),
                    Value::I64(d),
                    Value::Timestamp(now),
                    Value::Timestamp(now - sample_every),
                    Value::I64(rng.gen_range(0..1_000_000)),
                    Value::F64(rng.gen_range(0.0..1e6)),
                ]);
            }
        }
        table.insert(rows).unwrap();
        env.clock.advance(sample_every);
        env.db.maintain().unwrap();
    }
    env.db.maintain_until_quiescent().unwrap();

    // Drive the query mix. Tables differ in how carefully their queries
    // were written (§5.2.4: "it is possible to carelessly construct
    // queries that are not optimized for LittleTable's strengths"): most
    // see the standard mix, some are hit mainly by latest-for-prefix
    // lookups, producing the distribution's tail.
    let style: f64 = rng.gen();
    let queries = if quick { 40 } else { 150 };
    let now = env.now();
    for _ in 0..queries {
        let lookback = sample_lookback(&mut rng).min(history);
        let kind = if style > 0.85 && rng.gen_bool(0.8) {
            QueryKind::LatestForPrefix
        } else if style > 0.7 && rng.gen_bool(0.5) {
            // Careless: whole-table scan for a narrow recent window.
            let q = Query::all().with_ts_range(now - 30 * MINUTE, now);
            let mut cur = table.query(&q).unwrap();
            while cur.next_row().unwrap().is_some() {}
            continue;
        } else {
            sample_query_kind(&mut rng)
        };
        match kind {
            QueryKind::DeviceScan => {
                let q = Query::all()
                    .with_prefix(vec![
                        Value::I64(rng.gen_range(1..=networks)),
                        Value::I64(rng.gen_range(1..=devices)),
                    ])
                    .with_ts_range(now - lookback, now);
                let mut cur = table.query(&q).unwrap();
                while cur.next_row().unwrap().is_some() {}
            }
            QueryKind::NetworkScan => {
                let q = Query::all()
                    .with_prefix(vec![Value::I64(rng.gen_range(1..=networks))])
                    .with_ts_range(now - lookback, now);
                let mut cur = table.query(&q).unwrap();
                while cur.next_row().unwrap().is_some() {}
            }
            QueryKind::LatestForPrefix => {
                // A partial prefix (network only): the engine must scan
                // through the prefix's rows to find the newest (§3.4.5) —
                // the inefficient tail of this figure.
                let _ = table
                    .latest(&[Value::I64(rng.gen_range(1..=networks))])
                    .unwrap();
            }
        }
    }
    table.stats().snapshot().scan_ratio()
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let n = num_tables(quick);
    let ratios: Vec<f64> = (0..n)
        .map(|i| table_ratio(0x919 + i as u64, quick))
        .collect();
    let cdf = Cdf::from_samples(ratios.clone());
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let mut fig = FigureResult::new(
        "fig9",
        "Distribution of rows scanned / rows returned by table",
        "rows scanned / rows returned",
        "cumulative fraction of tables",
    );
    fig.push_series("production-mix tables", cdf.points.clone());
    fig.paper("on average queries scan only 1.4 rows per row returned");
    fig.paper("80% of tables see a ratio of 3.3 or less");
    fig.paper("the tail comes from latest-for-prefix queries that scan many rows to return one");
    fig.note(&format!(
        "measured: mean ratio {:.2}, p80 {:.2}, max {:.1}, over {} tables",
        mean,
        cdf.quantile(0.8),
        cdf.max(),
        ratios.len()
    ));
    fig
}
