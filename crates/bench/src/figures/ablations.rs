//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Bloom filters (§3.4.5 extension) on latest-for-prefix cost;
//! * time-period binning (§3.4.2) on recent-query scan efficiency;
//! * the uniqueness fast paths (§3.4.4) on out-of-order insert cost.

use crate::env::{SimEnv, XorShift64};
use crate::figures::fig5::build_interleaved_table;
use crate::report::FigureResult;
use littletable_apps::usage::usage_schema;
use littletable_core::value::Value;
use littletable_core::{Options, Query};
use littletable_vfs::{Clock, DiskParams, Micros};

const MINUTE: Micros = 60 * 1_000_000;
const DAY: Micros = 24 * 3600 * 1_000_000;

/// Bloom ablation: latest-for-prefix over a many-tablet table, with and
/// without the per-tablet Bloom filters.
pub fn run_bloom(quick: bool) -> FigureResult {
    let tablets = if quick { 16 } else { 64 };
    let total = if quick { 8 << 20 } else { 32 << 20 };
    let mut points = Vec::new();
    for (label, bloom) in [("bloom on", true), ("bloom off", false)] {
        let mut opts = Options::default();
        opts.merge_enabled = false;
        opts.respect_periods = false;
        opts.flush_size = usize::MAX;
        opts.bloom_filters = bloom;
        let env = SimEnv::new(DiskParams::paper_disk(), opts);
        let table = build_interleaved_table(&env, total, tablets);
        // Warm footers (and blooms) as a long-running server would have.
        let mut cur = table.query(&Query::all().with_limit(1)).unwrap();
        let _ = cur.next_row().unwrap();
        drop(cur);
        env.vfs.clear_caches();
        // A prefix that exists in exactly one tablet: with blooms the
        // others are skipped without touching disk.
        let t0 = env.now();
        let seeks0 = env.vfs.model().stats().seeks;
        let mut rng = XorShift64::new(7);
        for _ in 0..8 {
            let k = rng.next_u64();
            let _ = table.latest(&[Value::I64((k >> 32) as i64)]).unwrap();
        }
        let ms = (env.now() - t0) as f64 / 1e3 / 8.0;
        let seeks = (env.vfs.model().stats().seeks - seeks0) as f64 / 8.0;
        points.push((label, ms, seeks));
    }
    let mut fig = FigureResult::new(
        "ablation_bloom",
        "Ablation: Bloom filters on latest-for-prefix (sect. 3.4.5)",
        "configuration",
        "avg latency (ms) / avg seeks",
    );
    for (i, (label, ms, seeks)) in points.iter().enumerate() {
        fig.push_series(&format!("{label}: latency ms"), vec![(i as f64, *ms)]);
        fig.push_series(&format!("{label}: seeks"), vec![(i as f64, *seeks)]);
    }
    fig.paper("Bloom filters would eliminate checking ~99% of tablets at 10 bits/row");
    fig.note(&format!(
        "with blooms {:.1} ms / {:.0} seeks per lookup; without {:.1} ms / {:.0} seeks",
        points[0].1, points[0].2, points[1].1, points[1].2
    ));
    fig
}

/// Period ablation: recent-window query efficiency over weeks of history,
/// with time-period binning on vs off.
pub fn run_periods(quick: bool) -> FigureResult {
    let days = if quick { 7 } else { 21 };
    let mut results = Vec::new();
    for (label, respect) in [("periods on", true), ("periods off", false)] {
        let mut opts = Options::default();
        opts.flush_size = 256 << 10;
        opts.merge_delay = 0;
        opts.respect_periods = respect;
        let env = SimEnv::new(DiskParams::instant(), opts);
        let table = env.db.create_table("u", usage_schema(), None).unwrap();
        // Weeks of samples, maintaining as time passes so the tablet
        // structure reflects each policy.
        let step = 10 * MINUTE;
        let start = env.now();
        while env.now() - start < days * DAY {
            let now = env.now();
            let rows: Vec<Vec<Value>> = (1..=4i64)
                .map(|d| {
                    vec![
                        Value::I64(1),
                        Value::I64(d),
                        Value::Timestamp(now),
                        Value::Timestamp(now - step),
                        Value::I64(now % 1_000_000),
                        Value::F64(1.0),
                    ]
                })
                .collect();
            table.insert(rows).unwrap();
            env.clock.advance(step);
            env.db.maintain().unwrap();
        }
        env.db.maintain_until_quiescent().unwrap();
        // The canonical Dashboard query: one device, the last two hours.
        let now = env.now();
        let q = Query::all()
            .with_prefix(vec![Value::I64(1), Value::I64(2)])
            .with_ts_range(now - 2 * 3600 * 1_000_000, now);
        let mut cur = table.query(&q).unwrap();
        while cur.next_row().unwrap().is_some() {}
        let ratio = cur.scanned() as f64 / cur.returned().max(1) as f64;
        results.push((label, ratio, table.num_disk_tablets() as f64));
    }
    let mut fig = FigureResult::new(
        "ablation_periods",
        "Ablation: time-period binning (sect. 3.4.2) on recent-query efficiency",
        "configuration",
        "rows scanned per row returned",
    );
    for (i, (label, ratio, tablets)) in results.iter().enumerate() {
        fig.push_series(&format!("{label}: scan ratio"), vec![(i as f64, *ratio)]);
        fig.push_series(&format!("{label}: tablets"), vec![(i as f64, *tablets)]);
    }
    fig.paper("without period bounds a day-query may scan 365x more rows than it returns");
    fig.note(&format!(
        "recent 2-hour query scans {:.1} rows/row with periods on vs {:.1} with periods off",
        results[0].1, results[1].1
    ));
    fig
}

/// Uniqueness-check ablation (§3.4.4): virtual cost of the duplicate
/// check by insert pattern. Timestamps newer than everything (grabbers)
/// and keys above everything in the period (aggregators) resolve from the
/// descriptor and cached indexes; keys landing *inside* existing history
/// need a point query that may block on disk — unless Bloom filters rule
/// the tablets out.
pub fn run_unique(quick: bool) -> FigureResult {
    let seed_rows = if quick { 20_000u64 } else { 100_000 };
    let insert_rows = if quick { 1_000u64 } else { 4_000 };
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for (label, pattern, bloom) in [
        ("newest timestamps (fast path 1)", 0u8, false),
        ("ascending keys in period (fast path 2)", 1, false),
        ("in-range keys, no blooms (slow path)", 2, false),
        ("in-range keys, with blooms", 2, true),
    ] {
        let mut opts = Options::default();
        opts.flush_size = 1 << 20;
        opts.merge_enabled = false;
        opts.respect_periods = false;
        opts.bloom_filters = bloom;
        let env = SimEnv::new(DiskParams::paper_disk(), opts);
        let table = env
            .db
            .create_table("u", crate::env::bench_schema(), None)
            .unwrap();
        let mut rng = XorShift64::new(0x0417);
        // Seed history: even keys, a contiguous timestamp span.
        let t_base = env.clock.now_micros();
        let mut batch = Vec::new();
        for seq in 0..seed_rows {
            batch.push(crate::env::bench_row_sequential(
                &mut rng,
                seq * 2,
                t_base + seq as i64,
                128,
            ));
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            table.insert(batch).unwrap();
        }
        table.flush_all().unwrap();
        env.vfs.clear_caches();
        let t0 = env.now();
        let seeks0 = env.vfs.model().stats().seeks;
        let mut batch = Vec::new();
        for i in 0..insert_rows {
            let (key, ts) = match pattern {
                // Newer than every existing timestamp.
                0 => (seed_rows * 2 + i, t_base + (seed_rows + i) as i64),
                // Key above everything, timestamps spread over the span.
                1 => (
                    seed_rows * 2 + i,
                    t_base + (i.wrapping_mul(7919) % seed_rows) as i64,
                ),
                // Odd keys interleave the seeded even keys: true point
                // lookups against persisted blocks, timestamps spread so
                // every tablet is a candidate.
                _ => (
                    (i.wrapping_mul(37) % seed_rows) * 2 + 1,
                    t_base + (i.wrapping_mul(7919) % seed_rows) as i64,
                ),
            };
            batch.push(crate::env::bench_row_sequential(&mut rng, key, ts, 128));
            if batch.len() == 256 {
                table.insert(std::mem::take(&mut batch)).unwrap();
                env.charge_insert_command(256, 256 * 128);
            }
        }
        if !batch.is_empty() {
            let n = batch.len();
            table.insert(batch).unwrap();
            env.charge_insert_command(n, n * 128);
        }
        let elapsed = (env.now() - t0) as f64 / 1e6;
        let seeks = (env.vfs.model().stats().seeks - seeks0) as f64 / insert_rows as f64;
        results.push((label.to_string(), insert_rows as f64 / elapsed, seeks));
    }
    let mut fig = FigureResult::new(
        "ablation_unique",
        "Ablation: uniqueness-check cost by insert pattern (sect. 3.4.4)",
        "pattern",
        "inserts/second (virtual)",
    );
    for (i, (label, rate, seeks)) in results.iter().enumerate() {
        fig.push_series(
            &format!("{label} ({seeks:.2} seeks/row)"),
            vec![(i as f64, *rate)],
        );
    }
    fig.paper(
        "most inserts use timestamps set to the current time, so the descriptor check is common",
    );
    fig.paper("aggregators insert in ascending key order, resolved from cached indexes");
    fig.paper("remaining inserts may wait on disk; Bloom filters (future work) would skip ~99% of tablets");
    fig.note(&format!(
        "rates: fast1 {:.0}/s, fast2 {:.0}/s, slow(no bloom) {:.0}/s, slow(bloom) {:.0}/s",
        results[0].1, results[1].1, results[2].1, results[3].1
    ));
    fig
}
