//! Figure 5: query throughput vs. number of tablets (§5.1.5).
//!
//! A fixed amount of 128-byte-row data is spread across a varying number
//! of tablets whose key ranges fully interleave (keys are random, tablets
//! partition time), so a full-table scan merge-reads from every tablet at
//! once and the disk arm seeks back and forth between them. Run at the
//! default 128 kB OS readahead and again at 1 MB.

use crate::env::{bench_row, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::table::Table;
use littletable_core::{Options, Query};
use littletable_vfs::{Clock, DiskParams};
use std::sync::Arc;

/// Total logical bytes in the table.
fn table_bytes(quick: bool) -> usize {
    if quick {
        16 << 20
    } else {
        128 << 20
    }
}

/// Builds a table of `total` bytes of 128 B random-key rows split into
/// exactly `tablets` on-disk tablets, and returns it.
pub fn build_interleaved_table(env: &SimEnv, total: usize, tablets: usize) -> Arc<Table> {
    const ROW: usize = 128;
    let table = env
        .db
        .create_table("scan", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xF165);
    let rows_total = total / ROW;
    let per_tablet = rows_total / tablets;
    let mut seq = 0u64;
    for _ in 0..tablets {
        let mut batch = Vec::with_capacity(1024);
        for _ in 0..per_tablet {
            seq += 1;
            // Random keys: every tablet spans the whole key space, so a
            // scan interleaves across all of them (ts increments keep the
            // fast uniqueness path hot).
            batch.push(bench_row(
                &mut rng,
                seq,
                env.clock.now_micros() + seq as i64,
                ROW,
            ));
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            table.insert(batch).unwrap();
        }
        table.flush_all().unwrap();
    }
    assert_eq!(table.num_disk_tablets(), tablets);
    table
}

fn scan_throughput_mb_s(readahead: u64, total: usize, tablets: usize) -> f64 {
    let mut opts = Options::default();
    opts.merge_enabled = false;
    opts.respect_periods = false;
    opts.flush_size = usize::MAX;
    let env = SimEnv::new(DiskParams::paper_disk().with_os_readahead(readahead), opts);
    let table = build_interleaved_table(&env, total, tablets);
    // Warm the engine's footer caches (a long-running server keeps them
    // "almost indefinitely", §3.2) so the measurement is the data path;
    // then clear the disk-side caches as the paper does.
    {
        let mut warm = table.query(&Query::all().with_limit(1)).unwrap();
        let _ = warm.next_row().unwrap();
    }
    env.vfs.clear_caches();
    let t0 = env.now();
    let mut cur = table.query(&Query::all()).unwrap();
    let mut rows = 0u64;
    while cur.next_row().unwrap().is_some() {
        rows += 1;
    }
    env.charge_scan(rows);
    let elapsed = (env.now() - t0) as f64 / 1e6;
    (rows as f64 * 128.0) / 1e6 / elapsed
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let total = table_bytes(quick);
    let tablet_counts: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let mut fig = FigureResult::new(
        "fig5",
        "Query throughput vs. number of tablets",
        "tablets",
        "read throughput (MB/s)",
    );
    for (label, ra) in [
        ("128 kB readahead", 128u64 << 10),
        ("1 MB readahead", 1 << 20),
    ] {
        let points: Vec<(f64, f64)> = tablet_counts
            .iter()
            .map(|&t| (t as f64, scan_throughput_mb_s(ra, total, t)))
            .collect();
        fig.push_series(label, points);
    }
    fig.paper("throughput falls as the arm seeks between tablets");
    fig.paper("levels off near 24 MB/s at 128 kB readahead (drive cache helping)");
    fig.paper("levels off near 40 MB/s at 1 MB readahead");
    fig.note(&format!(
        "table holds {} MB (paper: 2 GB); random keys interleave every tablet",
        total >> 20
    ));
    fig
}
