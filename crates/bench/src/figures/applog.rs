//! Appendix verification: the merge policy's logarithmic bounds, measured
//! on the real engine, plus the write-amplification comparison against an
//! indiscriminate single-tablet merge policy.

use crate::env::{bench_row, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::Options;
use littletable_vfs::{Clock, DiskParams};

/// Runs the appendix checks.
pub fn run(quick: bool) -> FigureResult {
    // Build a table as a long sequence of small flushes (one tablet
    // each), then merge to a fixed point and compare the surviving tablet
    // count and the bytes rewritten against the appendix bounds.
    let flushes = if quick { 32 } else { 128 };
    let rows_per_flush = 512;
    let mut opts = Options::default();
    opts.merge_delay = 0;
    opts.respect_periods = false;
    opts.flush_size = usize::MAX;
    opts.max_tablet_size = u64::MAX;
    let env = SimEnv::new(DiskParams::instant(), opts);
    let table = env
        .db
        .create_table("app", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xA110);
    let mut seq = 0u64;
    let mut count_series = Vec::new();
    for f in 0..flushes {
        let rows: Vec<_> = (0..rows_per_flush)
            .map(|i| {
                seq += 1;
                bench_row(&mut rng, seq, env.clock.now_micros() + i, 128)
            })
            .collect();
        table.insert(rows).unwrap();
        table.flush_all().unwrap();
        // Merge to quiescence after every flush, as a merge thread with no
        // delay would.
        while table.run_merge_once(env.now()).unwrap() {}
        count_series.push(((f + 1) as f64, table.num_disk_tablets() as f64));
    }
    let snap = table.stats().snapshot();
    let total_flushed = snap.bytes_flushed as f64;
    let rewrite_factor = snap.bytes_merge_written as f64 / total_flushed;
    let final_count = table.num_disk_tablets() as f64;
    let rows_total = (flushes * rows_per_flush) as f64;
    let log_bound = (rows_total * 128.0 + 1.0).log2();

    // The indiscriminate alternative: always keep one tablet, so every
    // flush rewrites the whole table. Bytes written follow analytically.
    let mut naive_written = 0f64;
    let mut naive_size = 0f64;
    let flush_bytes = total_flushed / flushes as f64;
    for _ in 0..flushes {
        naive_size += flush_bytes;
        naive_written += naive_size; // rewrite everything each time
    }
    let naive_factor = naive_written / total_flushed;

    let mut fig = FigureResult::new(
        "applog",
        "Appendix: logarithmic merge bounds (and the naive alternative)",
        "flushes",
        "on-disk tablets after merging",
    );
    fig.push_series("tablet count at fixed point", count_series);
    fig.paper("final tablet count is O(log T): n <= log2(T + 1)");
    fig.paper("each row is rewritten O(log T) times");
    fig.note(&format!(
        "final tablets {final_count} vs log2(T) bound {log_bound:.1}; rewrite factor {rewrite_factor:.1} (naive single-tablet policy would be {naive_factor:.1}x)"
    ));
    assert!(
        final_count <= log_bound + 1.0,
        "tablet count exceeded the appendix bound"
    );
    fig
}
