//! BENCH_contention: reader query latency with background maintenance
//! on vs. off.
//!
//! Not a figure from the paper — it characterises this implementation's
//! snapshot-isolated read path. Readers resolve their tablet view from
//! an atomically published snapshot (one atomic load, no mutex), so a
//! concurrent maintenance thread driving flushes and merges should cost
//! readers throughput (CPU sharing) but not latency outliers (lock
//! waits). The figure reports p50 and p99 point-read latency, measured
//! in *wall-clock* time on real threads — unlike the virtual-time
//! figures, lock contention is exactly the quantity under test, so the
//! simulated disk is configured instant and the host clock does the
//! timing.

use crate::env::{bench_row_sequential, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::value::Value;
use littletable_core::{Options, Query};
use littletable_vfs::DiskParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

const ROW: usize = 128;

/// Builds one fully merged tablet of `rows` sequential keys that the
/// readers will probe; maintenance traffic lands in a disjoint key
/// range so every probe still returns exactly one row.
fn build(env: &SimEnv, rows: u64) -> std::sync::Arc<littletable_core::Table> {
    let table = env
        .db
        .create_table("contention", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xC047E);
    let mut batch = Vec::with_capacity(1024);
    for seq in 1..=rows {
        batch.push(bench_row_sequential(
            &mut rng,
            seq,
            1_700_000_000_000_000 + seq as i64,
            ROW,
        ));
        if batch.len() == 1024 {
            table.insert(std::mem::take(&mut batch)).unwrap();
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(env.db.now()).unwrap() {}
    table
}

/// Runs `probes` point reads on the reader thread, with (or without) a
/// background thread continuously inserting, flushing, and merging.
/// Returns (p50, p99) wall-clock latency in microseconds.
fn measure(merges_on: bool, rows: u64, probes: usize) -> (f64, f64) {
    let env = SimEnv::new(DiskParams::instant(), Options::small_for_tests());
    let table = build(&env, rows);
    let done = AtomicBool::new(false);
    let mut samples = vec![0u64; probes];

    std::thread::scope(|s| {
        if merges_on {
            let table = table.clone();
            let db = &env.db;
            let done = &done;
            s.spawn(move || {
                // Background churn: every pass inserts a batch into a
                // key range the readers never probe, flushes it to disk,
                // and merges — each commit republishes the snapshot and
                // holds the table's state mutex while it does.
                let mut rng = XorShift64::new(0xBAD_CAFE);
                let mut seq = 1u64 << 40;
                while !done.load(Ordering::SeqCst) {
                    let batch: Vec<_> = (0..256)
                        .map(|i| {
                            bench_row_sequential(
                                &mut rng,
                                seq + i,
                                1_700_000_000_000_000 + (seq + i) as i64,
                                ROW,
                            )
                        })
                        .collect();
                    seq += 256;
                    table.insert(batch).unwrap();
                    table.flush_all().unwrap();
                    table.run_merge_once(db.now()).unwrap();
                }
            });
        }

        // Warm pass so the measured loop sees a steady-state cache.
        let mut rng = XorShift64::new(0x5EED + merges_on as u64);
        let probe = |rng: &mut XorShift64| {
            let seq = rng.next_u64() % rows + 1;
            let q = Query::all().with_prefix(vec![Value::I64(seq as i64)]);
            let got = table.query_all(&q).unwrap();
            assert_eq!(got.len(), 1);
        };
        for _ in 0..probes / 4 {
            probe(&mut rng);
        }
        for sample in samples.iter_mut() {
            let t0 = Instant::now();
            probe(&mut rng);
            *sample = t0.elapsed().as_nanos() as u64;
        }
        done.store(true, Ordering::SeqCst);
    });

    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    (pct(0.50), pct(0.99))
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let (rows, probes) = if quick {
        (5_000u64, 1_000)
    } else {
        (50_000u64, 20_000)
    };
    let (p50_off, p99_off) = measure(false, rows, probes);
    let (p50_on, p99_on) = measure(true, rows, probes);

    let mut fig = FigureResult::new(
        "bench_contention",
        "Point-read latency vs. background maintenance (wall clock)",
        "background merges (0 = off, 1 = on)",
        "point-read latency (us)",
    );
    fig.push_series("p50 latency (us)", vec![(0.0, p50_off), (1.0, p50_on)]);
    fig.push_series("p99 latency (us)", vec![(0.0, p99_off), (1.0, p99_on)]);
    fig.paper("no direct paper counterpart; §3.3's merges run while readers keep querying");
    fig.note(&format!(
        "merges off: p50 {p50_off:.1} us, p99 {p99_off:.1} us; \
         merges on: p50 {p50_on:.1} us, p99 {p99_on:.1} us"
    ));
    fig.note(
        "readers resolve tablets from the published snapshot (one atomic load, \
         no state mutex), so background flush/merge commits add CPU pressure \
         but no lock-wait tail",
    );
    fig.note("wall-clock timing on real threads; instant simulated disk");
    if quick {
        fig.note(&format!(
            "quick mode: {rows} rows, {probes} probes per config"
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    #[test]
    fn contention_figure_runs_quick() {
        let dir = std::env::temp_dir().join(format!("ltcontend-smoke-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let fig = super::run(true);
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            for &(_, us) in &series.points {
                assert!(us > 0.0, "latency sample must be positive, got {us}");
            }
        }
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
