//! The paper's headline microbenchmark claims (§1, §5.1):
//!
//! * first matching row from an uncached table of 128-byte rows in 31 ms;
//! * 500,000 rows/second returned thereafter (~50% of disk throughput);
//! * 512×128 B insert batches accepted at 42% of the disk's peak;
//! * write amplification 2 under sustained insert load with merging.

use crate::env::{bench_row_sequential, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::value::Value;
use littletable_core::{Db, Options, Query};
use littletable_vfs::{Clock, DiskParams};
use std::sync::Arc;

/// Measures `(first_row_ms, rows_per_second)` on an uncached table of
/// 128-byte rows.
pub fn first_row_and_scan_rate(quick: bool) -> (f64, f64) {
    let mut opts = Options::default();
    opts.merge_enabled = false;
    opts.respect_periods = false;
    opts.flush_size = usize::MAX;
    // The paper's system has no Bloom filters; they would inflate the
    // cold footer read being measured.
    opts.bloom_filters = false;
    let env = SimEnv::new(DiskParams::paper_disk(), opts.clone());
    let table = env
        .db
        .create_table("h", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xEAD);
    let rows_total = if quick { 16 << 10 } else { 128 << 10 }; // 2-16 MB
    let mut batch = Vec::with_capacity(1024);
    for seq in 1..=rows_total {
        batch.push(bench_row_sequential(
            &mut rng,
            seq,
            env.clock.now_micros() + seq as i64,
            128,
        ));
        if batch.len() == 1024 {
            table.insert(std::mem::take(&mut batch)).unwrap();
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    // Uncached: fresh engine (cold footers), cold disk caches.
    let db = Db::open(Arc::new(env.vfs.clone()), Arc::new(env.clock.clone()), opts).unwrap();
    env.vfs.clear_caches();
    let t2 = db.table("h").unwrap();
    let t0 = env.now();
    let mut cur = t2
        .query(&Query::all().with_key_min(vec![Value::I64(1)], true))
        .unwrap();
    let first = cur.next_row().unwrap();
    assert!(first.is_some());
    let first_ms = (env.now() - t0) as f64 / 1e3;
    let mut rows = 1u64;
    while cur.next_row().unwrap().is_some() {
        rows += 1;
    }
    env.charge_scan(rows);
    let total_s = (env.now() - t0) as f64 / 1e6;
    (first_ms, rows as f64 / total_s)
}

/// Runs the headline table.
pub fn run(quick: bool) -> FigureResult {
    let (first_ms, rows_per_s) = first_row_and_scan_rate(quick);
    let insert_mb_s = crate::figures::fig2::insert_throughput_mb_s(
        128,
        64 << 10,
        if quick { 8 << 20 } else { 64 << 20 },
    );
    let insert_frac = insert_mb_s / 120.0;
    let (_, amplification) = crate::figures::fig3::run_with_amplification(true);
    let mut fig = FigureResult::new(
        "headline",
        "Headline microbenchmark claims (sect. 1 / 5.1)",
        "metric",
        "value",
    );
    fig.push_series("first matching row, uncached (ms)", vec![(0.0, first_ms)]);
    fig.push_series("scan rate (rows/s)", vec![(0.0, rows_per_s)]);
    fig.push_series(
        "insert, 512 x 128 B batches (fraction of disk peak)",
        vec![(0.0, insert_frac)],
    );
    fig.push_series(
        "write amplification under merge",
        vec![(0.0, amplification)],
    );
    fig.paper("first matching row in 31 ms");
    fig.paper("500,000 rows/second thereafter (~50% of disk throughput)");
    fig.paper("batches of 512 x 128 B rows at 42% of the disk's peak throughput");
    fig.paper("write amplification factor of 2 (sect. 5.1.3)");
    fig.note(&format!(
        "measured: first row {first_ms:.1} ms; scan {rows_per_s:.0} rows/s; insert {:.0}% of peak; amplification {amplification:.2}",
        insert_frac * 100.0
    ));
    fig
}
