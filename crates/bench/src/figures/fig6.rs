//! Figure 6: first-row latency vs. number of tablets (§5.1.6).
//!
//! Queries for a random key against a table of 16 MB tablets, with the
//! query's timestamp bounds covering 1–32 tablets. The first query on a
//! cold system pays ~4 seeks per tablet (inode, trailer, footer, block);
//! a second query — with the footers now cached in engine memory — pays
//! ~1 seek per tablet. The paper measures slopes of 30.3 ms and 8.3 ms
//! per tablet.

use crate::env::{bench_row, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::value::Value;
use littletable_core::{Db, Options, Query};
use littletable_vfs::{Clock, DiskParams};
use std::sync::Arc;

const ROW: usize = 128;
const TABLET_BYTES: usize = 16 << 20;

fn tablet_bytes(quick: bool) -> usize {
    if quick {
        TABLET_BYTES / 16
    } else {
        TABLET_BYTES
    }
}

/// Builds `tablets` sequential-key tablets and returns the total row
/// count.
fn build(env: &SimEnv, tablets: usize, bytes_per_tablet: usize) -> u64 {
    let table = env
        .db
        .create_table("lat", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0xF166);
    let per_tablet = bytes_per_tablet / ROW;
    let mut seq = 0u64;
    for _ in 0..tablets {
        let mut batch = Vec::with_capacity(1024);
        for _ in 0..per_tablet {
            seq += 1;
            // Random keys: every tablet spans the whole key space, so a
            // point query must read one block from each (the paper's
            // setup: "queries for random keys").
            batch.push(bench_row(
                &mut rng,
                seq,
                env.clock.now_micros() + seq as i64,
                ROW,
            ));
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
        if !batch.is_empty() {
            table.insert(batch).unwrap();
        }
        table.flush_all().unwrap();
    }
    seq
}

/// Measures the virtual first-row latency of a query seeking the first
/// key at or above a random point.
fn first_row_latency_ms(env: &SimEnv, db: &Db, k1: i64) -> f64 {
    let table = db.table("lat").unwrap();
    let q = Query::all().with_key_min(vec![Value::I64(k1)], true);
    let t0 = env.now();
    let mut cur = table.query(&q).unwrap();
    let row = cur.next_row().unwrap();
    assert!(row.is_some(), "a key above {k1} should exist");
    (env.now() - t0) as f64 / 1e3
}

/// Least-squares slope of `(x, y)` points.
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let tablet_counts: &[usize] = if quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24, 32]
    };
    let bpt = tablet_bytes(quick);
    let mut first_points = Vec::new();
    let mut second_points = Vec::new();
    for &t in tablet_counts {
        let mut opts = Options::default();
        opts.merge_enabled = false;
        opts.respect_periods = false;
        opts.flush_size = usize::MAX;
        // The paper's system predates the Bloom-filter extension; blooms
        // would inflate the cold footer reads measured here.
        opts.bloom_filters = false;
        let env = SimEnv::new(DiskParams::paper_disk(), opts.clone());
        let total_rows = build(&env, t, bpt);
        // Reopen the engine so footers are cold, and clear all disk
        // caches — the paper's procedure before each query pair.
        let db = Db::open(Arc::new(env.vfs.clone()), Arc::new(env.clock.clone()), opts).unwrap();
        env.vfs.clear_caches();
        let _ = total_rows;
        let mut rng = XorShift64::new(t as u64 + 1);
        // Random points in the key space (keys' k1 is a random u32 << 32,
        // so any mid-range value has keys above it in every tablet).
        let k1 = (rng.next_u64() % (u32::MAX as u64 / 2)) as i64;
        let k2 = ((rng.next_u64() % (u32::MAX as u64 / 2)) + u32::MAX as u64 / 4) as i64;
        first_points.push((t as f64, first_row_latency_ms(&env, &db, k1)));
        second_points.push((t as f64, first_row_latency_ms(&env, &db, k2)));
    }
    let s1 = slope(&first_points);
    let s2 = slope(&second_points);
    let mut fig = FigureResult::new(
        "fig6",
        "First-row latency vs. number of tablets",
        "tablets",
        "first-row latency (ms)",
    );
    fig.push_series("first query (cold footers)", first_points);
    fig.push_series("second query (footers cached)", second_points);
    fig.paper("first-query slope 30.3 ms/tablet (~4 seeks: inode, trailer, footer, block)");
    fig.paper("second-query slope 8.3 ms/tablet (~1 seek: the data block)");
    fig.note(&format!(
        "measured slopes: first {:.1} ms/tablet, second {:.1} ms/tablet",
        s1, s2
    ));
    if quick {
        fig.note("quick mode: tablets are 1 MB, not 16 MB");
    }
    fig
}
