//! Figure 2: insert throughput vs batch size and row size (§5.1.2).
//!
//! Solid line: 128-byte rows, batch sizes 256 B – 1 MB.
//! Dashed line: 64 kB batches, row sizes 32 B – 32 kB.
//!
//! The paper inserts 500 MB per point; we insert a scaled amount
//! (noted on the figure) — throughput converges well before that.

use crate::env::{bench_row, SimEnv, XorShift64};
use crate::report::FigureResult;
use littletable_core::Options;
use littletable_vfs::{Clock, DiskParams};

/// Bytes inserted per point.
fn data_bytes(quick: bool) -> usize {
    if quick {
        8 << 20
    } else {
        64 << 20
    }
}

/// Measures single-writer insert throughput in MB/s for one
/// configuration.
pub fn insert_throughput_mb_s(row_bytes: usize, batch_bytes: usize, total_bytes: usize) -> f64 {
    let env = SimEnv::new(DiskParams::paper_disk(), Options::default());
    let table = env
        .db
        .create_table("bench", crate::env::bench_schema(), None)
        .unwrap();
    let mut rng = XorShift64::new(0x51C2_D00D);
    let rows_per_batch = (batch_bytes / row_bytes).max(1);
    let mut inserted = 0usize;
    let mut seq = 0u64;
    let t0 = env.now();
    while inserted < total_bytes {
        let ts_base = env.clock.now_micros();
        let rows: Vec<_> = (0..rows_per_batch)
            .map(|i| {
                seq += 1;
                bench_row(&mut rng, seq, ts_base + i as i64, row_bytes)
            })
            .collect();
        let bytes = rows_per_batch * row_bytes;
        table.insert(rows).unwrap();
        env.charge_insert_command(rows_per_batch, bytes);
        // The flusher runs concurrently in production; in the serial
        // virtual timeline its disk time lands inline here.
        table.flush_next_group().unwrap();
        inserted += bytes;
    }
    // Include the trailing flush: sustained throughput covers the disk
    // work the data eventually costs, as in the paper's sustained runs.
    table.flush_all().unwrap();
    let elapsed = (env.now() - t0) as f64 / 1e6;
    inserted as f64 / 1e6 / elapsed
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    let total = data_bytes(quick);
    let mut fig = FigureResult::new(
        "fig2",
        "Insert throughput vs. row and batch size",
        "bytes (batch or row)",
        "throughput (MB/s)",
    );

    // Solid line: 128-byte rows, varying batch size.
    let batch_sizes: &[usize] = &[
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ];
    let solid: Vec<(f64, f64)> = batch_sizes
        .iter()
        .map(|&b| (b as f64, insert_throughput_mb_s(128, b, total)))
        .collect();
    fig.push_series("varying batch size (128 B rows)", solid);

    // Dashed line: 64 kB batches, varying row size.
    let row_sizes: &[usize] = &[
        64,
        128,
        256,
        512,
        1 << 10,
        2 << 10,
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
    ];
    let dashed: Vec<(f64, f64)> = row_sizes
        .iter()
        .map(|&r| (r as f64, insert_throughput_mb_s(r, 64 << 10, total)))
        .collect();
    fig.push_series("varying row size (64 kB batches)", dashed);

    fig.paper("throughput rises with batch size as per-command overhead amortizes");
    fig.paper("row-size sweep spans 12% (32 B rows) to 63% (4 kB) of the 120 MB/s disk peak");
    fig.paper("512 x 128 B batches (64 kB) insert at 42% of disk peak (headline)");
    fig.note(&format!(
        "each point inserts {} MB (paper: 500 MB); virtual-time disk model + calibrated CPU model",
        total >> 20
    ));
    fig
}
