//! BENCH_scan: row-v2 versus columnar-v3 block layout on a telemetry
//! workload — bytes on disk and scan/aggregate throughput.
//!
//! Not a figure from the paper — it characterises this implementation's
//! footer-v3 columnar blocks (per-column slices with time-series codecs
//! and zone maps) against the row-oriented v2 layout on the same data.
//! A merged tablet of per-device counter samples is measured four ways:
//!
//! 1. full scan (`query_all`, every row decoded),
//! 2. filtered scan (a 10% time window over the same rows),
//! 3. `SUM` aggregate via `pushdown_scan` (values must be read, but the
//!    columnar path touches only the summed column's slices),
//! 4. `COUNT`/`MIN`/`MAX` aggregate via `pushdown_scan` with footer
//!    statistics allowed (the columnar path answers from zone maps
//!    without reading block bytes at all).
//!
//! Both formats run the same API: on row-v2 tablets `pushdown_scan`
//! falls back to materialized row batches, so the deltas isolate the
//! layout. Disk time is virtual (the simulated paper disk, caches
//! cleared before each measured pass); decode CPU is charged per
//! materialized row from the engine's own counter, so a pass that skips
//! materialization skips its CPU too.

use crate::env::{SimEnv, CPU_PER_COMMAND, CPU_PER_SCAN_ROW};
use crate::report::FigureResult;
use littletable_core::block::BlockFormat;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::table::{ColumnPredicate, PredOp, PushdownRequest, ScanUnit};
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Options, Query, Table};
use littletable_vfs::{DiskParams, Micros, MICROS_PER_SEC};
use std::sync::Arc;

const START: Micros = 1_700_000_000 * MICROS_PER_SEC;
/// Sample period: one row per device per 10 s, the paper's poll cadence.
const PERIOD: Micros = 10 * MICROS_PER_SEC;

/// Telemetry schema: per-device interface counters, keyed (device, ts).
fn scan_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("device", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("bytes", ColumnType::I64),
            ColumnDef::new("errs", ColumnType::I64),
            ColumnDef::new("load", ColumnType::F64),
        ],
        &["device", "ts"],
    )
    .expect("scan schema is valid")
}

/// One device's sample `k`: a smooth counter, a mostly-zero error count,
/// and a slowly drifting gauge — the shapes the v3 codecs target.
fn sample(d: u64, k: u64) -> Vec<Value> {
    vec![
        Value::I64(d as i64),
        Value::Timestamp(START + k as Micros * PERIOD),
        Value::I64((d as i64) * 1_000_000 + (k as i64) * 37 + (k as i64 % 16)),
        Value::I64(if (d + k).is_multiple_of(97) {
            (k % 5) as i64
        } else {
            0
        }),
        Value::F64(d as f64 + (k / 64) as f64 * 0.25),
    ]
}

/// Builds one fully merged tablet of `devices * samples` telemetry rows
/// under the given block format.
fn build(format: BlockFormat, devices: u64, samples: u64) -> (SimEnv, Arc<Table>) {
    let opts = Options {
        block_format: format,
        // No engine block cache: every pass runs the paper's uncached
        // read path, so disk bytes (the layouts' difference) are paid.
        block_cache_bytes: 0,
        // The full scan covers every row in one cursor, not in pages.
        server_row_limit: usize::MAX,
        ..Options::default()
    };
    let env = SimEnv::new(DiskParams::paper_disk(), opts);
    let table = env.db.create_table("scan", scan_schema(), None).unwrap();
    let mut batch = Vec::with_capacity(1024);
    for d in 0..devices {
        for k in 0..samples {
            batch.push(sample(d, k));
            if batch.len() == 1024 {
                table.insert(std::mem::take(&mut batch)).unwrap();
            }
        }
    }
    if !batch.is_empty() {
        table.insert(batch).unwrap();
    }
    table.flush_all().unwrap();
    while table.run_merge_once(env.db.now()).unwrap() {}
    (env, table)
}

/// Runs `op` against a cold disk, charging decode CPU per row the engine
/// materialized, and returns rows-per-second of virtual time for the
/// `rows` rows the operation covered.
fn timed(env: &SimEnv, table: &Table, rows: u64, op: impl FnOnce() -> u64) -> f64 {
    env.vfs.clear_caches();
    let before = table.stats().snapshot().rows_materialized;
    let t0 = env.now();
    let covered = op();
    assert_eq!(covered, rows, "operation covered an unexpected row count");
    let materialized = table.stats().snapshot().rows_materialized - before;
    env.charge_cpu(CPU_PER_COMMAND + materialized as f64 * CPU_PER_SCAN_ROW);
    let secs = (env.now() - t0) as f64 / 1e6;
    rows as f64 / secs.max(1e-9)
}

/// `SUM(bytes)`-shaped pushdown: values must be read (`stats_cols:
/// None`), so columnar tablets stream the `bytes` column slices while
/// row tablets fall back to materialized rows. Returns (rows, sum).
fn pushdown_sum(table: &Table, req: &PushdownRequest) -> (u64, i128) {
    let mut rows = 0u64;
    let mut sum = 0i128;
    table
        .pushdown_scan(req, &mut |unit| {
            match unit {
                ScanUnit::Stats { .. } => unreachable!("stats forbidden for SUM"),
                ScanUnit::Block { block, uncertain } => {
                    let col = block.column(2).unwrap();
                    for ri in 0..block.len() {
                        let ok = uncertain.iter().all(|&pi| {
                            let p = &req.predicates[pi];
                            p.matches(&block.column(p.col).unwrap().value(ri))
                        });
                        if ok {
                            rows += 1;
                            if let Value::I64(v) = col.value(ri) {
                                sum += v as i128;
                            }
                        }
                    }
                }
                ScanUnit::Rows(batch) => {
                    for row in batch {
                        rows += 1;
                        if let Value::I64(v) = row.values[2] {
                            sum += v as i128;
                        }
                    }
                }
            }
            Ok(())
        })
        .unwrap();
    (rows, sum)
}

/// `COUNT(*)`/`MIN`/`MAX(bytes)`-shaped pushdown: footer statistics
/// allowed, so contained columnar blocks answer without being read.
fn pushdown_stats(table: &Table, req: &PushdownRequest) -> u64 {
    let mut rows = 0u64;
    table
        .pushdown_scan(req, &mut |unit| {
            match unit {
                ScanUnit::Stats { rows: n, .. } => rows += n,
                ScanUnit::Block { block, uncertain } => {
                    assert!(uncertain.is_empty(), "no predicates in this request");
                    rows += block.len() as u64;
                }
                ScanUnit::Rows(batch) => rows += batch.len() as u64,
            }
            Ok(())
        })
        .unwrap();
    rows
}

/// Per-format measurements: disk bytes plus rows/s for the four ops.
struct FormatRun {
    disk_mb: f64,
    ops: [f64; 4],
    sum: i128,
}

fn measure(format: BlockFormat, devices: u64, samples: u64) -> FormatRun {
    let total = devices * samples;
    let (env, table) = build(format, devices, samples);
    let disk_mb = table.disk_bytes() as f64 / (1 << 20) as f64;

    // 1. Full scan: every row decoded through the cursor.
    let full = timed(&env, &table, total, || {
        table.query_all(&Query::all()).unwrap().len() as u64
    });

    // 2. Filtered scan: the most recent 10% of the time range.
    let ts_lo = START + (samples - samples / 10) as Micros * PERIOD;
    let ts_hi = START + samples as Micros * PERIOD;
    let window = Query::all().with_ts_range(ts_lo, ts_hi);
    let filtered = timed(&env, &table, devices * (samples / 10), || {
        table.query_all(&window).unwrap().len() as u64
    });

    // 3. SUM(bytes) over the same window: values required.
    let sum_req = PushdownRequest {
        query: window.clone(),
        predicates: vec![ColumnPredicate {
            col: 3,
            op: PredOp::Ge,
            value: Value::I64(0),
        }],
        stats_cols: None,
    };
    let mut sum = 0i128;
    let agg_sum = timed(&env, &table, devices * (samples / 10), || {
        let (rows, s) = pushdown_sum(&table, &sum_req);
        sum = s;
        rows
    });

    // 4. COUNT/MIN/MAX(bytes) over everything: footer stats suffice.
    let stats_req = PushdownRequest {
        query: Query::all(),
        predicates: Vec::new(),
        stats_cols: Some(vec![2]),
    };
    let agg_stats = timed(&env, &table, total, || pushdown_stats(&table, &stats_req));

    FormatRun {
        disk_mb,
        ops: [full, filtered, agg_sum, agg_stats],
        sum,
    }
}

/// Runs the figure.
pub fn run(quick: bool) -> FigureResult {
    // Long per-device runs: each device's samples span several blocks,
    // so most blocks carry a tight timestamp zone (only the blocks
    // straddling a device boundary wrap), and the filtered window can
    // prune the rest.
    // Sized so transfer time dominates seek time on the paper disk
    // (the tablets span many 128 kB readahead windows) — otherwise the
    // layouts' byte difference is hidden behind fixed seek costs.
    let (devices, samples) = if quick {
        (8u64, 2500u64)
    } else {
        (40u64, 50_000u64)
    };
    let row = measure(BlockFormat::Row, devices, samples);
    let col = measure(BlockFormat::Columnar, devices, samples);
    assert_eq!(row.sum, col.sum, "formats must agree on SUM(bytes)");

    let mut fig = FigureResult::new(
        "BENCH_scan",
        "Row-v2 vs columnar-v3: scan and aggregate throughput",
        "operation (0 full scan, 1 filtered scan, 2 SUM pushdown, 3 COUNT/MIN/MAX pushdown)",
        "million rows/s (virtual time)",
    );
    let ops = |r: &FormatRun| {
        r.ops
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v / 1e6))
            .collect()
    };
    fig.push_series("row-v2", ops(&row));
    fig.push_series("columnar-v3", ops(&col));
    fig.push_series(
        "bytes on disk (MB; x: 0 row-v2, 1 columnar-v3)",
        vec![(0.0, row.disk_mb), (1.0, col.disk_mb)],
    );
    fig.paper(
        "Not in the paper: characterises the v3 columnar layout (§3.2's block format evolved).",
    );
    fig.note(&format!(
        "{} rows ({} devices x {} samples), fully merged; disk {:.2} MB row-v2 vs {:.2} MB columnar-v3 ({:.2}x smaller)",
        devices * samples,
        devices,
        samples,
        row.disk_mb,
        col.disk_mb,
        row.disk_mb / col.disk_mb.max(1e-9),
    ));
    fig.note(&format!(
        "SUM pushdown {:.2}x faster, COUNT/MIN/MAX from footer stats {:.2}x faster on columnar-v3",
        col.ops[2] / row.ops[2].max(1e-9),
        col.ops[3] / row.ops[3].max(1e-9),
    ));
    fig
}
