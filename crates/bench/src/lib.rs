//! Benchmark harness regenerating every table and figure of the
//! LittleTable paper's evaluation (§5).
//!
//! Each figure has a binary (`cargo run -p littletable-bench --release
//! --bin fig2` and friends) that prints the regenerated series alongside
//! the paper's reference numbers and writes JSON to `target/figures/`.
//! `--bin all_figures` runs the full set. Pass `--quick` for a reduced,
//! CI-sized run.
//!
//! Methodology: the real engine runs against the simulated spinning disk
//! of `littletable-vfs` (seeks, transfers, and readahead measured in
//! virtual time) plus an explicit CPU-cost model calibrated once against
//! the paper's headline throughput numbers — see the `env` module.

#![warn(missing_docs)]
#![allow(clippy::field_reassign_with_default)]

pub mod env;
pub mod figures;
pub mod report;

/// True when `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
