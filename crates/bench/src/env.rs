//! The benchmark environment: the real engine on the simulated disk, plus
//! an explicit CPU-cost model.
//!
//! Every figure harness runs the actual storage engine against
//! [`SimVfs`], so all disk behaviour (seeks, readahead, flush and merge
//! I/O) is *measured* from real engine execution, in virtual time. What
//! the simulated disk cannot see is CPU cost — the 2013-era Xeon cycles
//! the paper's server spends parsing commands, comparing keys, and
//! filtering rows — so the harness charges those explicitly to the same
//! virtual clock with constants calibrated once against the paper's
//! headline numbers (§5.1.2, §5.1.5):
//!
//! * 42% of disk peak for 512×128 B insert batches,
//! * 12% → 63% of peak across the 32 B → 4 kB row-size sweep,
//! * 500,000 rows/second scanned at ~50% of disk throughput.
//!
//! The constants are calibration inputs; every *curve shape* is an output.

use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::{ColumnType, Value};
use littletable_core::{Db, Options};
use littletable_vfs::{Clock, DiskParams, Micros, SimClock, SimVfs};
use std::sync::Arc;

/// CPU cost per client command (request parse + dispatch), in micros.
pub const CPU_PER_COMMAND: f64 = 40.0;
/// CPU cost per inserted row (validation, key encode, memtable insert).
pub const CPU_PER_INSERT_ROW: f64 = 1.4;
/// CPU cost per inserted byte (copying, compression on flush), in micros.
pub const CPU_PER_INSERT_BYTE: f64 = 0.003;
/// CPU cost per row scanned by a query (decode, merge, filter).
pub const CPU_PER_SCAN_ROW: f64 = 0.9;

/// A fresh engine over a simulated paper-spec disk.
pub struct SimEnv {
    /// The simulated VFS (shared with the engine).
    pub vfs: SimVfs,
    /// The virtual clock (shared with the engine and the disk model).
    pub clock: SimClock,
    /// The engine.
    pub db: Db,
}

impl SimEnv {
    /// Builds an environment with the paper's disk and the given engine
    /// options. The clock starts at a fixed realistic instant so time
    /// periods bin identically across runs.
    pub fn new(params: DiskParams, opts: Options) -> SimEnv {
        let clock = SimClock::new(1_700_000_000_000_000);
        let vfs = SimVfs::new(params, clock.clone());
        let db = Db::open(Arc::new(vfs.clone()), Arc::new(clock.clone()), opts).unwrap();
        SimEnv { vfs, clock, db }
    }

    /// Paper disk + paper-default engine options (tick-driven, no
    /// background threads).
    pub fn paper() -> SimEnv {
        SimEnv::new(DiskParams::paper_disk(), Options::default())
    }

    /// Charges `micros` of modelled CPU/network time to the virtual clock.
    pub fn charge_cpu(&self, micros: f64) {
        self.clock.advance(micros.max(0.0) as Micros);
    }

    /// Charges the CPU model for one insert command of `rows` rows
    /// totalling `bytes` bytes.
    pub fn charge_insert_command(&self, rows: usize, bytes: usize) {
        self.charge_cpu(
            CPU_PER_COMMAND + rows as f64 * CPU_PER_INSERT_ROW + bytes as f64 * CPU_PER_INSERT_BYTE,
        );
    }

    /// Charges the CPU model for a query that scanned `rows` rows.
    pub fn charge_scan(&self, rows: u64) {
        self.charge_cpu(CPU_PER_COMMAND + rows as f64 * CPU_PER_SCAN_ROW);
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.clock.now_micros()
    }
}

/// The microbenchmark schema (§5.1.2): six key columns of integers (five
/// plus the timestamp) and one blob payload sized to reach the target row
/// size.
pub fn bench_schema() -> Schema {
    Schema::new(
        vec![
            ColumnDef::new("k1", ColumnType::I64),
            ColumnDef::new("k2", ColumnType::I64),
            ColumnDef::new("k3", ColumnType::I64),
            ColumnDef::new("k4", ColumnType::I64),
            ColumnDef::new("k5", ColumnType::I64),
            ColumnDef::new("ts", ColumnType::Timestamp),
            ColumnDef::new("payload", ColumnType::Blob),
        ],
        &["k1", "k2", "k3", "k4", "k5", "ts"],
    )
    .expect("bench schema is valid")
}

/// Key-plus-overhead bytes the bench schema carries besides the payload
/// (six 8-byte key components plus row framing), used to size payloads so
/// total row bytes hit the target.
pub const BENCH_ROW_OVERHEAD: usize = 56;

/// A tiny xorshift64 generator, matching the paper's use of xorshift to
/// produce effectively incompressible payloads (§5.1.1).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; `seed` must be nonzero.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Fills a buffer with pseudorandom bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Builds one bench row: `seq` spreads across the five key integers so
/// keys are unique and (by hashing) unordered; `ts` is explicit; the
/// payload is incompressible and sized so the whole row is `row_bytes`.
pub fn bench_row(rng: &mut XorShift64, seq: u64, ts: Micros, row_bytes: usize) -> Vec<Value> {
    let payload_len = row_bytes.saturating_sub(BENCH_ROW_OVERHEAD);
    let mut payload = vec![0u8; payload_len];
    rng.fill(&mut payload);
    let k = rng.next_u64();
    vec![
        Value::I64((k >> 32) as i64),
        Value::I64((k & 0xFFFF_FFFF) as i64),
        Value::I64(seq as i64),
        Value::I64((seq >> 32) as i64),
        Value::I64(0),
        Value::Timestamp(ts),
        Value::Blob(payload),
    ]
}

/// Builds one bench row with sequential (sorted) keys instead of random
/// ones.
pub fn bench_row_sequential(
    rng: &mut XorShift64,
    seq: u64,
    ts: Micros,
    row_bytes: usize,
) -> Vec<Value> {
    let payload_len = row_bytes.saturating_sub(BENCH_ROW_OVERHEAD);
    let mut payload = vec![0u8; payload_len];
    rng.fill(&mut payload);
    vec![
        Value::I64(seq as i64),
        Value::I64(0),
        Value::I64(0),
        Value::I64(0),
        Value::I64(0),
        Value::Timestamp(ts),
        Value::Blob(payload),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::Query;

    #[test]
    fn bench_rows_round_trip_through_engine() {
        let env = SimEnv::new(DiskParams::instant(), Options::small_for_tests());
        let t = env.db.create_table("b", bench_schema(), None).unwrap();
        let mut rng = XorShift64::new(7);
        let now = env.now();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| bench_row(&mut rng, i, now + i as i64, 128))
            .collect();
        let report = t.insert(rows).unwrap();
        assert_eq!(report.inserted, 100);
        assert_eq!(t.query_all(&Query::all()).unwrap().len(), 100);
    }

    #[test]
    fn xorshift_output_is_incompressible() {
        let mut rng = XorShift64::new(1);
        let mut buf = vec![0u8; 64 * 1024];
        rng.fill(&mut buf);
        let compressed = littletable_compress::compress(&buf);
        assert!(compressed.len() as f64 > buf.len() as f64 * 0.98);
    }

    #[test]
    fn charge_cpu_advances_clock() {
        let env = SimEnv::new(DiskParams::instant(), Options::small_for_tests());
        let t0 = env.now();
        env.charge_insert_command(512, 64 * 1024);
        let dt = env.now() - t0;
        assert!(dt > 700 && dt < 2000, "dt = {dt}");
    }

    #[test]
    fn row_bytes_hit_target() {
        let mut rng = XorShift64::new(3);
        let row = bench_row(&mut rng, 0, 0, 128);
        let total: usize = row
            .iter()
            .map(|v| match v {
                Value::Blob(b) => b.len(),
                _ => 8,
            })
            .sum();
        assert!((120..=136).contains(&total), "row bytes = {total}");
    }
}
