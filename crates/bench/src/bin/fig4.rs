//! Regenerates Figure 4.
fn main() {
    littletable_bench::figures::fig4::run(littletable_bench::quick_flag()).emit();
}
