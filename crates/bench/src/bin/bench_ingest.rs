//! Regenerates BENCH_ingest (nonblocking event-loop server vs.
//! thread-per-connection baseline: pipelined ingest rows/s and p99
//! batch-ack latency over a connections × batch-size grid).

fn main() {
    littletable_bench::figures::ingestfig::run(littletable_bench::quick_flag()).emit();
}
