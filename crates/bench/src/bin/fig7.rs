//! Regenerates Figure 7.
fn main() {
    littletable_bench::figures::fleetfigs::run_fig7(littletable_bench::quick_flag()).emit();
}
