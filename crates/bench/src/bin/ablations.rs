//! Runs the three design-choice ablations.
fn main() {
    let quick = littletable_bench::quick_flag();
    littletable_bench::figures::ablations::run_bloom(quick).emit();
    littletable_bench::figures::ablations::run_periods(quick).emit();
    littletable_bench::figures::ablations::run_unique(quick).emit();
}
