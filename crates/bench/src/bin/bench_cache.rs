//! Regenerates the block-cache characterisation figure.
fn main() {
    littletable_bench::figures::cachefig::run(littletable_bench::quick_flag()).emit();
}
