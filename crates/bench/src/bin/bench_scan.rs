//! Regenerates BENCH_scan (row-v2 vs columnar-v3 scan/aggregate
//! throughput and bytes on disk).

fn main() {
    littletable_bench::figures::scanfig::run(littletable_bench::quick_flag()).emit();
}
