//! Regenerates the rollup-tier dashboard-refresh figure.
fn main() {
    littletable_bench::figures::rollupfig::run(littletable_bench::quick_flag()).emit();
}
