//! Regenerates the long-term rate table of sect. 5.2.3.
fn main() {
    littletable_bench::figures::fleetfigs::run_rates(littletable_bench::quick_flag()).emit();
}
