//! Regenerates Figure 9.
fn main() {
    littletable_bench::figures::fig9::run(littletable_bench::quick_flag()).emit();
}
