//! Regenerates Figure 8.
fn main() {
    littletable_bench::figures::fleetfigs::run_fig8(littletable_bench::quick_flag()).emit();
}
