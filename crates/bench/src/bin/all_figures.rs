//! Runs every figure and table of the paper's evaluation in sequence.
use littletable_bench::figures;

fn main() {
    let quick = littletable_bench::quick_flag();
    figures::fig2::run(quick).emit();
    figures::fig3::run(quick).emit();
    figures::fig4::run(quick).emit();
    figures::fig5::run(quick).emit();
    figures::fig6::run(quick).emit();
    figures::fleetfigs::run_fig7(quick).emit();
    figures::fleetfigs::run_fig8(quick).emit();
    figures::fig9::run(quick).emit();
    figures::fleetfigs::run_fig10(quick).emit();
    figures::fleetfigs::run_rates(quick).emit();
    figures::headline::run(quick).emit();
    figures::applog::run(quick).emit();
    figures::ablations::run_bloom(quick).emit();
    figures::ablations::run_periods(quick).emit();
    figures::ablations::run_unique(quick).emit();
    figures::cachefig::run(quick).emit();
    figures::catalogfig::run(quick).emit();
    figures::contention::run(quick).emit();
    figures::scanfig::run(quick).emit();
}
