//! Regenerates the headline microbenchmark claims.
fn main() {
    littletable_bench::figures::headline::run(littletable_bench::quick_flag()).emit();
}
