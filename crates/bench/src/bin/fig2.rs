//! Regenerates Figure 2.
fn main() {
    littletable_bench::figures::fig2::run(littletable_bench::quick_flag()).emit();
}
