//! Regenerates Figure 3.
fn main() {
    littletable_bench::figures::fig3::run(littletable_bench::quick_flag()).emit();
}
