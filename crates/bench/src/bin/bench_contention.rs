//! Regenerates the reader-vs-maintenance contention figure.
fn main() {
    littletable_bench::figures::contention::run(littletable_bench::quick_flag()).emit();
}
