//! Regenerates Figure 5.
fn main() {
    littletable_bench::figures::fig5::run(littletable_bench::quick_flag()).emit();
}
