//! Regenerates the catalog-lookup-scaling and adaptive-cache-split figure.
fn main() {
    littletable_bench::figures::catalogfig::run(littletable_bench::quick_flag()).emit();
}
