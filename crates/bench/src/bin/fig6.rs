//! Regenerates Figure 6.
fn main() {
    littletable_bench::figures::fig6::run(littletable_bench::quick_flag()).emit();
}
