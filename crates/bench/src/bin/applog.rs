//! Verifies the appendix's logarithmic merge bounds on the real engine.
fn main() {
    littletable_bench::figures::applog::run(littletable_bench::quick_flag()).emit();
}
