//! Regenerates Figure 10.
fn main() {
    littletable_bench::figures::fleetfigs::run_fig10(littletable_bench::quick_flag()).emit();
}
