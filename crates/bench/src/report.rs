//! Figure output: aligned text tables on stdout plus a JSON dump under
//! `target/figures/` for EXPERIMENTS.md and external plotting.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// One plotted series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// One regenerated table or figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig2"`.
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// Axis labels `(x, y)`.
    pub axes: (String, String),
    /// The series.
    pub series: Vec<Series>,
    /// What the paper reports, for side-by-side comparison.
    pub paper_reference: Vec<String>,
    /// Methodology notes (substitutions, scaling).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x: &str, y: &str) -> FigureResult {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            axes: (x.to_string(), y.to_string()),
            series: Vec::new(),
            paper_reference: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, label: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    /// Adds a paper-reference line.
    pub fn paper(&mut self, line: &str) {
        self.paper_reference.push(line.to_string());
    }

    /// Adds a methodology note.
    pub fn note(&mut self, line: &str) {
        self.notes.push(line.to_string());
    }

    /// Prints the figure as text and writes `target/figures/<id>.json`.
    pub fn emit(&self) {
        println!("================================================================");
        println!("{}: {}", self.id, self.title);
        println!("================================================================");
        for s in &self.series {
            println!("-- {} --", s.label);
            println!("{:>16}  {:>16}", self.axes.0, self.axes.1);
            for &(x, y) in &s.points {
                println!("{:>16}  {:>16}", fmt_num(x), fmt_num(y));
            }
        }
        if !self.paper_reference.is_empty() {
            println!("paper reference:");
            for l in &self.paper_reference {
                println!("  * {l}");
            }
        }
        for l in &self.notes {
            println!("note: {l}");
        }
        match self.write_json() {
            Ok(path) => println!("json: {}", path.display()),
            Err(e) => eprintln!("warning: could not write JSON: {e}"),
        }
        println!();
    }

    /// Writes the JSON dump; returns its path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("figure serializes");
        f.write_all(json.as_bytes())?;
        Ok(path)
    }
}

/// Where figure JSON lands (overridable for tests via
/// `LITTLETABLE_FIGURE_DIR`).
pub fn output_dir() -> PathBuf {
    std::env::var_os("LITTLETABLE_FIGURE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"))
}

/// Formats a number compactly: integers plainly, large values with SI-ish
/// grouping, small floats with three significant decimals.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let i = v as i64;
        if i.abs() >= 10_000 {
            return group_thousands(i);
        }
        return format!("{i}");
    }
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

fn group_thousands(mut i: i64) -> String {
    let neg = i < 0;
    i = i.abs();
    let mut parts = Vec::new();
    while i >= 1000 {
        parts.push(format!("{:03}", i % 1000));
        i /= 1000;
    }
    parts.push(format!("{i}"));
    parts.reverse();
    format!("{}{}", if neg { "-" } else { "" }, parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_numbers() {
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(123456.0), "123,456");
        assert_eq!(fmt_num(-123456.0), "-123,456");
        assert_eq!(fmt_num(3.45678), "3.46");
        assert_eq!(fmt_num(0.001234), "0.0012");
        assert_eq!(fmt_num(1234.5), "1234");
    }

    #[test]
    fn json_round_trips_to_disk() {
        let dir = std::env::temp_dir().join(format!("ltfig-{}", std::process::id()));
        std::env::set_var("LITTLETABLE_FIGURE_DIR", &dir);
        let mut f = FigureResult::new("test_fig", "Test", "x", "y");
        f.push_series("s", vec![(1.0, 2.0), (3.0, 4.0)]);
        f.paper("paper says 4");
        let path = f.write_json().unwrap();
        let data = std::fs::read_to_string(path).unwrap();
        assert!(data.contains("test_fig"));
        assert!(data.contains("paper says 4"));
        std::env::remove_var("LITTLETABLE_FIGURE_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
