//! Fast byte-oriented block compression for LittleTable tablets.
//!
//! The paper compresses each 64 kB tablet block and the tablet footer with
//! LZO1X-1. This crate provides a codec with the same role and a similar
//! cost profile: an LZ77-family format with greedy hash-table matching on
//! the compression side and a branch-light byte-copy loop on the
//! decompression side. The format is self-terminating but, like LZO and
//! LZ4 block formats, callers must supply the decompressed size — which
//! LittleTable stores alongside every compressed region.
//!
//! Format: a sequence of *sequences*. Each sequence is
//!
//! ```text
//! [token] [lit-len ext]* [literals] [offset lo] [offset hi] [match-len ext]*
//! ```
//!
//! where the token's high nibble is the literal count (15 ⇒ continued in
//! 255-valued extension bytes) and the low nibble is the match length minus
//! the 4-byte minimum (15 ⇒ continued likewise). The final sequence carries
//! literals only. Offsets are 16-bit little-endian and relative to the
//! current output position.

#![warn(missing_docs)]

/// Minimum match length the encoder will emit.
const MIN_MATCH: usize = 4;
/// Maximum backreference distance.
const MAX_OFFSET: usize = 65_535;
/// log2 of the encoder hash-table size.
const HASH_BITS: u32 = 14;

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The compressed stream ended in the middle of a sequence.
    Truncated,
    /// A backreference pointed before the start of the output.
    BadOffset,
    /// The stream decoded to a different length than the caller expected.
    LengthMismatch,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadOffset => write!(f, "backreference before start of output"),
            DecompressError::LengthMismatch => write!(f, "decompressed length mismatch"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// An upper bound on the compressed size of `n` input bytes: incompressible
/// input costs its own length plus token and extension overhead.
pub fn max_compressed_len(n: usize) -> usize {
    n + n / 255 + 16
}

#[inline]
fn hash4(v: u32) -> usize {
    // Fibonacci hashing; the multiplier spreads low-entropy inputs well.
    ((v.wrapping_mul(2_654_435_761)) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(data: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap())
}

fn write_len_ext(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = (match_len - MIN_MATCH).min(15);
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        write_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if match_nibble == 15 {
        write_len_ext(out, match_len - MIN_MATCH - 15);
    }
}

fn emit_final(out: &mut Vec<u8>, literals: &[u8]) {
    // A final sequence has no match part; its token's low nibble is ignored.
    let lit_nibble = literals.len().min(15);
    out.push((lit_nibble as u8) << 4);
    if lit_nibble == 15 {
        write_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// Compresses `input`, appending to `out`. Returns the number of bytes
/// appended.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let n = input.len();
    if n <= MIN_MATCH {
        emit_final(out, input);
        return out.len() - start;
    }
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut anchor = 0usize;
    // Leave room so the 4-byte loads below stay in bounds.
    let limit = n - MIN_MATCH;
    while pos <= limit {
        let v = read_u32(input, pos);
        let h = hash4(v);
        let cand = table[h] as usize;
        table[h] = pos as u32;
        if cand != u32::MAX as usize
            && pos - cand <= MAX_OFFSET
            && pos != cand
            && read_u32(input, cand) == v
        {
            // Extend the match forward.
            let mut len = MIN_MATCH;
            while pos + len < n && input[cand + len] == input[pos + len] {
                len += 1;
            }
            emit_sequence(out, &input[anchor..pos], pos - cand, len);
            pos += len;
            anchor = pos;
        } else {
            pos += 1;
        }
    }
    emit_final(out, &input[anchor..]);
    out.len() - start
}

/// Compresses `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + input.len() / 2);
    compress_into(input, &mut out);
    out
}

fn read_len_ext(input: &[u8], pos: &mut usize, base: usize) -> Result<usize, DecompressError> {
    let mut len = base;
    if base == 15 {
        loop {
            let b = *input.get(*pos).ok_or(DecompressError::Truncated)?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompresses `input`, which must decode to exactly `expected_len` bytes.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    if input.is_empty() {
        return if expected_len == 0 {
            Ok(out)
        } else {
            Err(DecompressError::Truncated)
        };
    }
    loop {
        let token = *input.get(pos).ok_or(DecompressError::Truncated)?;
        pos += 1;
        let lit_len = read_len_ext(input, &mut pos, (token >> 4) as usize)?;
        if pos + lit_len > input.len() {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if pos == input.len() {
            break; // final, literals-only sequence
        }
        if pos + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        let match_len = read_len_ext(input, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::BadOffset);
        }
        // Byte-wise copy: overlapping backreferences (offset < match_len)
        // replicate recent output, as in every LZ77 decoder.
        let start = out.len() - offset;
        for src in start..start + match_len {
            let b = out[src];
            out.push(b);
        }
        if out.len() > expected_len {
            return Err(DecompressError::LengthMismatch);
        }
    }
    if out.len() != expected_len {
        return Err(DecompressError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_round_trips() {
        round_trip(b"");
    }

    #[test]
    fn tiny_inputs_round_trip() {
        for n in 1..16 {
            round_trip(&vec![b'x'; n]);
            round_trip(&(0..n as u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data: Vec<u8> = b"network-7/device-42/bytes=1234567;"
            .iter()
            .copied()
            .cycle()
            .take(64 * 1024)
            .collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "expected >=4x ratio, got {} / {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn all_zeros_compress_to_near_nothing() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 600, "got {}", c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn random_input_expands_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..64 * 1024).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert!(c.len() <= max_compressed_len(data.len()));
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn long_literal_and_match_extensions() {
        // >15 literals then a long match exercises both extension paths.
        let mut data: Vec<u8> = (0..200u8).collect();
        let copy = data.clone();
        data.extend_from_slice(&copy);
        round_trip(&data);
    }

    #[test]
    fn overlapping_match_replicates() {
        // "ab" * 1000: matches overlap their own output (offset 2, long len).
        let data: Vec<u8> = b"ab".iter().copied().cycle().take(2000).collect();
        round_trip(&data);
    }

    #[test]
    fn wrong_expected_len_is_rejected() {
        let c = compress(b"hello world hello world");
        assert_eq!(
            decompress(&c, 5).unwrap_err(),
            DecompressError::LengthMismatch
        );
        assert_eq!(
            decompress(&c, 1000).unwrap_err(),
            DecompressError::LengthMismatch
        );
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let data: Vec<u8> = b"abcdabcdabcdabcd".repeat(10);
        let c = compress(&data);
        for cut in 0..c.len().min(20) {
            let r = decompress(&c[..cut], data.len());
            assert!(r.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn bad_offset_is_rejected() {
        // Token: 0 literals, match len 4; offset 9 with empty output.
        let stream = [0x00u8, 9, 0, 0x00];
        assert!(matches!(
            decompress(&stream, 4),
            Err(DecompressError::BadOffset) | Err(DecompressError::Truncated)
        ));
    }

    #[test]
    fn compressed_len_bound_holds_for_random_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(0..4096);
            let data: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            assert!(compress(&data).len() <= max_compressed_len(n));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
            round_trip(&data);
        }

        #[test]
        fn prop_round_trip_low_entropy(
            data in proptest::collection::vec(0u8..4, 0..8192)
        ) {
            round_trip(&data);
        }

        #[test]
        fn prop_decompress_never_panics(
            garbage in proptest::collection::vec(any::<u8>(), 0..2048),
            expected in 0usize..4096
        ) {
            let _ = decompress(&garbage, expected);
        }
    }
}
