//! Client adaptor for LittleTable.
//!
//! Plays the role of the paper's SQLite virtual-table adaptor (§3.1,
//! §3.5): it keeps a persistent TCP connection to the server (so it
//! notices server crashes), caches table schemas, batches inserts, and
//! transparently continues queries that hit the server's row limit by
//! re-submitting with the starting key bound advanced past the last row
//! returned.
//!
//! Every request carries a client-chosen id; the server answers each
//! connection's requests in FIFO order with the matching ids, which is
//! what lets [`PipelinedInserter`] keep a bounded window of insert
//! batches in flight without waiting out a round trip per batch.
//!
//! Durability is the application's problem by design: when the connection
//! drops, [`Client::request`] surfaces the error and the application
//! re-collects recent data from its devices (§4).

#![warn(missing_docs)]

pub mod shardmap;

pub use shardmap::{shard_for, Backoff, ShardMap, ShardRoute};

use littletable_core::query::Query;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::Value;
use littletable_proto::{
    decode_response_frame, encode_request_frame, read_frame, write_frame, ErrorKind, Request,
    Response,
};
use littletable_vfs::Micros;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed; the server may have crashed. Re-establish
    /// with [`Client::reconnect`] and re-collect unacknowledged data.
    Disconnected(io::Error),
    /// The server rejected the request.
    Remote {
        /// Category.
        kind: ErrorKind,
        /// Server-provided description.
        message: String,
    },
    /// The server sent something unintelligible or unexpected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected(e) => write!(f, "disconnected: {e}"),
            ClientError::Remote { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Disconnected(e)
    }
}

/// Result alias for client operations.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connected LittleTable client.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    schemas: HashMap<String, Schema>,
    next_id: u64,
}

impl Client {
    /// Connects to a LittleTable server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("no address resolved".into()))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            stream,
            reader,
            schemas: HashMap::new(),
            next_id: 1,
        })
    }

    /// Re-establishes the connection after a disconnect; cached schemas
    /// are invalidated.
    pub fn reconnect(&mut self) -> Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.stream = stream;
        self.schemas.clear();
        Ok(())
    }

    /// Writes one request frame without waiting for its response;
    /// returns the id it was sent under. Responses come back in send
    /// order — pair them up with [`Client::recv_response`].
    pub fn send_request(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_request_frame(id, req))?;
        Ok(id)
    }

    /// Reads the next response frame, returning its id and body. Remote
    /// errors are returned as `Ok` here (the caller knows which request
    /// they belong to); [`Client::request`] converts them.
    pub fn recv_response(&mut self) -> Result<(u64, Response)> {
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Disconnected(io::ErrorKind::UnexpectedEof.into()))?;
        decode_response_frame(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let id = self.send_request(req)?;
        let (got, resp) = self.recv_response()?;
        if got != id {
            return Err(ClientError::Protocol(format!(
                "response id {got} does not match request id {id}"
            )));
        }
        if let Response::Error { kind, message } = resp {
            return Err(ClientError::Remote { kind, message });
        }
        Ok(resp)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Pong, got {r:?}"))),
        }
    }

    /// Lists table names.
    pub fn list_tables(&mut self) -> Result<Vec<String>> {
        match self.request(&Request::ListTables)? {
            Response::Tables { names } => Ok(names),
            r => Err(ClientError::Protocol(format!("expected Tables, got {r:?}"))),
        }
    }

    /// Creates a table.
    pub fn create_table(&mut self, table: &str, schema: Schema, ttl: Option<Micros>) -> Result<()> {
        match self.request(&Request::CreateTable {
            table: table.into(),
            schema,
            ttl,
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Drops a table.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        self.schemas.remove(table);
        match self.request(&Request::DropTable {
            table: table.into(),
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Creates a rollup table over `base` with the given bucket period.
    /// `value_cols` get SUM/MIN/MAX stats; `distinct_cols` get
    /// HyperLogLog distinct sketches.
    pub fn create_rollup(
        &mut self,
        name: &str,
        base: &str,
        period: Micros,
        value_cols: Vec<String>,
        distinct_cols: Vec<String>,
    ) -> Result<()> {
        match self.request(&Request::CreateRollup {
            name: name.into(),
            base: base.into(),
            period,
            value_cols,
            distinct_cols,
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Drops a rollup table and stops its maintenance.
    pub fn drop_rollup(&mut self, name: &str) -> Result<()> {
        self.schemas.remove(name);
        match self.request(&Request::DropRollup { name: name.into() })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Appends a column.
    pub fn add_column(&mut self, table: &str, column: ColumnDef) -> Result<()> {
        self.schemas.remove(table);
        match self.request(&Request::AddColumn {
            table: table.into(),
            column,
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Fetches (and caches) a table's schema.
    pub fn schema(&mut self, table: &str) -> Result<Schema> {
        if let Some(s) = self.schemas.get(table) {
            return Ok(s.clone());
        }
        match self.request(&Request::GetSchema {
            table: table.into(),
        })? {
            Response::SchemaInfo { schema, .. } => {
                self.schemas.insert(table.into(), schema.clone());
                Ok(schema)
            }
            r => Err(ClientError::Protocol(format!(
                "expected SchemaInfo, got {r:?}"
            ))),
        }
    }

    /// Inserts rows with explicit timestamps. Returns
    /// `(inserted, duplicates)`.
    pub fn insert(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(u64, u64)> {
        let rows = rows
            .into_iter()
            .map(|r| r.into_iter().map(Some).collect())
            .collect();
        self.insert_opt(table, rows)
    }

    /// Inserts rows, asking the server to stamp each row's `ts` column
    /// with its current time (§3.1). The value in the `ts` slot is a
    /// placeholder and is sent as absent.
    pub fn insert_stamped(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(u64, u64)> {
        let ts_index = self.schema(table)?.ts_index();
        let rows = rows
            .into_iter()
            .map(|r| {
                r.into_iter()
                    .enumerate()
                    .map(|(i, v)| if i == ts_index { None } else { Some(v) })
                    .collect()
            })
            .collect();
        self.insert_opt(table, rows)
    }

    /// Inserts rows where each cell is optionally absent. Only the `ts`
    /// column may be absent; the server stamps those rows — and only
    /// those — with its current time, so one batch may mix explicit and
    /// server-stamped timestamps.
    pub fn insert_opt(&mut self, table: &str, rows: Vec<Vec<Option<Value>>>) -> Result<(u64, u64)> {
        match self.request(&Request::Insert {
            table: table.into(),
            rows,
        })? {
            Response::InsertResult {
                inserted,
                duplicates,
            } => Ok((inserted, duplicates)),
            r => Err(ClientError::Protocol(format!(
                "expected InsertResult, got {r:?}"
            ))),
        }
    }

    /// Runs a query, transparently re-submitting when the server's row
    /// limit truncates a response (§3.5): the starting bound advances to
    /// just past the key of the last row returned.
    pub fn query(&mut self, table: &str, query: &Query) -> Result<Vec<Vec<Value>>> {
        let schema = self.schema(table)?;
        let key_indices: Vec<usize> = schema.key_indices().to_vec();
        let mut q = query.clone();
        let mut out: Vec<Vec<Value>> = Vec::new();
        loop {
            let (rows, more) = match self.request(&Request::Query {
                table: table.into(),
                query: q.clone(),
            })? {
                Response::Rows {
                    rows,
                    more_available,
                } => (rows, more_available),
                r => return Err(ClientError::Protocol(format!("expected Rows, got {r:?}"))),
            };
            out.extend(rows);
            if let Some(limit) = query.limit {
                if out.len() >= limit {
                    out.truncate(limit);
                    return Ok(out);
                }
            }
            if !more {
                return Ok(out);
            }
            let last = out
                .last()
                .ok_or_else(|| ClientError::Protocol("more_available with no rows".into()))?;
            let key_values: Vec<Value> = key_indices.iter().map(|&i| last[i].clone()).collect();
            if q.descending {
                q = q.with_key_max(key_values, false);
            } else {
                q = q.with_key_min(key_values, false);
            }
            if let Some(limit) = query.limit {
                q.limit = Some(limit - out.len());
            }
        }
    }

    /// Fetches a table's operational counters (see
    /// [`Response::Stats`]).
    pub fn stats(&mut self, table: &str) -> Result<Response> {
        match self.request(&Request::Stats {
            table: table.into(),
        })? {
            r @ Response::Stats { .. } => Ok(r),
            r => Err(ClientError::Protocol(format!("expected Stats, got {r:?}"))),
        }
    }

    /// Finds the latest row for a key prefix (§3.4.5).
    pub fn latest(&mut self, table: &str, prefix: Vec<Value>) -> Result<Option<Vec<Value>>> {
        match self.request(&Request::Latest {
            table: table.into(),
            prefix,
        })? {
            Response::LatestRow { row } => Ok(row),
            r => Err(ClientError::Protocol(format!(
                "expected LatestRow, got {r:?}"
            ))),
        }
    }
}

/// Accumulates rows and sends them in fixed-size batches — the paper's
/// applications commonly insert batches of around 512 rows.
pub struct BatchInserter<'a> {
    client: &'a mut Client,
    table: String,
    batch_size: usize,
    buffer: Vec<Vec<Value>>,
    inserted: u64,
    duplicates: u64,
}

impl<'a> BatchInserter<'a> {
    /// Creates a batcher for `table`, flushing every `batch_size` rows.
    pub fn new(client: &'a mut Client, table: &str, batch_size: usize) -> Self {
        BatchInserter {
            client,
            table: table.to_string(),
            batch_size: batch_size.max(1),
            buffer: Vec::new(),
            inserted: 0,
            duplicates: 0,
        }
    }

    /// Queues a row, flushing if the batch is full.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        self.buffer.push(row);
        if self.buffer.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends any queued rows now.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buffer);
        let (ins, dup) = self.client.insert(&self.table, rows)?;
        self.inserted += ins;
        self.duplicates += dup;
        Ok(())
    }

    /// Totals so far: `(inserted, duplicates)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.inserted, self.duplicates)
    }

    /// Flushes and returns the totals.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.flush()?;
        Ok((self.inserted, self.duplicates))
    }
}

/// Pipelined batch inserts: keeps up to `window` insert batches in
/// flight on the wire before blocking on the oldest acknowledgement.
/// Hides the per-batch round trip that serial insertion pays, which is
/// the dominant cost of high-frequency ingest over a network.
///
/// Relies on the server's FIFO-per-connection response ordering: the
/// oldest outstanding id is always the next response on the wire.
pub struct PipelinedInserter<'a> {
    client: &'a mut Client,
    table: String,
    batch_size: usize,
    window: usize,
    buffer: Vec<Vec<Option<Value>>>,
    in_flight: VecDeque<u64>,
    inserted: u64,
    duplicates: u64,
}

impl<'a> PipelinedInserter<'a> {
    /// Creates a pipelined inserter for `table`, sending every
    /// `batch_size` rows and keeping at most `window` unacknowledged
    /// batches in flight.
    pub fn new(client: &'a mut Client, table: &str, batch_size: usize, window: usize) -> Self {
        PipelinedInserter {
            client,
            table: table.to_string(),
            batch_size: batch_size.max(1),
            window: window.max(1),
            buffer: Vec::new(),
            in_flight: VecDeque::new(),
            inserted: 0,
            duplicates: 0,
        }
    }

    /// Queues a row with explicit values in every column.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        self.push_opt(row.into_iter().map(Some).collect())
    }

    /// Queues a row; an absent `ts` cell asks the server to stamp it.
    pub fn push_opt(&mut self, row: Vec<Option<Value>>) -> Result<()> {
        self.buffer.push(row);
        if self.buffer.len() >= self.batch_size {
            self.send_batch()?;
        }
        Ok(())
    }

    /// Sends the buffered rows as one batch, first draining
    /// acknowledgements if the window is full.
    fn send_batch(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        while self.in_flight.len() >= self.window {
            self.recv_ack()?;
        }
        let rows = std::mem::take(&mut self.buffer);
        let id = self.client.send_request(&Request::Insert {
            table: self.table.clone(),
            rows,
        })?;
        self.in_flight.push_back(id);
        Ok(())
    }

    /// Blocks for the oldest outstanding acknowledgement.
    fn recv_ack(&mut self) -> Result<()> {
        let want = self
            .in_flight
            .pop_front()
            .expect("recv_ack with nothing in flight");
        let (id, resp) = self.client.recv_response()?;
        if id != want {
            return Err(ClientError::Protocol(format!(
                "response id {id} does not match oldest in-flight id {want}"
            )));
        }
        match resp {
            Response::InsertResult {
                inserted,
                duplicates,
            } => {
                self.inserted += inserted;
                self.duplicates += duplicates;
                Ok(())
            }
            Response::Error { kind, message } => Err(ClientError::Remote { kind, message }),
            r => Err(ClientError::Protocol(format!(
                "expected InsertResult, got {r:?}"
            ))),
        }
    }

    /// Batches currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends any queued rows and drains every outstanding
    /// acknowledgement, returning `(inserted, duplicates)` totals.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.send_batch()?;
        while !self.in_flight.is_empty() {
            self.recv_ack()?;
        }
        Ok((self.inserted, self.duplicates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::db::Db;
    use littletable_core::value::ColumnType;
    use littletable_core::Options;
    use littletable_server::Server;
    use littletable_vfs::{SimClock, SimVfs};
    use std::sync::Arc;

    fn start_server(row_limit: usize) -> (Server, SocketAddr) {
        let mut opts = Options::small_for_tests();
        opts.server_row_limit = row_limit;
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            opts,
        )
        .unwrap();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_with_continuation() {
        let (_server, addr) = start_server(10);
        let mut c = Client::connect(addr).unwrap();
        c.ping().unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        assert_eq!(c.list_tables().unwrap(), vec!["t".to_string()]);
        let rows: Vec<Vec<Value>> = (0..55)
            .map(|i| vec![Value::I64(i), Value::Timestamp(1000 + i), Value::I64(i)])
            .collect();
        assert_eq!(c.insert("t", rows).unwrap(), (55, 0));
        // 55 rows with a 10-row server cap: the client auto-continues.
        let got = c.query("t", &Query::all()).unwrap();
        assert_eq!(got.len(), 55);
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row[0], Value::I64(i as i64));
        }
        // Descending continuation too.
        let got = c.query("t", &Query::all().descending()).unwrap();
        assert_eq!(got.len(), 55);
        assert_eq!(got[0][0], Value::I64(54));
        // Client-side limit caps across continuations.
        let got = c.query("t", &Query::all().with_limit(25)).unwrap();
        assert_eq!(got.len(), 25);
    }

    #[test]
    fn batch_inserter_flushes_by_size() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        let mut b = BatchInserter::new(&mut c, "t", 16);
        for i in 0..50 {
            b.push(vec![Value::I64(i), Value::Timestamp(i), Value::I64(i)])
                .unwrap();
        }
        let (ins, dup) = b.finish().unwrap();
        assert_eq!((ins, dup), (50, 0));
        assert_eq!(c.query("t", &Query::all()).unwrap().len(), 50);
    }

    #[test]
    fn pipelined_inserter_overlaps_batches() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        let mut p = PipelinedInserter::new(&mut c, "t", 8, 4);
        for i in 0..100 {
            p.push(vec![Value::I64(i), Value::Timestamp(i), Value::I64(i)])
                .unwrap();
        }
        // With 8-row batches and a window of 4, some batches must have
        // been in flight simultaneously at this point.
        assert!(p.in_flight() > 0);
        let (ins, dup) = p.finish().unwrap();
        assert_eq!((ins, dup), (100, 0));
        assert_eq!(c.query("t", &Query::all()).unwrap().len(), 100);
    }

    #[test]
    fn pipelined_inserter_surfaces_remote_errors() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        let mut p = PipelinedInserter::new(&mut c, "t", 2, 2);
        // Absent cell outside the ts column: the server rejects it.
        p.push_opt(vec![Some(Value::I64(1)), Some(Value::Timestamp(1)), None])
            .unwrap();
        p.push_opt(vec![Some(Value::I64(2)), Some(Value::Timestamp(2)), None])
            .unwrap();
        match p.finish() {
            Err(ClientError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::Invalid),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn stamped_and_mixed_inserts() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        // insert_stamped replaces the ts placeholder with an absent cell.
        assert_eq!(
            c.insert_stamped(
                "t",
                vec![vec![Value::I64(1), Value::Timestamp(0), Value::I64(10)]]
            )
            .unwrap(),
            (1, 0)
        );
        // A mixed batch via insert_opt: one explicit, one stamped.
        assert_eq!(
            c.insert_opt(
                "t",
                vec![
                    vec![
                        Some(Value::I64(2)),
                        Some(Value::Timestamp(77)),
                        Some(Value::I64(20))
                    ],
                    vec![Some(Value::I64(3)), None, Some(Value::I64(30))],
                ]
            )
            .unwrap(),
            (2, 0)
        );
        let rows = c.query("t", &Query::all()).unwrap();
        assert_eq!(rows.len(), 3);
        let ts_of = |n: i64| {
            rows.iter()
                .find(|r| r[0] == Value::I64(n))
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(ts_of(1), Value::Timestamp(1_700_000_000_000_000));
        assert_eq!(ts_of(2), Value::Timestamp(77), "explicit ts clobbered");
        assert_eq!(ts_of(3), Value::Timestamp(1_700_000_000_000_000));
    }

    #[test]
    fn stats_round_trip() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        c.insert(
            "t",
            vec![vec![Value::I64(1), Value::Timestamp(5), Value::I64(9)]],
        )
        .unwrap();
        match c.stats("t").unwrap() {
            Response::Stats {
                rows_inserted,
                duplicate_keys,
                ..
            } => {
                assert_eq!(rows_inserted, 1);
                assert_eq!(duplicate_keys, 0);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn remote_errors_are_typed() {
        let (_server, addr) = start_server(100);
        let mut c = Client::connect(addr).unwrap();
        match c.schema("missing") {
            Err(ClientError::Remote { kind, .. }) => {
                assert_eq!(kind, ErrorKind::NoSuchTable)
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn disconnect_is_detected_and_reconnect_works() {
        let (mut server, addr) = start_server(100);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        // Stop the server: the next request fails with Disconnected.
        server.shutdown();
        drop(server);
        let err = loop {
            match c.ping() {
                Err(e) => break e,
                Ok(()) => continue,
            }
        };
        assert!(matches!(err, ClientError::Disconnected(_)));
        // Bring up a new server on a fresh port and connect again.
        let (_server2, addr2) = start_server(100);
        let mut c2 = Client::connect(addr2).unwrap();
        c2.ping().unwrap();
    }
}
