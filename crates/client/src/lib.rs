//! Client adaptor for LittleTable.
//!
//! Plays the role of the paper's SQLite virtual-table adaptor (§3.1,
//! §3.5): it keeps a persistent TCP connection to the server (so it
//! notices server crashes), caches table schemas, batches inserts, and
//! transparently continues queries that hit the server's row limit by
//! re-submitting with the starting key bound advanced past the last row
//! returned.
//!
//! Durability is the application's problem by design: when the connection
//! drops, [`Client::request`] surfaces the error and the application
//! re-collects recent data from its devices (§4).

#![warn(missing_docs)]

use littletable_core::query::Query;
use littletable_core::schema::{ColumnDef, Schema};
use littletable_core::value::Value;
use littletable_proto::{read_frame, write_frame, ErrorKind, Request, Response};
use littletable_vfs::Micros;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed; the server may have crashed. Re-establish
    /// with [`Client::reconnect`] and re-collect unacknowledged data.
    Disconnected(io::Error),
    /// The server rejected the request.
    Remote {
        /// Category.
        kind: ErrorKind,
        /// Server-provided description.
        message: String,
    },
    /// The server sent something unintelligible or unexpected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected(e) => write!(f, "disconnected: {e}"),
            ClientError::Remote { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Disconnected(e)
    }
}

/// Result alias for client operations.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connected LittleTable client.
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    schemas: HashMap<String, Schema>,
}

impl Client {
    /// Connects to a LittleTable server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("no address resolved".into()))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            stream,
            reader,
            schemas: HashMap::new(),
        })
    }

    /// Re-establishes the connection after a disconnect; cached schemas
    /// are invalidated.
    pub fn reconnect(&mut self) -> Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.stream = stream;
        self.schemas.clear();
        Ok(())
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Disconnected(io::ErrorKind::UnexpectedEof.into()))?;
        let resp = Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Response::Error { kind, message } = resp {
            return Err(ClientError::Remote { kind, message });
        }
        Ok(resp)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Pong, got {r:?}"))),
        }
    }

    /// Lists table names.
    pub fn list_tables(&mut self) -> Result<Vec<String>> {
        match self.request(&Request::ListTables)? {
            Response::Tables { names } => Ok(names),
            r => Err(ClientError::Protocol(format!("expected Tables, got {r:?}"))),
        }
    }

    /// Creates a table.
    pub fn create_table(&mut self, table: &str, schema: Schema, ttl: Option<Micros>) -> Result<()> {
        match self.request(&Request::CreateTable {
            table: table.into(),
            schema,
            ttl,
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Drops a table.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        self.schemas.remove(table);
        match self.request(&Request::DropTable {
            table: table.into(),
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Appends a column.
    pub fn add_column(&mut self, table: &str, column: ColumnDef) -> Result<()> {
        self.schemas.remove(table);
        match self.request(&Request::AddColumn {
            table: table.into(),
            column,
        })? {
            Response::Ok => Ok(()),
            r => Err(ClientError::Protocol(format!("expected Ok, got {r:?}"))),
        }
    }

    /// Fetches (and caches) a table's schema.
    pub fn schema(&mut self, table: &str) -> Result<Schema> {
        if let Some(s) = self.schemas.get(table) {
            return Ok(s.clone());
        }
        match self.request(&Request::GetSchema {
            table: table.into(),
        })? {
            Response::SchemaInfo { schema, .. } => {
                self.schemas.insert(table.into(), schema.clone());
                Ok(schema)
            }
            r => Err(ClientError::Protocol(format!(
                "expected SchemaInfo, got {r:?}"
            ))),
        }
    }

    /// Inserts rows with explicit timestamps. Returns
    /// `(inserted, duplicates)`.
    pub fn insert(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(u64, u64)> {
        self.insert_inner(table, rows, false)
    }

    /// Inserts rows, asking the server to stamp each row's `ts` column
    /// with its current time (§3.1).
    pub fn insert_stamped(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(u64, u64)> {
        self.insert_inner(table, rows, true)
    }

    fn insert_inner(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
        server_sets_ts: bool,
    ) -> Result<(u64, u64)> {
        match self.request(&Request::Insert {
            table: table.into(),
            rows,
            server_sets_ts,
        })? {
            Response::InsertResult {
                inserted,
                duplicates,
            } => Ok((inserted, duplicates)),
            r => Err(ClientError::Protocol(format!(
                "expected InsertResult, got {r:?}"
            ))),
        }
    }

    /// Runs a query, transparently re-submitting when the server's row
    /// limit truncates a response (§3.5): the starting bound advances to
    /// just past the key of the last row returned.
    pub fn query(&mut self, table: &str, query: &Query) -> Result<Vec<Vec<Value>>> {
        let schema = self.schema(table)?;
        let key_indices: Vec<usize> = schema.key_indices().to_vec();
        let mut q = query.clone();
        let mut out: Vec<Vec<Value>> = Vec::new();
        loop {
            let (rows, more) = match self.request(&Request::Query {
                table: table.into(),
                query: q.clone(),
            })? {
                Response::Rows {
                    rows,
                    more_available,
                } => (rows, more_available),
                r => return Err(ClientError::Protocol(format!("expected Rows, got {r:?}"))),
            };
            out.extend(rows);
            if let Some(limit) = query.limit {
                if out.len() >= limit {
                    out.truncate(limit);
                    return Ok(out);
                }
            }
            if !more {
                return Ok(out);
            }
            let last = out
                .last()
                .ok_or_else(|| ClientError::Protocol("more_available with no rows".into()))?;
            let key_values: Vec<Value> = key_indices.iter().map(|&i| last[i].clone()).collect();
            if q.descending {
                q = q.with_key_max(key_values, false);
            } else {
                q = q.with_key_min(key_values, false);
            }
            if let Some(limit) = query.limit {
                q.limit = Some(limit - out.len());
            }
        }
    }

    /// Fetches a table's operational counters (see
    /// [`Response::Stats`]).
    pub fn stats(&mut self, table: &str) -> Result<Response> {
        match self.request(&Request::Stats {
            table: table.into(),
        })? {
            r @ Response::Stats { .. } => Ok(r),
            r => Err(ClientError::Protocol(format!("expected Stats, got {r:?}"))),
        }
    }

    /// Finds the latest row for a key prefix (§3.4.5).
    pub fn latest(&mut self, table: &str, prefix: Vec<Value>) -> Result<Option<Vec<Value>>> {
        match self.request(&Request::Latest {
            table: table.into(),
            prefix,
        })? {
            Response::LatestRow { row } => Ok(row),
            r => Err(ClientError::Protocol(format!(
                "expected LatestRow, got {r:?}"
            ))),
        }
    }
}

/// Accumulates rows and sends them in fixed-size batches — the paper's
/// applications commonly insert batches of around 512 rows.
pub struct BatchInserter<'a> {
    client: &'a mut Client,
    table: String,
    batch_size: usize,
    buffer: Vec<Vec<Value>>,
    inserted: u64,
    duplicates: u64,
}

impl<'a> BatchInserter<'a> {
    /// Creates a batcher for `table`, flushing every `batch_size` rows.
    pub fn new(client: &'a mut Client, table: &str, batch_size: usize) -> Self {
        BatchInserter {
            client,
            table: table.to_string(),
            batch_size: batch_size.max(1),
            buffer: Vec::new(),
            inserted: 0,
            duplicates: 0,
        }
    }

    /// Queues a row, flushing if the batch is full.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        self.buffer.push(row);
        if self.buffer.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends any queued rows now.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buffer);
        let (ins, dup) = self.client.insert(&self.table, rows)?;
        self.inserted += ins;
        self.duplicates += dup;
        Ok(())
    }

    /// Totals so far: `(inserted, duplicates)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.inserted, self.duplicates)
    }

    /// Flushes and returns the totals.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.flush()?;
        Ok((self.inserted, self.duplicates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use littletable_core::db::Db;
    use littletable_core::value::ColumnType;
    use littletable_core::Options;
    use littletable_server::Server;
    use littletable_vfs::{SimClock, SimVfs};
    use std::sync::Arc;

    fn start_server(row_limit: usize) -> (Server, SocketAddr) {
        let mut opts = Options::small_for_tests();
        opts.server_row_limit = row_limit;
        let db = Db::open(
            Arc::new(SimVfs::instant()),
            Arc::new(SimClock::new(1_700_000_000_000_000)),
            opts,
        )
        .unwrap();
        let mut server = Server::bind(db, "127.0.0.1:0").unwrap();
        server.start().unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    fn usage_schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
                ColumnDef::new("v", ColumnType::I64),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_with_continuation() {
        let (_server, addr) = start_server(10);
        let mut c = Client::connect(addr).unwrap();
        c.ping().unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        assert_eq!(c.list_tables().unwrap(), vec!["t".to_string()]);
        let rows: Vec<Vec<Value>> = (0..55)
            .map(|i| vec![Value::I64(i), Value::Timestamp(1000 + i), Value::I64(i)])
            .collect();
        assert_eq!(c.insert("t", rows).unwrap(), (55, 0));
        // 55 rows with a 10-row server cap: the client auto-continues.
        let got = c.query("t", &Query::all()).unwrap();
        assert_eq!(got.len(), 55);
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row[0], Value::I64(i as i64));
        }
        // Descending continuation too.
        let got = c.query("t", &Query::all().descending()).unwrap();
        assert_eq!(got.len(), 55);
        assert_eq!(got[0][0], Value::I64(54));
        // Client-side limit caps across continuations.
        let got = c.query("t", &Query::all().with_limit(25)).unwrap();
        assert_eq!(got.len(), 25);
    }

    #[test]
    fn batch_inserter_flushes_by_size() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        let mut b = BatchInserter::new(&mut c, "t", 16);
        for i in 0..50 {
            b.push(vec![Value::I64(i), Value::Timestamp(i), Value::I64(i)])
                .unwrap();
        }
        let (ins, dup) = b.finish().unwrap();
        assert_eq!((ins, dup), (50, 0));
        assert_eq!(c.query("t", &Query::all()).unwrap().len(), 50);
    }

    #[test]
    fn stats_round_trip() {
        let (_server, addr) = start_server(1 << 20);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        c.insert(
            "t",
            vec![vec![Value::I64(1), Value::Timestamp(5), Value::I64(9)]],
        )
        .unwrap();
        match c.stats("t").unwrap() {
            Response::Stats {
                rows_inserted,
                duplicate_keys,
                ..
            } => {
                assert_eq!(rows_inserted, 1);
                assert_eq!(duplicate_keys, 0);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn remote_errors_are_typed() {
        let (_server, addr) = start_server(100);
        let mut c = Client::connect(addr).unwrap();
        match c.schema("missing") {
            Err(ClientError::Remote { kind, .. }) => {
                assert_eq!(kind, ErrorKind::NoSuchTable)
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn disconnect_is_detected_and_reconnect_works() {
        let (mut server, addr) = start_server(100);
        let mut c = Client::connect(addr).unwrap();
        c.create_table("t", usage_schema(), None).unwrap();
        // Stop the server: the next request fails with Disconnected.
        server.shutdown();
        drop(server);
        let err = loop {
            match c.ping() {
                Err(e) => break e,
                Ok(()) => continue,
            }
        };
        assert!(matches!(err, ClientError::Disconnected(_)));
        // Bring up a new server on a fresh port and connect again.
        let (_server2, addr2) = start_server(100);
        let mut c2 = Client::connect(addr2).unwrap();
        c2.ping().unwrap();
    }
}
