//! Client-side shard placement for a LittleTable fleet (§2.2, §3.5).
//!
//! The paper runs one LittleTable per shard and makes *clients*
//! responsible for placement: each row's first key column picks a shard,
//! every shard has a primary node and a warm spare, and on primary death
//! the client simply starts talking to the spare. There is no consensus
//! protocol — the shard map is small, changes rarely, and an out-of-date
//! client is corrected by the server's `NotPrimary` fence.
//!
//! Placement uses rendezvous (highest-random-weight) hashing: every
//! `(key, shard)` pair gets a deterministic pseudo-random score and the
//! key lives on the highest-scoring shard. Unlike `hash % n`, growing
//! the fleet from `n` to `n + 1` shards remaps only ~`1/(n+1)` of keys.
//!
//! [`Backoff`] is the retry schedule clients use while a failover is in
//! progress: bounded exponential, deterministic (no jitter — tests and
//! the simulated fleet need replayability; real deployments can add
//! jitter on top).

use std::time::Duration;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer. The
/// same mixer drives the VFS fault injector, so fleet tests are
/// deterministic end to end.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a key's bytes to a 64-bit value by folding 8-byte chunks
/// through the mixer. Deterministic across platforms and runs.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x5151_5151_5151_5151;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    splitmix64(h ^ bytes.len() as u64)
}

/// Picks the shard owning `key` among `shards` shards by rendezvous
/// hashing. `key` is any stable byte encoding of the row's first key
/// column (e.g. [`littletable_core::row::Row::encode_key`] of the
/// prefix). Panics if `shards == 0`.
pub fn shard_for(key: &[u8], shards: u32) -> u32 {
    assert!(shards > 0, "shard_for on an empty fleet");
    let kh = hash_bytes(key);
    let mut best = 0u32;
    let mut best_score = 0u64;
    for s in 0..shards {
        let score = splitmix64(kh ^ splitmix64(u64::from(s) + 1));
        if s == 0 || score > best_score {
            best = s;
            best_score = score;
        }
    }
    best
}

/// One shard's replica pair: who is primary, who is the warm spare, and
/// the failover epoch. The epoch increments on every role change so a
/// client can tell a stale map from a fresh one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRoute {
    /// Shard index this route describes.
    pub shard: u32,
    /// Node id currently accepting writes.
    pub primary: u64,
    /// Node id holding the warm archive copy.
    pub spare: u64,
    /// Monotonic count of role changes on this shard.
    pub epoch: u64,
}

/// The client's view of the fleet: one [`ShardRoute`] per shard.
///
/// Clients key their routing decisions off this map and refresh it when
/// a request bounces with `NotPrimary` or the primary stops answering.
#[derive(Debug, Clone)]
pub struct ShardMap {
    routes: Vec<ShardRoute>,
}

impl ShardMap {
    /// Builds a map from `(primary, spare)` node-id pairs, one per
    /// shard, all starting at epoch 0.
    pub fn new(assignments: Vec<(u64, u64)>) -> ShardMap {
        let routes = assignments
            .into_iter()
            .enumerate()
            .map(|(i, (primary, spare))| ShardRoute {
                shard: i as u32,
                primary,
                spare,
                epoch: 0,
            })
            .collect();
        ShardMap { routes }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.routes.len() as u32
    }

    /// The route for `shard`. Panics on an out-of-range shard.
    pub fn route(&self, shard: u32) -> &ShardRoute {
        &self.routes[shard as usize]
    }

    /// The shard owning `key` (rendezvous hash over this map's shard
    /// count).
    pub fn shard_for_key(&self, key: &[u8]) -> u32 {
        shard_for(key, self.shards())
    }

    /// Fails `shard` over: the spare becomes primary, the dead primary
    /// becomes the (stale) spare, and the epoch increments. Returns the
    /// new epoch. The demoted node keeps its slot so a later failback
    /// can swap the pair again.
    pub fn promote(&mut self, shard: u32) -> u64 {
        let r = &mut self.routes[shard as usize];
        std::mem::swap(&mut r.primary, &mut r.spare);
        r.epoch += 1;
        r.epoch
    }
}

/// Bounded exponential backoff: `base, 2*base, 4*base, ...` capped at
/// `max`, for at most `attempts` tries. Deterministic by design.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempts: u32,
    used: u32,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per try, never exceeding
    /// `max`, and giving up after `attempts` tries.
    pub fn new(base: Duration, max: Duration, attempts: u32) -> Backoff {
        Backoff {
            base,
            max,
            attempts,
            used: 0,
        }
    }

    /// A schedule suited to in-process fleet tests: 1ms base, 50ms cap,
    /// 8 tries (~400ms worst case).
    pub fn for_tests() -> Backoff {
        Backoff::new(Duration::from_millis(1), Duration::from_millis(50), 8)
    }

    /// The next delay to sleep before retrying, or `None` when the
    /// budget is exhausted and the error should surface to the caller.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.used >= self.attempts {
            return None;
        }
        let exp = self.used.min(20);
        self.used += 1;
        Some(self.base.saturating_mul(1u32 << exp).min(self.max))
    }

    /// Tries consumed so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Resets the schedule after a success.
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_spreads_keys_evenly() {
        let shards = 5u32;
        let mut counts = vec![0usize; shards as usize];
        for i in 0..10_000u64 {
            let key = i.to_be_bytes();
            counts[shard_for(&key, shards) as usize] += 1;
        }
        // Each shard should hold roughly 2000 keys; allow ±25%.
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (1500..=2500).contains(&c),
                "shard {s} got {c} of 10000 keys"
            );
        }
    }

    #[test]
    fn rendezvous_is_deterministic_and_stable() {
        for i in 0..100u64 {
            let key = i.to_be_bytes();
            assert_eq!(shard_for(&key, 7), shard_for(&key, 7));
        }
    }

    #[test]
    fn growing_the_fleet_remaps_few_keys() {
        let n = 8u32;
        let total = 10_000u64;
        let moved = (0..total)
            .filter(|i| {
                let key = i.to_be_bytes();
                shard_for(&key, n) != shard_for(&key, n + 1)
            })
            .count();
        // Ideal is total/(n+1) ≈ 1111; `hash % n` would move ~8/9 of
        // them. Require well under half to prove minimal remapping.
        assert!(moved < 2000, "{moved} of {total} keys moved");
        // And every moved key must land on the new shard.
        for i in 0..total {
            let key = i.to_be_bytes();
            if shard_for(&key, n) != shard_for(&key, n + 1) {
                assert_eq!(shard_for(&key, n + 1), n);
            }
        }
    }

    #[test]
    fn promote_swaps_roles_and_bumps_epoch() {
        let mut map = ShardMap::new(vec![(10, 11), (20, 21), (30, 31)]);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.route(1).primary, 20);
        assert_eq!(map.route(1).epoch, 0);
        assert_eq!(map.promote(1), 1);
        assert_eq!(map.route(1).primary, 21);
        assert_eq!(map.route(1).spare, 20);
        // Other shards are untouched.
        assert_eq!(map.route(0).primary, 10);
        assert_eq!(map.route(0).epoch, 0);
        // Failback swaps again at a higher epoch.
        assert_eq!(map.promote(1), 2);
        assert_eq!(map.route(1).primary, 20);
        assert_eq!(map.route(1).spare, 21);
    }

    #[test]
    fn backoff_doubles_caps_and_exhausts() {
        let mut b = Backoff::new(Duration::from_millis(2), Duration::from_millis(10), 5);
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay())
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![2, 4, 8, 10, 10]);
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert_eq!(b.next_delay(), Some(Duration::from_millis(2)));
    }
}
