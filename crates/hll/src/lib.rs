//! HyperLogLog: a fixed-size, mergeable cardinality sketch.
//!
//! Dashboard tracks "distinct clients" style metrics with HyperLogLog
//! (§4.1.2 of the LittleTable paper): aggregators store one sketch per
//! (key, period) row in LittleTable, union them across periods or
//! networks, and report cardinality estimates with bounded relative error
//! (≈ 1.04/√m). This is a from-scratch implementation of the Flajolet–
//! Fusy–Gandouet–Meunier estimator with the usual small-range (linear
//! counting) correction.

#![warn(missing_docs)]

/// Default precision: 2¹² registers ⇒ ~1.6% standard error, 4 kB dense.
pub const DEFAULT_PRECISION: u8 = 12;

/// A HyperLogLog sketch with `2^precision` 6-bit registers (stored one
/// byte each for simplicity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an empty sketch. `precision` must be in `[4, 18]`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (4..=18).contains(&precision),
            "precision must be in [4, 18]"
        );
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// An empty sketch at [`DEFAULT_PRECISION`].
    pub fn default_precision() -> Self {
        Self::new(DEFAULT_PRECISION)
    }

    /// The sketch precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Adds an element by its 64-bit hash. Use a well-mixed hash (e.g.
    /// `littletable_core::util::hash_bytes`-style finalizers).
    pub fn add_hash(&mut self, hash: u64) {
        let p = self.precision as u32;
        let idx = (hash >> (64 - p)) as usize;
        let rest = hash << p;
        // Rank: position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero remainder gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - p + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Adds raw bytes, hashing them internally (FNV-1a + avalanche).
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // splitmix64 finalizer for avalanche.
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.add_hash(h ^ (h >> 31));
    }

    /// Unions another sketch into this one. Both must share a precision.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge sketches of different precision"
        );
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Estimates the number of distinct elements added.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0f64 / (1u64 << r) as f64)
            .sum();
        let raw = alpha * m * m / sum;
        // Small-range correction: linear counting while registers are
        // mostly empty.
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Serializes the sketch (1 byte precision + registers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.registers.len());
        out.push(self.precision);
        out.extend_from_slice(&self.registers);
        out
    }

    /// Deserializes a sketch written by [`HyperLogLog::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<HyperLogLog> {
        let (&precision, registers) = data.split_first()?;
        if !(4..=18).contains(&precision) || registers.len() != 1 << precision {
            return None;
        }
        let max_rank = 64 - precision as u32 + 1;
        if registers.iter().any(|&r| r as u32 > max_rank) {
            return None;
        }
        Some(HyperLogLog {
            precision,
            registers: registers.to_vec(),
        })
    }

    /// The theoretical relative standard error for this precision,
    /// ≈ 1.04/√m.
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn filled(range: std::ops::Range<u64>) -> HyperLogLog {
        let mut h = HyperLogLog::default_precision();
        for i in range {
            h.add_bytes(format!("client-{i}").as_bytes());
        }
        h
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::default_precision();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_counts_are_near_exact() {
        for n in [1u64, 5, 50, 500] {
            let h = filled(0..n);
            let est = h.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.05, "n={n} est={est}");
        }
    }

    #[test]
    fn large_counts_within_error_bounds() {
        for n in [10_000u64, 100_000, 1_000_000] {
            let h = filled(0..n);
            let est = h.estimate();
            let err = (est - n as f64).abs() / n as f64;
            // 5 sigma of the theoretical error.
            assert!(err < 5.0 * h.standard_error(), "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::default_precision();
        for _ in 0..100 {
            for i in 0..100u64 {
                h.add_bytes(format!("dup-{i}").as_bytes());
            }
        }
        let est = h.estimate();
        assert!((est - 100.0).abs() < 10.0, "est={est}");
    }

    #[test]
    fn merge_equals_union() {
        let a = filled(0..10_000);
        let b = filled(5_000..15_000);
        let mut u = a.clone();
        u.merge(&b);
        let est = u.estimate();
        let err = (est - 15_000.0).abs() / 15_000.0;
        assert!(err < 5.0 * u.standard_error(), "est={est}");
        // Merging is idempotent.
        let mut again = u.clone();
        again.merge(&b);
        assert_eq!(again, u);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_precision() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }

    #[test]
    fn serialization_round_trips() {
        let h = filled(0..1000);
        let bytes = h.to_bytes();
        let back = HyperLogLog::from_bytes(&bytes).unwrap();
        assert_eq!(h, back);
        assert!(HyperLogLog::from_bytes(&[]).is_none());
        assert!(HyperLogLog::from_bytes(&[12, 0, 0]).is_none());
        // Corrupt register value past the max rank.
        let mut bad = bytes.clone();
        bad[1] = 60;
        assert!(HyperLogLog::from_bytes(&bad).is_none());
    }

    #[test]
    fn fixed_size_regardless_of_cardinality() {
        let small = filled(0..10);
        let large = filled(0..100_000);
        assert_eq!(small.to_bytes().len(), large.to_bytes().len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_merge_is_commutative(
            xs in proptest::collection::vec(any::<u64>(), 0..500),
            ys in proptest::collection::vec(any::<u64>(), 0..500),
        ) {
            let mut a = HyperLogLog::new(8);
            let mut b = HyperLogLog::new(8);
            for &x in &xs { a.add_hash(x); }
            for &y in &ys { b.add_hash(y); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_estimate_monotone_under_merge(
            xs in proptest::collection::vec(any::<u64>(), 1..500),
        ) {
            let mut a = HyperLogLog::new(8);
            for &x in &xs { a.add_hash(x); }
            let before = a.estimate();
            let mut b = HyperLogLog::new(8);
            b.add_hash(0xDEAD_BEEF);
            a.merge(&b);
            prop_assert!(a.estimate() >= before - 1e-9);
        }

        /// Serialization must be lossless under merge: merging sketches
        /// that went through a to_bytes/from_bytes round trip gives the
        /// exact same registers — and therefore the exact same estimate —
        /// as merging the originals, and that estimate stays within the
        /// usual HLL error bound of the true union cardinality. This is
        /// what rollup tablets rely on when they persist sketches as
        /// blobs and fold them back together at query time.
        #[test]
        fn prop_round_trip_then_merge_keeps_error_bound(
            xs in proptest::collection::vec(any::<u64>(), 0..2_000),
            ys in proptest::collection::vec(any::<u64>(), 0..2_000),
        ) {
            let mut a = HyperLogLog::default_precision();
            let mut b = HyperLogLog::default_precision();
            for &x in &xs { a.add_hash(x); }
            for &y in &ys { b.add_hash(y); }
            let a2 = HyperLogLog::from_bytes(&a.to_bytes()).unwrap();
            let b2 = HyperLogLog::from_bytes(&b.to_bytes()).unwrap();
            prop_assert_eq!(&a2, &a);
            let mut direct = a.clone();
            direct.merge(&b);
            let mut rt = a2;
            rt.merge(&b2);
            prop_assert_eq!(&rt, &direct);
            let truth = xs.iter().chain(ys.iter())
                .collect::<std::collections::HashSet<_>>().len() as f64;
            // 1.04/sqrt(2^14) ≈ 0.8%; allow a wide 10% + slack margin so
            // the test never flakes while still catching gross corruption.
            let tolerance = (truth * 0.10).max(16.0);
            prop_assert!(
                (rt.estimate() - truth).abs() <= tolerance,
                "estimate {} vs truth {}", rt.estimate(), truth
            );
        }
    }
}
