//! Table descriptor files.
//!
//! Each table directory contains a `DESC` file recording the table's
//! current schema, TTL, and the list of on-disk tablets with their
//! timespans (§3.2). LittleTable rewrites the descriptor after every
//! change — flush, merge, TTL reap, schema evolution — by writing a
//! temporary file and atomically renaming it over the old one. The
//! descriptor is the *only* commitment point in the system: a tablet file
//! exists logically exactly when the descriptor lists it.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::util::{crc32, put_varint, unzigzag, zigzag, Reader};
use littletable_vfs::{join, Micros, Vfs};

/// File name of the committed descriptor within a table directory.
pub const DESC_FILE: &str = "DESC";
/// File name of the in-flight temporary descriptor.
pub const DESC_TMP: &str = "DESC.tmp";

const DESC_MAGIC: u32 = 0x4C54_4445; // "LTDE"
const DESC_VERSION: u8 = 2;

/// Descriptor-level metadata for one on-disk tablet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabletMeta {
    /// Table-unique tablet id (also names the file).
    pub id: u64,
    /// Smallest row timestamp in the tablet.
    pub min_ts: Micros,
    /// Largest row timestamp in the tablet.
    pub max_ts: Micros,
    /// Row count.
    pub rows: u64,
    /// File size in bytes (compressed).
    pub bytes: u64,
    /// Clock time the tablet was written (flush or merge); the merge
    /// policy's delay is measured from here.
    pub written_at: Micros,
    /// Schema version the tablet's rows were written under.
    pub schema_version: u32,
    /// True when the tablet file lives in the cold store (§6's
    /// LHAM-inspired write-once backing store for old data) rather than
    /// the shard's local disk.
    pub cold: bool,
    /// True once the tablet's rows have been folded into every rollup
    /// table registered for this base table. On tables that feed rollups,
    /// only rolled-up tablets are merge-eligible, so a tablet's identity
    /// survives until its contribution is durably recorded.
    pub rolled_up: bool,
}

impl TabletMeta {
    /// File name of this tablet within its table directory.
    pub fn file_name(&self) -> String {
        tablet_file_name(self.id)
    }
}

/// File name for a tablet id.
pub fn tablet_file_name(id: u64) -> String {
    format!("tab-{id:016x}.lt")
}

/// Parses a tablet file name back to its id.
pub fn parse_tablet_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("tab-")?.strip_suffix(".lt")?;
    u64::from_str_radix(hex, 16).ok()
}

/// The durable state of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDescriptor {
    /// Current (newest) schema.
    pub schema: Schema,
    /// Row time-to-live; `None` keeps rows until disk runs out.
    pub ttl: Option<Micros>,
    /// Next tablet id to allocate.
    pub next_tablet_id: u64,
    /// On-disk tablets, ordered by ascending `min_ts` (ties by id).
    pub tablets: Vec<TabletMeta>,
}

impl TableDescriptor {
    /// A fresh descriptor for a new table.
    pub fn new(schema: Schema, ttl: Option<Micros>) -> Self {
        TableDescriptor {
            schema,
            ttl,
            next_tablet_id: 1,
            tablets: Vec::new(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(DESC_VERSION);
        self.schema.encode(&mut body);
        match self.ttl {
            Some(t) => {
                body.push(1);
                put_varint(&mut body, zigzag(t));
            }
            None => body.push(0),
        }
        put_varint(&mut body, self.next_tablet_id);
        put_varint(&mut body, self.tablets.len() as u64);
        for t in &self.tablets {
            put_varint(&mut body, t.id);
            put_varint(&mut body, zigzag(t.min_ts));
            put_varint(&mut body, zigzag(t.max_ts));
            put_varint(&mut body, t.rows);
            put_varint(&mut body, t.bytes);
            put_varint(&mut body, zigzag(t.written_at));
            put_varint(&mut body, t.schema_version as u64);
            put_varint(&mut body, t.cold as u64);
            put_varint(&mut body, t.rolled_up as u64);
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&DESC_MAGIC.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(data: &[u8]) -> Result<TableDescriptor> {
        let mut r = Reader::new(data);
        if r.u32()? != DESC_MAGIC {
            return Err(Error::corrupt("bad descriptor magic"));
        }
        let crc = r.u32()?;
        let body = r.bytes(r.remaining())?;
        if crc32(body) != crc {
            return Err(Error::corrupt("descriptor checksum mismatch"));
        }
        let mut r = Reader::new(body);
        let ver = r.u8()?;
        if ver == 0 || ver > DESC_VERSION {
            return Err(Error::corrupt(format!("unknown descriptor version {ver}")));
        }
        let schema = Schema::decode(&mut r)?;
        let ttl = match r.u8()? {
            0 => None,
            1 => Some(unzigzag(r.varint()?)),
            t => return Err(Error::corrupt(format!("bad ttl tag {t}"))),
        };
        let next_tablet_id = r.varint()?;
        let n = r.varint()? as usize;
        let mut tablets = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            tablets.push(TabletMeta {
                id: r.varint()?,
                min_ts: unzigzag(r.varint()?),
                max_ts: unzigzag(r.varint()?),
                rows: r.varint()?,
                bytes: r.varint()?,
                written_at: unzigzag(r.varint()?),
                schema_version: r.varint()? as u32,
                cold: r.varint()? != 0,
                // v1 descriptors predate rollups; nothing was folded.
                rolled_up: ver >= 2 && r.varint()? != 0,
            });
        }
        if !r.is_empty() {
            return Err(Error::corrupt("trailing bytes after descriptor"));
        }
        Ok(TableDescriptor {
            schema,
            ttl,
            next_tablet_id,
            tablets,
        })
    }

    /// Durably replaces the descriptor in `dir`: write `DESC.tmp`, sync,
    /// rename over `DESC`, sync the directory.
    pub fn save(&self, vfs: &dyn Vfs, dir: &str) -> Result<()> {
        let tmp = join(dir, DESC_TMP);
        let dst = join(dir, DESC_FILE);
        let data = self.encode();
        let mut f = vfs.create(&tmp, data.len() as u64)?;
        f.append(&data)?;
        f.sync()?;
        drop(f);
        vfs.rename(&tmp, &dst)?;
        vfs.sync_dir(dir)?;
        Ok(())
    }

    /// Loads the descriptor from `dir`, cleaning up a stale `DESC.tmp`.
    pub fn load(vfs: &dyn Vfs, dir: &str) -> Result<TableDescriptor> {
        let tmp = join(dir, DESC_TMP);
        if vfs.exists(&tmp) && vfs.remove(&tmp).is_ok() {
            // Make the cleanup itself durable: without this, a second
            // crash can resurrect the stale tmp file and every reopen
            // repeats the removal without ever retiring it.
            let _ = vfs.sync_dir(dir);
        }
        let path = join(dir, DESC_FILE);
        let f = vfs.open(&path)?;
        let len = f.len()? as usize;
        let mut data = vec![0u8; len];
        f.read_exact_at(0, &mut data)?;
        Self::decode(&data)
    }

    /// Reads and decodes the descriptor in `dir` without side effects:
    /// unlike [`TableDescriptor::load`] no stale `DESC.tmp` is cleaned
    /// up, so this is safe to run against a *live* database directory
    /// (the archiver inspects the primary's descriptor while the primary
    /// may be mid-`save`).
    pub fn peek(vfs: &dyn Vfs, dir: &str) -> Result<TableDescriptor> {
        let path = join(dir, DESC_FILE);
        let f = vfs.open(&path)?;
        let len = f.len()? as usize;
        let mut data = vec![0u8; len];
        f.read_exact_at(0, &mut data)?;
        Self::decode(&data)
    }

    /// The largest row timestamp recorded across all tablets, if any.
    pub fn max_ts(&self) -> Option<Micros> {
        self.tablets.iter().map(|t| t.max_ts).max()
    }

    /// Sorts tablets by ascending timespan lower bound (ties by id), the
    /// order the merge policy operates in.
    pub fn sort_tablets(&mut self) {
        self.tablets.sort_by_key(|t| (t.min_ts, t.id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use littletable_vfs::SimVfs;

    fn schema() -> Schema {
        Schema::new(
            vec![
                ColumnDef::new("n", ColumnType::I64),
                ColumnDef::new("ts", ColumnType::Timestamp),
            ],
            &["n", "ts"],
        )
        .unwrap()
    }

    fn sample() -> TableDescriptor {
        let mut d = TableDescriptor::new(schema(), Some(3_600_000_000));
        d.next_tablet_id = 3;
        d.tablets = vec![
            TabletMeta {
                id: 1,
                min_ts: 100,
                max_ts: 200,
                rows: 10,
                bytes: 1000,
                written_at: 250,
                schema_version: 1,
                cold: false,
                rolled_up: false,
            },
            TabletMeta {
                id: 2,
                min_ts: 200,
                max_ts: 300,
                rows: 20,
                bytes: 2000,
                written_at: 350,
                schema_version: 1,
                cold: true,
                rolled_up: true,
            },
        ];
        d
    }

    #[test]
    fn encode_decode_round_trips() {
        let d = sample();
        let back = TableDescriptor::decode(&d.encode()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn save_load_round_trips() {
        let vfs = SimVfs::instant();
        vfs.mkdir_all("t").unwrap();
        let d = sample();
        d.save(&vfs, "t").unwrap();
        assert!(!vfs.exists("t/DESC.tmp"));
        let back = TableDescriptor::load(&vfs, "t").unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn save_survives_crash_after_sync() {
        let vfs = SimVfs::instant();
        vfs.mkdir_all("t").unwrap();
        vfs.sync_dir("").unwrap();
        let d = sample();
        d.save(&vfs, "t").unwrap();
        vfs.crash();
        let back = TableDescriptor::load(&vfs, "t").unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn replacement_is_atomic_under_crash() {
        let vfs = SimVfs::instant();
        vfs.mkdir_all("t").unwrap();
        vfs.sync_dir("").unwrap();
        let d1 = sample();
        d1.save(&vfs, "t").unwrap();
        // Second save whose rename is not yet synced: simulate by writing
        // tmp then crashing before rename.
        let mut d2 = d1.clone();
        d2.next_tablet_id = 99;
        let data = d2.encode();
        let mut f = vfs.create("t/DESC.tmp", 0).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.crash();
        // The old committed descriptor must still load.
        let back = TableDescriptor::load(&vfs, "t").unwrap();
        assert_eq!(back, d1);
    }

    #[test]
    fn v1_descriptors_still_decode() {
        // Hand-roll a version-1 body (no rolled_up varint per tablet) and
        // check it decodes with rolled_up defaulting to false.
        let d = sample();
        let mut body = Vec::new();
        body.push(1u8);
        d.schema.encode(&mut body);
        body.push(1);
        put_varint(&mut body, zigzag(d.ttl.unwrap()));
        put_varint(&mut body, d.next_tablet_id);
        put_varint(&mut body, d.tablets.len() as u64);
        for t in &d.tablets {
            put_varint(&mut body, t.id);
            put_varint(&mut body, zigzag(t.min_ts));
            put_varint(&mut body, zigzag(t.max_ts));
            put_varint(&mut body, t.rows);
            put_varint(&mut body, t.bytes);
            put_varint(&mut body, zigzag(t.written_at));
            put_varint(&mut body, t.schema_version as u64);
            put_varint(&mut body, t.cold as u64);
        }
        let mut data = Vec::new();
        data.extend_from_slice(&DESC_MAGIC.to_le_bytes());
        data.extend_from_slice(&crc32(&body).to_le_bytes());
        data.extend_from_slice(&body);
        let back = TableDescriptor::decode(&data).unwrap();
        assert!(back.tablets.iter().all(|t| !t.rolled_up));
        assert_eq!(back.next_tablet_id, d.next_tablet_id);
        assert_eq!(back.tablets.len(), d.tablets.len());
    }

    #[test]
    fn corruption_is_detected() {
        let d = sample();
        let mut data = d.encode();
        data[10] ^= 0x40;
        assert!(TableDescriptor::decode(&data).is_err());
        assert!(TableDescriptor::decode(&data[..5]).is_err());
    }

    #[test]
    fn tablet_file_names_round_trip() {
        assert_eq!(parse_tablet_file_name(&tablet_file_name(42)), Some(42));
        assert_eq!(parse_tablet_file_name("nope"), None);
        assert_eq!(parse_tablet_file_name("tab-zz.lt"), None);
    }

    #[test]
    fn max_ts_and_sorting() {
        let mut d = sample();
        assert_eq!(d.max_ts(), Some(300));
        d.tablets.reverse();
        d.sort_tablets();
        assert_eq!(d.tablets[0].id, 1);
        assert_eq!(TableDescriptor::new(schema(), None).max_ts(), None);
    }
}
