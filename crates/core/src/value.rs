//! Column types and cell values.
//!
//! LittleTable supports 32- and 64-bit integers, double-precision floats,
//! timestamps, variable-length strings, and byte arrays (§3.5 of the
//! paper). There are no NULLs; applications use sentinel values instead,
//! and every column carries a default.

use crate::error::{Error, Result};
use littletable_vfs::Micros;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// IEEE 754 double.
    F64,
    /// Microseconds since the Unix epoch.
    Timestamp,
    /// UTF-8 string.
    Str,
    /// Arbitrary bytes.
    Blob,
}

impl ColumnType {
    /// Stable single-byte tag used in serialized schemas.
    pub fn tag(self) -> u8 {
        match self {
            ColumnType::I32 => 0,
            ColumnType::I64 => 1,
            ColumnType::F64 => 2,
            ColumnType::Timestamp => 3,
            ColumnType::Str => 4,
            ColumnType::Blob => 5,
        }
    }

    /// Inverse of [`ColumnType::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => ColumnType::I32,
            1 => ColumnType::I64,
            2 => ColumnType::F64,
            3 => ColumnType::Timestamp,
            4 => ColumnType::Str,
            5 => ColumnType::Blob,
            t => return Err(Error::corrupt(format!("unknown column type tag {t}"))),
        })
    }

    /// The zero-ish default for the type, used when a schema does not
    /// specify an explicit column default.
    pub fn zero(self) -> Value {
        match self {
            ColumnType::I32 => Value::I32(0),
            ColumnType::I64 => Value::I64(0),
            ColumnType::F64 => Value::F64(0.0),
            ColumnType::Timestamp => Value::Timestamp(0),
            ColumnType::Str => Value::Str(String::new()),
            ColumnType::Blob => Value::Blob(Vec::new()),
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::I32 => "int32",
            ColumnType::I64 => "int64",
            ColumnType::F64 => "double",
            ColumnType::Timestamp => "timestamp",
            ColumnType::Str => "string",
            ColumnType::Blob => "blob",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// IEEE 754 double.
    F64(f64),
    /// Microseconds since the Unix epoch.
    Timestamp(Micros),
    /// UTF-8 string.
    Str(String),
    /// Arbitrary bytes.
    Blob(Vec<u8>),
}

impl Value {
    /// The type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::I32(_) => ColumnType::I32,
            Value::I64(_) => ColumnType::I64,
            Value::F64(_) => ColumnType::F64,
            Value::Timestamp(_) => ColumnType::Timestamp,
            Value::Str(_) => ColumnType::Str,
            Value::Blob(_) => ColumnType::Blob,
        }
    }

    /// True when this value may be stored in a column of type `ty`,
    /// including the I32 → I64 widening the engine performs when a column's
    /// precision has been increased.
    pub fn fits(&self, ty: ColumnType) -> bool {
        self.column_type() == ty || matches!((self, ty), (Value::I32(_), ColumnType::I64))
    }

    /// Converts this value to exactly `ty`, widening I32 to I64 when asked.
    pub fn coerce(self, ty: ColumnType) -> Result<Value> {
        if self.column_type() == ty {
            return Ok(self);
        }
        match (self, ty) {
            (Value::I32(v), ColumnType::I64) => Ok(Value::I64(v as i64)),
            (v, ty) => Err(Error::invalid(format!(
                "value of type {:?} does not fit column type {ty:?}",
                v.column_type()
            ))),
        }
    }

    /// The timestamp inside a `Timestamp` value.
    pub fn as_timestamp(&self) -> Result<Micros> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            v => Err(Error::invalid(format!(
                "expected timestamp, got {:?}",
                v.column_type()
            ))),
        }
    }

    /// Approximate in-memory footprint in bytes, used for memtable size
    /// accounting.
    pub fn mem_size(&self) -> usize {
        match self {
            Value::I32(_) => 4,
            Value::I64(_) | Value::F64(_) | Value::Timestamp(_) => 8,
            Value::Str(s) => 16 + s.len(),
            Value::Blob(b) => 16 + b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for ty in [
            ColumnType::I32,
            ColumnType::I64,
            ColumnType::F64,
            ColumnType::Timestamp,
            ColumnType::Str,
            ColumnType::Blob,
        ] {
            assert_eq!(ColumnType::from_tag(ty.tag()).unwrap(), ty);
        }
        assert!(ColumnType::from_tag(99).is_err());
    }

    #[test]
    fn i32_widens_to_i64() {
        assert!(Value::I32(5).fits(ColumnType::I64));
        assert_eq!(
            Value::I32(-3).coerce(ColumnType::I64).unwrap(),
            Value::I64(-3)
        );
        assert!(Value::I64(5).coerce(ColumnType::I32).is_err());
        assert!(Value::Str("x".into()).coerce(ColumnType::Blob).is_err());
    }

    #[test]
    fn timestamps_extract() {
        assert_eq!(Value::Timestamp(42).as_timestamp().unwrap(), 42);
        assert!(Value::I64(42).as_timestamp().is_err());
    }

    #[test]
    fn mem_size_tracks_payload() {
        assert_eq!(Value::I32(1).mem_size(), 4);
        assert!(Value::Str("hello".into()).mem_size() > 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::I64(7).to_string(), "7");
        assert_eq!(Value::Blob(vec![0xab, 0x01]).to_string(), "x'ab01'");
    }
}
