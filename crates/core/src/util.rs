//! Small encoding helpers shared by the tablet, descriptor, and row codecs.

use crate::error::{Error, Result};

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-encodes a signed integer so small magnitudes stay short.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked forward reader over a byte slice. All decode paths in
/// the engine go through this so corrupt input surfaces as [`Error::Corrupt`]
/// rather than a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a slice for reading from the front.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn corrupt(what: &str) -> Error {
        Error::corrupt(format!("unexpected end of input reading {what}"))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Self::corrupt("bytes"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian f64.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(Error::corrupt("varint overflows u64"));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint-length-prefixed byte slice.
    pub fn len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.varint()? as usize;
        self.bytes(n)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.len_prefixed()?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::corrupt("invalid UTF-8 string"))
    }
}

/// Appends a varint-length-prefixed byte slice.
pub fn put_len_prefixed(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Appends a varint-length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_len_prefixed(out, s.as_bytes());
}

/// CRC-32 (IEEE 802.3, reflected) used to checksum descriptors and footers.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// A 64-bit mixing hash (splitmix64 finalizer) for Bloom filters.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a byte string for Bloom-filter use (FNV-1a folded through
/// [`mix64`]).
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 256);
        assert!(zigzag(100) < 256);
    }

    #[test]
    fn reader_detects_truncation() {
        let mut buf = Vec::new();
        put_string(&mut buf, "hello");
        let mut r = Reader::new(&buf[..3]);
        assert!(r.string().is_err());
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert!(r.varint().is_err());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fixed_width_round_trips() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&9u64.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 9);
        assert_eq!(r.f64().unwrap(), 1.5);
    }

    #[test]
    fn hash_bytes_spreads() {
        let a = hash_bytes(b"network-1/device-1");
        let b = hash_bytes(b"network-1/device-2");
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }
}
