//! The tablet merge policy (§3.4.1, §3.4.2, and the appendix).
//!
//! LittleTable orders a table's on-disk tablets by the lower bounds of
//! their timespans and merges the oldest adjacent pair `(tᵢ, tᵢ₊₁)` such
//! that `|tᵢ| ≤ 2·|tᵢ₊₁|`, pulling in any newer adjacent tablets up to a
//! maximum output size. The appendix proves two properties this module's
//! property tests check directly:
//!
//! 1. when no more merges are possible, the number of remaining tablets is
//!    logarithmic in the table size, and
//! 2. no row is rewritten more than a logarithmic number of times.
//!
//! Two refinements from §3.4.2: tablets from different *time periods*
//! (4-hour / day / week bins) are never merged together, and a tablet only
//! becomes merge-eligible a fixed delay after it was written, so each merge
//! sees as many tablets as possible.

use crate::descriptor::TabletMeta;
use crate::period::{period_for, PeriodKind};
use crate::util::mix64;
use littletable_vfs::Micros;

/// Tuning knobs for [`find_merge`].
#[derive(Debug, Clone, Copy)]
pub struct MergePolicy {
    /// Maximum size of a merged output tablet, in bytes (128 MB default).
    pub max_tablet_size: u64,
    /// How long after a tablet is written before it may be merged (90 s
    /// default) — gives each merge more tablets to work with.
    pub merge_delay: Micros,
    /// Never merge tablets whose timespans start in different time
    /// periods. Disabling this is the §3.4.2 ablation.
    pub respect_periods: bool,
    /// When set, a tablet that has rolled into a larger time period only
    /// becomes merge-eligible after a pseudorandom fraction of that period
    /// has elapsed since the rollover — spreading the surge of merge work
    /// across tables as periods roll over (§3.4.2). `None` disables.
    pub rollover_jitter_seed: Option<u64>,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy {
            max_tablet_size: 128 << 20,
            merge_delay: 90 * 1_000_000,
            respect_periods: true,
            rollover_jitter_seed: None,
        }
    }
}

/// Finds the next merge to perform: the ids of two or more adjacent
/// tablets, in timespan order. `tablets` must already be sorted by
/// `(min_ts, id)` (see [`crate::descriptor::TableDescriptor::sort_tablets`]).
/// Returns `None` when nothing is mergeable.
pub fn find_merge(tablets: &[TabletMeta], now: Micros, policy: &MergePolicy) -> Option<Vec<u64>> {
    let eligible = |t: &TabletMeta| {
        if t.cold {
            // Cold-store tablets are write-once archives; never re-merge.
            return false;
        }
        if now - t.written_at < policy.merge_delay {
            return false;
        }
        if let (Some(seed), true) = (policy.rollover_jitter_seed, policy.respect_periods) {
            // If the tablet's bin has coarsened since it was written, wait a
            // deterministic pseudorandom fraction of the new (larger) period
            // past the rollover instant before touching it.
            let p_now = period_for(t.min_ts, now);
            let p_then = period_for(t.min_ts, t.written_at);
            if p_now.kind != p_then.kind && p_now.kind != PeriodKind::FourHour {
                let rolled_at = p_now.start + p_now.kind.len();
                let jitter = (mix64(seed ^ t.id ^ p_now.start as u64)
                    % (p_now.kind.len() as u64 / 2)) as Micros;
                if now < rolled_at + jitter {
                    return false;
                }
            }
        }
        true
    };
    let same_group = |a: &TabletMeta, b: &TabletMeta| {
        !policy.respect_periods || period_for(a.min_ts, now) == period_for(b.min_ts, now)
    };
    for i in 0..tablets.len().saturating_sub(1) {
        let a = &tablets[i];
        let b = &tablets[i + 1];
        if !eligible(a) || !eligible(b) || !same_group(a, b) {
            continue;
        }
        // Merge the oldest adjacent pair where the newer tablet is at
        // least half the size of the older.
        if a.bytes > 2 * b.bytes {
            continue;
        }
        let mut total = a.bytes + b.bytes;
        if total > policy.max_tablet_size {
            continue;
        }
        let mut ids = vec![a.id, b.id];
        // Extend with newer adjacent tablets up to the size cap. The
        // appendix notes the logarithmic bounds continue to hold for this
        // extension regardless of the extra tablets' sizes.
        for c in &tablets[i + 2..] {
            if !eligible(c) || !same_group(b, c) || total + c.bytes > policy.max_tablet_size {
                break;
            }
            total += c.bytes;
            ids.push(c.id);
        }
        return Some(ids);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::period::{DAY, WEEK};
    use proptest::prelude::*;

    fn meta(id: u64, min_ts: Micros, bytes: u64, written_at: Micros) -> TabletMeta {
        TabletMeta {
            id,
            min_ts,
            max_ts: min_ts,
            rows: bytes / 128,
            bytes,
            written_at,
            schema_version: 1,
            cold: false,
            rolled_up: false,
        }
    }

    /// A policy with no delay and no period constraint, matching the
    /// appendix's abstract setting.
    fn plain(max: u64) -> MergePolicy {
        MergePolicy {
            max_tablet_size: max,
            merge_delay: 0,
            respect_periods: false,
            rollover_jitter_seed: None,
        }
    }

    #[test]
    fn merges_first_eligible_pair() {
        // Sizes 100, 30, 20: 100 > 2*30, so the pair is (30, 20).
        let ts = vec![meta(1, 0, 100, 0), meta(2, 10, 30, 0), meta(3, 20, 20, 0)];
        assert_eq!(find_merge(&ts, 1000, &plain(u64::MAX)), Some(vec![2, 3]));
    }

    #[test]
    fn no_merge_when_strictly_decreasing_by_half() {
        let ts = vec![meta(1, 0, 100, 0), meta(2, 10, 40, 0), meta(3, 20, 15, 0)];
        assert_eq!(find_merge(&ts, 1000, &plain(u64::MAX)), None);
    }

    #[test]
    fn extension_includes_newer_tablets_up_to_cap() {
        let ts = vec![
            meta(1, 0, 10, 0),
            meta(2, 10, 10, 0),
            meta(3, 20, 100, 0),
            meta(4, 30, 6, 0),
        ];
        // Pair (1,2); extension adds 3 (total 120 ≤ 125) but not 4 (126).
        assert_eq!(find_merge(&ts, 1000, &plain(125)), Some(vec![1, 2, 3]));
    }

    #[test]
    fn merge_delay_blocks_young_tablets() {
        let policy = MergePolicy {
            merge_delay: 90_000_000,
            respect_periods: false,
            ..Default::default()
        };
        let ts = vec![meta(1, 0, 10, 0), meta(2, 10, 10, 50_000_000)];
        assert_eq!(find_merge(&ts, 100_000_000, &policy), None);
        assert_eq!(find_merge(&ts, 200_000_000, &policy), Some(vec![1, 2]));
    }

    #[test]
    fn period_boundaries_are_respected() {
        let policy = MergePolicy {
            merge_delay: 0,
            respect_periods: true,
            ..Default::default()
        };
        let now = 10 * WEEK + 3 * DAY;
        // One tablet in last week's bin, one in an old week bin.
        let ts = vec![meta(1, 8 * WEEK, 10, 0), meta(2, 10 * WEEK + DAY, 10, 0)];
        assert_eq!(find_merge(&ts, now, &policy), None);
        // Two in the same old week merge fine.
        let ts = vec![meta(1, 8 * WEEK, 10, 0), meta(2, 8 * WEEK + DAY, 10, 0)];
        assert_eq!(find_merge(&ts, now, &policy), Some(vec![1, 2]));
    }

    #[test]
    fn pair_exceeding_cap_is_skipped() {
        let ts = vec![meta(1, 0, 100, 0), meta(2, 10, 100, 0)];
        assert_eq!(find_merge(&ts, 1000, &plain(150)), None);
    }

    /// Drives the policy to a fixed point over synthetic tablets, tracking
    /// how many times each original tablet's rows are rewritten.
    fn run_to_fixpoint(sizes: &[u64]) -> (usize, u64, u64) {
        #[derive(Clone)]
        struct T {
            meta: TabletMeta,
            rewrites: u64,
        }
        let mut tablets: Vec<T> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| T {
                meta: meta(i as u64, i as i64 * 10, s.max(1), 0),
                rewrites: 0,
            })
            .collect();
        let mut next_id = sizes.len() as u64;
        let mut max_rewrites = 0u64;
        let mut merges = 0u64;
        loop {
            let metas: Vec<TabletMeta> = tablets.iter().map(|t| t.meta.clone()).collect();
            let Some(ids) = find_merge(&metas, 1_000_000, &plain(u64::MAX)) else {
                break;
            };
            merges += 1;
            let members: Vec<usize> = tablets
                .iter()
                .enumerate()
                .filter(|(_, t)| ids.contains(&t.meta.id))
                .map(|(i, _)| i)
                .collect();
            let total: u64 = members.iter().map(|&i| tablets[i].meta.bytes).sum();
            let rewrites = members.iter().map(|&i| tablets[i].rewrites).max().unwrap() + 1;
            max_rewrites = max_rewrites.max(rewrites);
            let min_ts = members
                .iter()
                .map(|&i| tablets[i].meta.min_ts)
                .min()
                .unwrap();
            let first = members[0];
            tablets[first] = T {
                meta: meta(next_id, min_ts, total, 0),
                rewrites,
            };
            next_id += 1;
            for &i in members[1..].iter().rev() {
                tablets.remove(i);
            }
            assert!(merges < 100_000, "merge loop did not converge");
        }
        let total: u64 = sizes.iter().map(|&s| s.max(1)).sum();
        (tablets.len(), max_rewrites, total)
    }

    #[test]
    fn equal_sized_tablets_collapse_logarithmically() {
        let (count, rewrites, total) = run_to_fixpoint(&vec![16 << 20; 64]);
        let log_t = (total as f64).log2();
        assert!(count as f64 <= log_t + 1.0, "count={count}, logT={log_t}");
        assert!(
            (rewrites as f64) <= 2.0 * log_t + 4.0,
            "rewrites={rewrites}, logT={log_t}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Appendix claim 1: at the fixed point, the tablet count is
        /// O(log T) — concretely, T ≥ 2ⁿ − 1 so n ≤ log₂(T+1).
        #[test]
        fn prop_fixpoint_count_is_logarithmic(
            sizes in proptest::collection::vec(1u64..1_000_000, 1..80)
        ) {
            let (count, _, total) = run_to_fixpoint(&sizes);
            let bound = ((total + 1) as f64).log2().ceil() as usize + 1;
            prop_assert!(count <= bound, "count={count} bound={bound} total={total}");
        }

        /// Appendix claim 2: each row is rewritten O(log T) times. Every
        /// merge the first tablet participates in grows it by ≥ 3/2, and
        /// non-first merges are bounded by the fixed-point argument; the
        /// combined constant is small.
        #[test]
        fn prop_row_rewrites_are_logarithmic(
            sizes in proptest::collection::vec(1u64..1_000_000, 1..80)
        ) {
            let (_, rewrites, total) = run_to_fixpoint(&sizes);
            let log_t = ((total + 1) as f64).log2();
            prop_assert!(
                (rewrites as f64) <= 4.0 * log_t + 8.0,
                "rewrites={rewrites} logT={log_t}"
            );
        }

        /// The returned candidate is always a run of adjacent, in-order
        /// tablet ids under the sorted order.
        #[test]
        fn prop_candidates_are_adjacent(
            sizes in proptest::collection::vec(1u64..1000, 2..40)
        ) {
            let metas: Vec<TabletMeta> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| meta(i as u64, i as i64 * 10, s, 0))
                .collect();
            if let Some(ids) = find_merge(&metas, 1_000, &plain(u64::MAX)) {
                prop_assert!(ids.len() >= 2);
                let first = ids[0] as usize;
                for (off, &id) in ids.iter().enumerate() {
                    prop_assert_eq!(id, (first + off) as u64);
                }
            }
        }
    }
}
