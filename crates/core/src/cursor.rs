//! Tablet cursors and the merge-sorted result stream (§3.2).
//!
//! To execute a query, LittleTable selects every tablet whose timespan
//! overlaps the query's timestamp bounds, opens a cursor on each at the
//! query's key bound (index binary search, then in-block binary search),
//! and merge-sorts the streams into a single result ordered by primary
//! key. Primary keys are unique table-wide, so the merge never sees ties.

use crate::block::Block;
use crate::error::Result;
use crate::keyenc::KeyRange;
use crate::row::Row;
use crate::schema::SchemaRef;
use crate::tablet::{TabletFooter, TabletReader};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Bound;
use std::sync::Arc;

/// A stream of `(encoded key, row)` pairs in cursor order (ascending or
/// descending by key, fixed at construction).
pub trait RowSource {
    /// Produces the next row, or `None` at the end.
    fn next_row(&mut self) -> Result<Option<(Vec<u8>, Row)>>;
}

/// Rows snapshotted out of an in-memory tablet.
pub struct MemSource {
    rows: std::vec::IntoIter<(Vec<u8>, Row)>,
}

impl MemSource {
    /// Wraps an ascending snapshot; `descending` reverses it.
    pub fn new(mut rows: Vec<(Vec<u8>, Row)>, descending: bool) -> Self {
        if descending {
            rows.reverse();
        }
        MemSource {
            rows: rows.into_iter(),
        }
    }
}

impl RowSource for MemSource {
    fn next_row(&mut self) -> Result<Option<(Vec<u8>, Row)>> {
        Ok(self.rows.next())
    }
}

/// A cursor over one on-disk tablet, bounded by a key range.
///
/// Rows are decoded under the tablet's own schema and translated to
/// `newest` (schema evolutions never rewrite tablets, §3.5).
pub struct DiskCursor {
    reader: Arc<TabletReader>,
    newest: SchemaRef,
    range: KeyRange,
    descending: bool,
    /// (block index, row index) of the next row to return; `None` before
    /// initialization or after exhaustion.
    pos: Option<(usize, usize)>,
    block: Option<Arc<Block>>,
    started: bool,
    /// When nonzero, forward scans fetch runs of consecutive blocks up to
    /// this many compressed bytes per read (§3.4.1's ~1 MB buffers, used
    /// by merges); prefetched blocks queue here. Run reads bypass the
    /// block cache — they stream each block exactly once, and admitting
    /// them would evict the point-read working set.
    read_run_bytes: usize,
    prefetched: std::collections::VecDeque<(usize, Arc<Block>)>,
    /// The tablet footer, pinned for this cursor's lifetime on first use.
    /// Cursors are per-query, so the pin is short-lived — it keeps the
    /// per-row emit path off the shared cache's locks and immune to a
    /// concurrent footer eviction mid-scan.
    footer: Option<Arc<TabletFooter>>,
}

impl DiskCursor {
    /// Creates a cursor; no I/O happens until the first `next_row`.
    pub fn new(
        reader: Arc<TabletReader>,
        newest: SchemaRef,
        range: KeyRange,
        descending: bool,
    ) -> Self {
        DiskCursor {
            reader,
            newest,
            range,
            descending,
            pos: None,
            block: None,
            started: false,
            read_run_bytes: 0,
            prefetched: std::collections::VecDeque::new(),
            footer: None,
        }
    }

    /// The tablet footer, loaded once and pinned for the cursor's
    /// lifetime.
    fn footer(&mut self) -> Result<Arc<TabletFooter>> {
        if self.footer.is_none() {
            self.footer = Some(self.reader.footer()?);
        }
        Ok(self.footer.clone().expect("just set"))
    }

    /// Enables run-buffered forward reads of up to `bytes` compressed
    /// bytes per disk access (ascending cursors only).
    pub fn with_read_run(mut self, bytes: usize) -> Self {
        self.read_run_bytes = bytes;
        self
    }

    fn load_block(&mut self, bi: usize) -> Result<()> {
        if self.read_run_bytes > 0 && !self.descending {
            // Serve from the prefetch queue, refilling with a long run.
            while let Some((qi, _)) = self.prefetched.front() {
                if *qi < bi {
                    self.prefetched.pop_front();
                } else {
                    break;
                }
            }
            match self.prefetched.front() {
                Some((qi, _)) if *qi == bi => {
                    let (_, block) = self.prefetched.pop_front().expect("front exists");
                    self.block = Some(block);
                    return Ok(());
                }
                _ => {
                    let run = self.reader.read_block_run(bi, self.read_run_bytes)?;
                    self.prefetched.clear();
                    for (off, block) in run.into_iter().enumerate() {
                        self.prefetched.push_back((bi + off, Arc::new(block)));
                    }
                    let (_, block) = self.prefetched.pop_front().expect("run is non-empty");
                    self.block = Some(block);
                    return Ok(());
                }
            }
        }
        self.block = Some(self.reader.read_block(bi)?);
        Ok(())
    }

    fn init(&mut self) -> Result<()> {
        self.started = true;
        let nblocks = self.footer()?.blocks.len();
        if nblocks == 0 {
            return Ok(());
        }
        if !self.descending {
            // Seek to the first row ≥/> the lower bound.
            let (bi, ri) = match self.range.start.clone() {
                Bound::Unbounded => (0, 0),
                Bound::Included(k) => {
                    let bi = self.reader.seek_block(&k)?;
                    if bi >= nblocks {
                        return Ok(());
                    }
                    self.load_block(bi)?;
                    (bi, self.block.as_ref().unwrap().seek_ge(&k)?)
                }
                Bound::Excluded(k) => {
                    let bi = self.reader.seek_block(&k)?;
                    if bi >= nblocks {
                        return Ok(());
                    }
                    self.load_block(bi)?;
                    (bi, self.block.as_ref().unwrap().seek_gt(&k)?)
                }
            };
            if self.block.is_none() {
                self.load_block(bi)?;
            }
            // The in-block seek can land past the block's end; normalize.
            self.pos = Some((bi, ri));
            self.normalize_forward()?;
        } else {
            // Seek to the last row ≤/< the upper bound.
            let (bi, ri) = match self.range.end.clone() {
                Bound::Unbounded => {
                    let bi = nblocks - 1;
                    self.load_block(bi)?;
                    let len = self.block.as_ref().unwrap().len();
                    if len == 0 {
                        return Ok(());
                    }
                    (bi, len - 1)
                }
                Bound::Included(k) => {
                    let mut bi = self.reader.seek_block(&k)?.min(nblocks - 1);
                    self.load_block(bi)?;
                    let mut ri = self.block.as_ref().unwrap().seek_gt(&k)?;
                    while ri == 0 {
                        if bi == 0 {
                            return Ok(());
                        }
                        bi -= 1;
                        self.load_block(bi)?;
                        ri = self.block.as_ref().unwrap().len();
                    }
                    (bi, ri - 1)
                }
                Bound::Excluded(k) => {
                    let mut bi = self.reader.seek_block(&k)?.min(nblocks - 1);
                    self.load_block(bi)?;
                    let mut ri = self.block.as_ref().unwrap().seek_ge(&k)?;
                    while ri == 0 {
                        if bi == 0 {
                            return Ok(());
                        }
                        bi -= 1;
                        self.load_block(bi)?;
                        ri = self.block.as_ref().unwrap().len();
                    }
                    (bi, ri - 1)
                }
            };
            self.pos = Some((bi, ri));
        }
        Ok(())
    }

    /// Moves (bi, ri) forward past block ends; clears `pos` at EOF.
    fn normalize_forward(&mut self) -> Result<()> {
        let nblocks = self.footer()?.blocks.len();
        while let Some((bi, ri)) = self.pos {
            let len = self.block.as_ref().map(|b| b.len()).unwrap_or(0);
            if ri < len {
                return Ok(());
            }
            if bi + 1 >= nblocks {
                self.pos = None;
                return Ok(());
            }
            self.load_block(bi + 1)?;
            self.pos = Some((bi + 1, 0));
        }
        Ok(())
    }

    fn emit(&self, bi: usize, ri: usize) -> Result<(Vec<u8>, Row)> {
        let block = self.block.as_ref().expect("block loaded");
        debug_assert_eq!(self.pos, Some((bi, ri)));
        let footer = self.footer.as_ref().expect("init pinned the footer");
        let key = block.key(ri)?.to_vec();
        let row = block.row(ri, &footer.schema)?;
        let row = if footer.schema.version() == self.newest.version() {
            row
        } else {
            Row::new(footer.schema.translate_row(&self.newest, row.values)?)
        };
        Ok((key, row))
    }
}

impl RowSource for DiskCursor {
    fn next_row(&mut self) -> Result<Option<(Vec<u8>, Row)>> {
        if !self.started {
            self.init()?;
        }
        let (bi, ri) = match self.pos {
            Some(p) => p,
            None => return Ok(None),
        };
        let (key, row) = self.emit(bi, ri)?;
        if !self.descending {
            // Check the upper bound.
            let in_range = match &self.range.end {
                Bound::Unbounded => true,
                Bound::Included(e) => key.as_slice() <= e.as_slice(),
                Bound::Excluded(e) => key.as_slice() < e.as_slice(),
            };
            if !in_range {
                self.pos = None;
                return Ok(None);
            }
            self.pos = Some((bi, ri + 1));
            self.normalize_forward()?;
        } else {
            let in_range = match &self.range.start {
                Bound::Unbounded => true,
                Bound::Included(s) => key.as_slice() >= s.as_slice(),
                Bound::Excluded(s) => key.as_slice() > s.as_slice(),
            };
            if !in_range {
                self.pos = None;
                return Ok(None);
            }
            if ri > 0 {
                self.pos = Some((bi, ri - 1));
            } else if bi > 0 {
                self.load_block(bi - 1)?;
                let len = self.block.as_ref().unwrap().len();
                if len == 0 {
                    self.pos = None;
                } else {
                    self.pos = Some((bi - 1, len - 1));
                }
            } else {
                self.pos = None;
            }
        }
        Ok(Some((key, row)))
    }
}

struct HeapEntry {
    key: Vec<u8>,
    row: Row,
    src: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.src == other.src
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.src.cmp(&other.src))
    }
}

/// Merge-sorts many [`RowSource`]s into one key-ordered stream.
pub struct MergeCursor {
    sources: Vec<Box<dyn RowSource + Send>>,
    // Ascending uses a min-heap (Reverse); descending a max-heap.
    min_heap: BinaryHeap<Reverse<HeapEntry>>,
    max_heap: BinaryHeap<HeapEntry>,
    descending: bool,
    primed: bool,
}

impl MergeCursor {
    /// Builds a merge over `sources`, all iterating in the same direction.
    pub fn new(sources: Vec<Box<dyn RowSource + Send>>, descending: bool) -> Self {
        MergeCursor {
            sources,
            min_heap: BinaryHeap::new(),
            max_heap: BinaryHeap::new(),
            descending,
            primed: false,
        }
    }

    fn prime(&mut self) -> Result<()> {
        self.primed = true;
        for i in 0..self.sources.len() {
            self.advance_source(i)?;
        }
        Ok(())
    }

    fn advance_source(&mut self, i: usize) -> Result<()> {
        if let Some((key, row)) = self.sources[i].next_row()? {
            let e = HeapEntry { key, row, src: i };
            if self.descending {
                self.max_heap.push(e);
            } else {
                self.min_heap.push(Reverse(e));
            }
        }
        Ok(())
    }

    /// Produces the next row in global key order.
    pub fn next_row(&mut self) -> Result<Option<(Vec<u8>, Row)>> {
        if !self.primed {
            self.prime()?;
        }
        let entry = if self.descending {
            self.max_heap.pop()
        } else {
            self.min_heap.pop().map(|r| r.0)
        };
        match entry {
            None => Ok(None),
            Some(e) => {
                self.advance_source(e.src)?;
                Ok(Some((e.key, e.row)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::tablet::TabletWriter;
    use crate::value::{ColumnType, Value};
    use littletable_vfs::{SimVfs, Vfs};

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::new(
                vec![
                    ColumnDef::new("n", ColumnType::I64),
                    ColumnDef::new("ts", ColumnType::Timestamp),
                ],
                &["n", "ts"],
            )
            .unwrap(),
        )
    }

    fn key_of(s: &Schema, n: i64, ts: i64) -> Vec<u8> {
        Row::new(vec![Value::I64(n), Value::Timestamp(ts)])
            .encode_key(s)
            .unwrap()
    }

    /// Writes a tablet holding rows (n, ts=n) for n in `ns`.
    fn write(vfs: &SimVfs, path: &str, s: &Schema, ns: &[i64]) -> Arc<TabletReader> {
        write_as(vfs, path, s, ns, crate::block::BlockFormat::Columnar)
    }

    fn write_as(
        vfs: &SimVfs,
        path: &str,
        s: &Schema,
        ns: &[i64],
        format: crate::block::BlockFormat,
    ) -> Arc<TabletReader> {
        let mut w = TabletWriter::new(vfs.create(path, 0).unwrap(), s.clone(), 256, false, format);
        let mut sorted = ns.to_vec();
        sorted.sort_unstable();
        for n in sorted {
            let row = Row::new(vec![Value::I64(n), Value::Timestamp(n)]);
            let key = row.encode_key(s).unwrap();
            w.add_row(&key, &row).unwrap();
        }
        w.finish().unwrap();
        Arc::new(TabletReader::new(
            Arc::new(vfs.clone()) as Arc<dyn Vfs>,
            path.to_string(),
        ))
    }

    fn drain(mut c: impl FnMut() -> Result<Option<(Vec<u8>, Row)>>) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some((_, row)) = c().unwrap() {
            match &row.values[0] {
                Value::I64(n) => out.push(*n),
                _ => panic!(),
            }
        }
        out
    }

    #[test]
    fn disk_cursor_full_scan_ascending() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r = write(&vfs, "t", &s, &(0..100).collect::<Vec<_>>());
        let mut c = DiskCursor::new(r, s.clone(), KeyRange::all(), false);
        assert_eq!(drain(|| c.next_row()), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disk_cursor_full_scan_descending() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r = write(&vfs, "t", &s, &(0..100).collect::<Vec<_>>());
        let mut c = DiskCursor::new(r, s.clone(), KeyRange::all(), true);
        assert_eq!(drain(|| c.next_row()), (0..100).rev().collect::<Vec<_>>());
    }

    #[test]
    fn disk_cursor_bounded_range() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r = write(&vfs, "t", &s, &(0..100).collect::<Vec<_>>());
        let range = KeyRange {
            start: Bound::Included(key_of(&s, 10, 10)),
            end: Bound::Excluded(key_of(&s, 20, 20)),
        };
        let mut c = DiskCursor::new(r.clone(), s.clone(), range.clone(), false);
        assert_eq!(drain(|| c.next_row()), (10..20).collect::<Vec<_>>());
        let mut c = DiskCursor::new(r, s.clone(), range, true);
        assert_eq!(drain(|| c.next_row()), (10..20).rev().collect::<Vec<_>>());
    }

    #[test]
    fn disk_cursor_exclusive_bounds() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r = write(&vfs, "t", &s, &(0..50).collect::<Vec<_>>());
        let range = KeyRange {
            start: Bound::Excluded(key_of(&s, 10, 10)),
            end: Bound::Included(key_of(&s, 20, 20)),
        };
        let mut c = DiskCursor::new(r.clone(), s.clone(), range.clone(), false);
        assert_eq!(drain(|| c.next_row()), (11..=20).collect::<Vec<_>>());
        let mut c = DiskCursor::new(r, s.clone(), range, true);
        assert_eq!(drain(|| c.next_row()), (11..=20).rev().collect::<Vec<_>>());
    }

    #[test]
    fn disk_cursor_empty_range() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r = write(&vfs, "t", &s, &[1, 2, 3]);
        let range = KeyRange {
            start: Bound::Included(key_of(&s, 100, 100)),
            end: Bound::Unbounded,
        };
        let mut c = DiskCursor::new(r.clone(), s.clone(), range, false);
        assert!(c.next_row().unwrap().is_none());
        let range = KeyRange {
            start: Bound::Unbounded,
            end: Bound::Excluded(key_of(&s, 0, 0)),
        };
        let mut c = DiskCursor::new(r, s.clone(), range, true);
        assert!(c.next_row().unwrap().is_none());
    }

    #[test]
    fn merge_cursor_interleaves() {
        let vfs = SimVfs::instant();
        let s = schema();
        let evens: Vec<i64> = (0..50).map(|i| i * 2).collect();
        let odds: Vec<i64> = (0..50).map(|i| i * 2 + 1).collect();
        let r1 = write(&vfs, "a", &s, &evens);
        let r2 = write(&vfs, "b", &s, &odds);
        let srcs: Vec<Box<dyn RowSource + Send>> = vec![
            Box::new(DiskCursor::new(r1, s.clone(), KeyRange::all(), false)),
            Box::new(DiskCursor::new(r2, s.clone(), KeyRange::all(), false)),
        ];
        let mut m = MergeCursor::new(srcs, false);
        assert_eq!(drain(|| m.next_row()), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn merge_cursor_descending_with_mem_source() {
        let vfs = SimVfs::instant();
        let s = schema();
        let r1 = write(&vfs, "a", &s, &[1, 3, 5]);
        let mem_rows: Vec<(Vec<u8>, Row)> = [2i64, 4]
            .iter()
            .map(|&n| {
                let row = Row::new(vec![Value::I64(n), Value::Timestamp(n)]);
                (row.encode_key(&s).unwrap(), row)
            })
            .collect();
        let srcs: Vec<Box<dyn RowSource + Send>> = vec![
            Box::new(DiskCursor::new(r1, s.clone(), KeyRange::all(), true)),
            Box::new(MemSource::new(mem_rows, true)),
        ];
        let mut m = MergeCursor::new(srcs, true);
        assert_eq!(drain(|| m.next_row()), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn merge_of_empty_sources() {
        let srcs: Vec<Box<dyn RowSource + Send>> = vec![
            Box::new(MemSource::new(Vec::new(), false)),
            Box::new(MemSource::new(Vec::new(), false)),
        ];
        let mut m = MergeCursor::new(srcs, false);
        assert!(m.next_row().unwrap().is_none());
    }

    #[test]
    fn schema_translation_on_read() {
        let vfs = SimVfs::instant();
        let s1 = schema();
        let r = write(&vfs, "t", &s1, &[1, 2]);
        let s2 = Arc::new(
            s1.add_column(ColumnDef::with_default(
                "extra",
                ColumnType::I64,
                Value::I64(-7),
            ))
            .unwrap(),
        );
        let mut c = DiskCursor::new(r, s2.clone(), KeyRange::all(), false);
        let (_, row) = c.next_row().unwrap().unwrap();
        assert_eq!(row.values.len(), 3);
        assert_eq!(row.values[2], Value::I64(-7));
    }
}
