//! Error type shared across the engine.

use std::fmt;
use std::io;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong inside the storage engine.
#[derive(Debug)]
pub enum Error {
    /// An underlying VFS operation failed.
    Io(io::Error),
    /// On-disk data failed validation (bad magic, checksum, truncation).
    Corrupt(String),
    /// A row, query, or schema was malformed for the operation.
    Invalid(String),
    /// A table already exists.
    TableExists(String),
    /// A table does not exist.
    NoSuchTable(String),
    /// An inserted row's primary key duplicates an existing row's.
    DuplicateKey(String),
    /// A schema change was not one of the supported evolutions.
    SchemaChange(String),
    /// The engine is shutting down.
    ShuttingDown,
}

impl Error {
    /// Builds [`Error::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// Builds [`Error::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }

    /// Whether retrying the same operation could plausibly succeed: a
    /// transient I/O failure (`EIO`, `EINTR`, `EAGAIN`, timeouts) rather
    /// than a durable condition like a missing file or a full disk.
    /// Background maintenance keys its bounded-backoff retry loop on this.
    pub fn is_transient(&self) -> bool {
        let Error::Io(e) = self else { return false };
        if matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            return true;
        }
        // EIO(5), EINTR(4), EAGAIN(11): the kernel may report these for
        // conditions that clear on retry (path failover, signal, pressure).
        matches!(e.raw_os_error(), Some(5) | Some(4) | Some(11))
    }

    /// Whether the error means on-disk bytes failed validation (bad magic,
    /// CRC mismatch, impossible geometry). Quarantine policy keys on this:
    /// corruption is never retried, the offending file is set aside.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corrupt(_))
    }

    /// Whether the error is the device reporting no space (`ENOSPC`).
    /// Distinct from [`Error::is_transient`]: retrying without freeing
    /// space is pointless, but the condition is recoverable and must not
    /// poison in-memory state.
    pub fn is_disk_full(&self) -> bool {
        let Error::Io(e) = self else { return false };
        e.kind() == io::ErrorKind::StorageFull || e.raw_os_error() == Some(28)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::NoSuchTable(t) => write!(f, "no such table: {t}"),
            Error::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            Error::SchemaChange(m) => write!(f, "unsupported schema change: {m}"),
            Error::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<littletable_compress::DecompressError> for Error {
    fn from(e: littletable_compress::DecompressError) -> Self {
        Error::Corrupt(format!("decompression failed: {e}"))
    }
}

impl From<littletable_codec::CodecError> for Error {
    fn from(e: littletable_codec::CodecError) -> Self {
        Error::Corrupt(format!("column codec: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::DuplicateKey("(n1, d2, 42)".into());
        assert!(e.to_string().contains("duplicate"));
        assert!(e.to_string().contains("(n1, d2, 42)"));
    }

    #[test]
    fn io_errors_convert() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn transient_classification() {
        let eio: Error = io::Error::from_raw_os_error(5).into();
        assert!(eio.is_transient());
        assert!(!eio.is_corruption());
        assert!(!eio.is_disk_full());

        let intr: Error = io::Error::new(io::ErrorKind::Interrupted, "sig").into();
        assert!(intr.is_transient());

        let gone: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(!gone.is_transient());
    }

    #[test]
    fn disk_full_classification() {
        let nospc: Error = io::Error::from_raw_os_error(28).into();
        assert!(nospc.is_disk_full());
        assert!(!nospc.is_transient());
    }

    #[test]
    fn corruption_classification() {
        let c = Error::corrupt("bad magic");
        assert!(c.is_corruption());
        assert!(!c.is_transient());
        assert!(!Error::ShuttingDown.is_corruption());
    }
}
