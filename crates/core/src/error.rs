//! Error type shared across the engine.

use std::fmt;
use std::io;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong inside the storage engine.
#[derive(Debug)]
pub enum Error {
    /// An underlying VFS operation failed.
    Io(io::Error),
    /// On-disk data failed validation (bad magic, checksum, truncation).
    Corrupt(String),
    /// A row, query, or schema was malformed for the operation.
    Invalid(String),
    /// A table already exists.
    TableExists(String),
    /// A table does not exist.
    NoSuchTable(String),
    /// An inserted row's primary key duplicates an existing row's.
    DuplicateKey(String),
    /// A schema change was not one of the supported evolutions.
    SchemaChange(String),
    /// The engine is shutting down.
    ShuttingDown,
}

impl Error {
    /// Builds [`Error::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// Builds [`Error::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::NoSuchTable(t) => write!(f, "no such table: {t}"),
            Error::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            Error::SchemaChange(m) => write!(f, "unsupported schema change: {m}"),
            Error::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<littletable_compress::DecompressError> for Error {
    fn from(e: littletable_compress::DecompressError) -> Self {
        Error::Corrupt(format!("decompression failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::DuplicateKey("(n1, d2, 42)".into());
        assert!(e.to_string().contains("duplicate"));
        assert!(e.to_string().contains("(n1, d2, 42)"));
    }

    #[test]
    fn io_errors_convert() {
        let e: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
