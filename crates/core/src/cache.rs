//! A sharded, two-tier cache of tablet blocks and footers, shared
//! database-wide.
//!
//! LittleTable's read path spends its CPU budget decompressing 64 kB
//! blocks (§3.2): a point query or short scan that revisits a warm tablet
//! pays the block read *and* the decompression again on every access,
//! even though tablets are write-once and a decompressed block can never
//! go stale. This cache keeps recently used blocks in memory, keyed by
//! `(tablet id, block index)`, under one joint byte budget
//! ([`crate::options::Options::block_cache_bytes`]) split across two
//! tiers:
//!
//! * The **upper (decompressed) tier** holds parsed [`Block`]s ready to
//!   serve reads, plus cached [`TabletFooter`]s under their own charge
//!   class — folding the paper's "footers cached almost indefinitely"
//!   into a bounded budget instead of pinning one footer per reader
//!   forever.
//! * The **lower (compressed) tier** holds the *compressed* bytes of
//!   blocks evicted from the upper tier. A re-read of a demoted block
//!   costs one decompress (~tens of µs) instead of a disk seek (~10 ms
//!   on the paper's drive), the read-amplification-vs-memory tradeoff of
//!   the LSM literature. The two tiers are *exclusive*: promotion moves
//!   an entry up, eviction demotes it down, so no block is charged twice.
//!
//! Design points:
//!
//! * **Sharded.** Keys hash to one of N shards (N rounded up to a power
//!   of two, then down while a shard's budget slice would fall below
//!   [`MIN_SHARD_SLICE`]), each with its own small mutex, so concurrent
//!   queries on different tablets rarely contend. Each tier's budget is
//!   split evenly across shards and each shard enforces its slice
//!   strictly — the total can therefore never exceed the joint budget.
//! * **CLOCK eviction.** Each shard keeps its entries in a slab swept by
//!   a clock hand; a hit sets the entry's reference bit, eviction clears
//!   bits until it finds an unreferenced victim. LRU-quality hit rates
//!   without LRU's per-access list surgery.
//! * **Scan-resistant admission.** Only the single-block read path
//!   ([`crate::tablet::TabletReader::read_block`]) consults or fills the
//!   cache. The ~1 MB buffered run reads that merges and bulk rewrites
//!   use (§3.4.1, [`crate::tablet::TabletReader::read_block_run`]) bypass
//!   it entirely, so a full-table merge pass cannot wipe out the hot set
//!   the way it would with admit-everything caching.
//! * **Write-once keys.** Tablet ids are allocated once per
//!   [`crate::tablet::TabletReader`] and never reused, so an entry can
//!   never alias a different tablet's data. When a reader is dropped
//!   (merge, TTL expiry, bulk delete, table drop), its entries — both
//!   tiers and the footer — are invalidated.
//! * **Adaptive tier split (ARC-style ghost lists).** When built with
//!   [`BlockCache::new_adaptive`], each tier's shards remember the keys
//!   (not the bytes) of recently evicted entries in a bounded FIFO
//!   *ghost list*. A miss that hits a ghost is a would-have-hit: the
//!   access would have been served had that tier been larger. Ghost
//!   hits are tallied by byte weight — scaled for the lower tier by
//!   [`GHOST_DISK_WEIGHT`], since the miss it signals costs a disk read
//!   where an upper-tier miss costs only a decompression — and a
//!   periodic [`rebalance`] (driven from `Db::maintain`) moves a
//!   bounded slice of the joint budget toward the tier with the greater
//!   unmet demand — so a
//!   scan-heavy phase (many re-reads of a working set wider than RAM's
//!   decompressed slice) grows the compressed tier, while a point-read
//!   phase (small hot set, decompress cost dominates) grows the
//!   decompressed tier, with no operator retuning either way. The two
//!   tier budgets always sum to the configured joint budget; each tier
//!   keeps a floor slice so it never starves out of the feedback loop.
//!
//! [`rebalance`]: BlockCache::rebalance
//!
//! Locks are held only for map and slab bookkeeping — never across disk
//! reads or decompression, and never one shard inside another (demotions
//! gather their victims under the upper-tier lock, then insert them into
//! the lower tier after releasing it). Concurrent misses on the same
//! block may both decompress it; the second insert is dropped, which
//! wastes a little CPU once but never blocks a reader behind another
//! reader's I/O.

use crate::block::Block;
use crate::stats::TableStats;
use crate::tablet::TabletFooter;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default number of shards when [`crate::options::Options`] leaves the
/// count at zero.
pub const DEFAULT_SHARDS: usize = 8;

/// Minimum useful per-shard slice of a tier's budget. The shard count
/// shrinks (halving, staying a power of two) until every configured
/// tier's slice reaches this floor, so a small budget becomes a
/// single-shard cache instead of silently rounding to zero capacity.
pub const MIN_SHARD_SLICE: usize = 16 << 10;

/// Weight applied to lower-tier ghost votes in the adaptive split's
/// demand tally. The two tiers' would-have-hits are not worth the same:
/// an upper-tier ghost hit means the access paid a decompression (~tens
/// of µs for a 64 kB block), a lower-tier ghost hit means it paid a
/// disk read (~10 ms of seek and transfer on the paper's drive). Left
/// unweighted, the upper tier also votes with systematically larger
/// charges (decompressed plus retained compressed bytes vs compressed
/// bytes alone), so compressed-tier demand would be structurally
/// outvoted even when it is the expensive kind. Sixteen is a
/// deliberately conservative fraction of the real ~100x cost ratio:
/// enough for disk-bound demand to win decisively, small enough that
/// sustained decompression pressure can still pull budget back up.
pub const GHOST_DISK_WEIGHT: u64 = 16;

/// Cache key: a never-reused tablet id plus the block's index within it.
type BlockKey = (u64, u32);

/// Pseudo block index under which a tablet's footer is cached. Real
/// block indexes can never reach it: a tablet would need > 256 TB of
/// 64 kB blocks, three orders of magnitude past `max_tablet_size`.
const FOOTER_SLOT: u32 = u32::MAX;

/// The compressed on-disk form of a block, retained so an eviction from
/// the decompressed tier can be demoted instead of discarded.
#[derive(Clone)]
pub struct CompressedBlock {
    /// The block's compressed bytes, exactly as stored on disk.
    pub bytes: Arc<[u8]>,
    /// Decompressed size, needed to decompress on promotion.
    pub uncompressed_len: u32,
}

/// Value held by an upper-tier slot: a hot decompressed block (with its
/// compressed form kept for demotion) or a tablet footer.
enum UpperValue {
    Block {
        block: Arc<Block>,
        compressed: Option<CompressedBlock>,
    },
    Footer(Arc<TabletFooter>),
}

struct Slot<V> {
    key: BlockKey,
    value: V,
    charge: usize,
    /// Stats of the table that inserted the entry; evictions are charged
    /// back to it.
    owner: Arc<TableStats>,
    /// CLOCK reference bit: set on hit, cleared by the sweeping hand.
    referenced: bool,
}

struct TierInner<V> {
    map: HashMap<BlockKey, usize>,
    /// Slab of entries; `None` holes are reusable via `free`.
    slots: Vec<Option<Slot<V>>>,
    free: Vec<usize>,
    bytes: usize,
    hand: usize,
    /// ARC-style ghost list: keys of recently evicted entries with the
    /// charge they carried, FIFO-bounded to the tier's capacity. Empty
    /// unless the cache is adaptive. A hit here is a would-have-hit that
    /// votes to grow this tier at the next rebalance.
    ghost: VecDeque<BlockKey>,
    ghost_map: HashMap<BlockKey, u32>,
    ghost_bytes: usize,
}

impl<V> Default for TierInner<V> {
    fn default() -> Self {
        TierInner {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            bytes: 0,
            hand: 0,
            ghost: VecDeque::new(),
            ghost_map: HashMap::new(),
            ghost_bytes: 0,
        }
    }
}

impl<V> TierInner<V> {
    /// Remembers an evicted key in the ghost list, bounded to `cap`
    /// bytes of remembered charge (0 disables, for non-adaptive caches).
    fn ghost_remember(&mut self, key: BlockKey, charge: usize, cap: usize) {
        if cap == 0 {
            return;
        }
        let charge = charge.min(u32::MAX as usize) as u32;
        match self.ghost_map.insert(key, charge) {
            // Re-evicted while its stale FIFO entry is still queued:
            // keep the old queue position, just refresh the charge.
            Some(old) => self.ghost_bytes -= old as usize,
            None => self.ghost.push_back(key),
        }
        self.ghost_bytes += charge as usize;
        while self.ghost_bytes > cap {
            let Some(oldest) = self.ghost.pop_front() else {
                break;
            };
            if let Some(c) = self.ghost_map.remove(&oldest) {
                self.ghost_bytes -= c as usize;
            }
        }
    }

    /// Removes `key` from the ghost list, returning its remembered
    /// charge. The FIFO keeps a stale entry that is skipped when popped.
    fn ghost_take(&mut self, key: &BlockKey) -> Option<u32> {
        let charge = self.ghost_map.remove(key)?;
        self.ghost_bytes -= charge as usize;
        Some(charge)
    }

    /// Evicts unreferenced entries (second-chance order) until `need`
    /// more bytes fit under `capacity`, pushing victims onto `victims`
    /// for the caller to account (and possibly demote) outside the shard
    /// lock. Victims are remembered in the ghost list when `ghost_cap`
    /// is nonzero. Returns false when impossible.
    fn evict_until_fits(
        &mut self,
        need: usize,
        capacity: usize,
        ghost_cap: usize,
        victims: &mut Vec<Slot<V>>,
    ) -> bool {
        while self.bytes + need > capacity {
            if self.map.is_empty() {
                return false;
            }
            let n = self.slots.len();
            // Bounded sweep: after one full lap every reference bit is
            // clear, so the second lap must find a victim.
            let mut sweep = 0usize;
            loop {
                sweep += 1;
                if sweep > 2 * n + 1 {
                    return false; // defensive; unreachable in practice
                }
                self.hand = (self.hand + 1) % n;
                let Some(slot) = &mut self.slots[self.hand] else {
                    continue;
                };
                if slot.referenced {
                    slot.referenced = false;
                    continue;
                }
                let victim = self.slots[self.hand].take().expect("checked above");
                self.map.remove(&victim.key);
                self.free.push(self.hand);
                self.bytes -= victim.charge;
                self.ghost_remember(victim.key, victim.charge, ghost_cap);
                victims.push(victim);
                break;
            }
        }
        true
    }

    /// Places a slot the caller has already made room for.
    fn insert_slot(&mut self, slot: Slot<V>) {
        let key = slot.key;
        let charge = slot.charge;
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] = Some(slot);
        self.map.insert(key, idx);
        self.bytes += charge;
    }

    fn remove_key(&mut self, key: &BlockKey) -> Option<Slot<V>> {
        let idx = self.map.remove(key)?;
        let slot = self.slots[idx].take().expect("map points at live slot");
        self.bytes -= slot.charge;
        self.free.push(idx);
        Some(slot)
    }
}

struct Shard<V> {
    inner: Mutex<TierInner<V>>,
    /// Lock-free mirror of `inner.bytes` for observation.
    bytes: AtomicUsize,
}

fn make_shards<V>(n: usize) -> Box<[Shard<V>]> {
    (0..n)
        .map(|_| Shard {
            inner: Mutex::new(TierInner::default()),
            bytes: AtomicUsize::new(0),
        })
        .collect()
}

/// The sharded, scan-resistant, two-tier block-and-footer cache. One
/// instance is shared by every table of a [`crate::db::Db`].
pub struct BlockCache {
    /// Decompressed blocks and tablet footers.
    upper: Box<[Shard<UpperValue>]>,
    /// Compressed bytes of blocks demoted from the upper tier.
    lower: Box<[Shard<CompressedBlock>]>,
    /// Per-shard tier slices. Plain values at rest for a static split;
    /// [`BlockCache::rebalance`] moves bytes between them while their sum
    /// stays pinned at `shard_total`.
    upper_shard_capacity: AtomicUsize,
    lower_shard_capacity: AtomicUsize,
    /// The fixed joint per-shard budget: `upper + lower` slices always
    /// sum to this, so the cache can never grow past its configured size
    /// no matter how the split drifts.
    shard_total: usize,
    /// Ghost lists and rebalancing are active (see `new_adaptive`).
    adaptive: bool,
    shard_mask: u64,
    next_tablet_id: AtomicU64,
    /// Would-have-hit tallies since the last rebalance, byte-weighted so
    /// a big block's unmet demand votes proportionally to the budget it
    /// would have needed. Swapped to zero by each rebalance.
    ghost_bytes_decompressed: AtomicU64,
    ghost_bytes_compressed: AtomicU64,
    /// Cumulative ghost-hit counts, for observability (never reset).
    ghost_hits_decompressed: AtomicU64,
    ghost_hits_compressed: AtomicU64,
    /// Number of rebalances that actually moved budget.
    rebalances: AtomicU64,
}

impl BlockCache {
    /// Creates a cache whose upper (decompressed + footer) tier holds at
    /// most `decompressed_bytes` and whose lower (compressed) tier holds
    /// at most `compressed_bytes`, across `shards` shards each
    /// (0 = [`DEFAULT_SHARDS`]; rounded up to a power of two, then down
    /// while any configured tier's slice would fall under
    /// [`MIN_SHARD_SLICE`]).
    pub fn new(decompressed_bytes: usize, compressed_bytes: usize, shards: usize) -> BlockCache {
        let mut shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .next_power_of_two()
            .min(1 << 10);
        // Shrink the shard count until the smallest configured tier still
        // gets a useful slice per shard; a budget below the shard count
        // must become a small cache, not a capacity-zero one.
        let floor = [decompressed_bytes, compressed_bytes]
            .into_iter()
            .filter(|&b| b > 0)
            .min()
            .unwrap_or(0);
        while shards > 1 && floor / shards < MIN_SHARD_SLICE {
            shards /= 2;
        }
        Self::build(
            decompressed_bytes / shards,
            compressed_bytes / shards,
            shards,
            false,
        )
    }

    /// Creates a cache whose *joint* budget is `total_bytes`, split
    /// between the tiers at `initial_compressed_fraction` and thereafter
    /// retuned by [`BlockCache::rebalance`] from ghost-list demand. Each
    /// tier's slice is clamped to at least 1/8 of the joint budget so it
    /// keeps generating evictions — and therefore ghost signal — even
    /// when the current phase has no use for it.
    pub fn new_adaptive(
        total_bytes: usize,
        initial_compressed_fraction: f64,
        shards: usize,
    ) -> BlockCache {
        let mut shards = if shards == 0 { DEFAULT_SHARDS } else { shards }
            .next_power_of_two()
            .min(1 << 10);
        // Both tiers must clear MIN_SHARD_SLICE even at the floor split.
        while shards > 1 && total_bytes / shards / 8 < MIN_SHARD_SLICE {
            shards /= 2;
        }
        let shard_total = total_bytes / shards;
        let floor = shard_total / 8;
        let frac = initial_compressed_fraction.clamp(0.0, 1.0);
        let lower = ((shard_total as f64 * frac) as usize).clamp(floor, shard_total - floor);
        Self::build(shard_total - lower, lower, shards, shard_total > 0)
    }

    fn build(upper_slice: usize, lower_slice: usize, shards: usize, adaptive: bool) -> BlockCache {
        BlockCache {
            upper: make_shards(shards),
            lower: make_shards(shards),
            upper_shard_capacity: AtomicUsize::new(upper_slice),
            lower_shard_capacity: AtomicUsize::new(lower_slice),
            shard_total: upper_slice + lower_slice,
            adaptive,
            shard_mask: shards as u64 - 1,
            next_tablet_id: AtomicU64::new(1),
            ghost_bytes_decompressed: AtomicU64::new(0),
            ghost_bytes_compressed: AtomicU64::new(0),
            ghost_hits_decompressed: AtomicU64::new(0),
            ghost_hits_compressed: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
        }
    }

    /// Per-shard byte bound on each tier's ghost list: the joint budget,
    /// so the ghosts can answer "would the whole cache, given over to
    /// this tier, have held it?". Zero (disabled) for static caches.
    fn ghost_cap(&self) -> usize {
        if self.adaptive {
            self.shard_total
        } else {
            0
        }
    }

    /// Allocates a fresh tablet id. Ids are never reused, so entries of a
    /// deleted tablet can never be confused with a newer tablet's.
    pub fn register_tablet(&self) -> u64 {
        self.next_tablet_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_idx(&self, key: BlockKey) -> usize {
        // splitmix64-style finalizer over the packed key.
        let mut h = key.0.rotate_left(32) ^ key.1 as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((h ^ (h >> 31)) & self.shard_mask) as usize
    }

    /// Records a would-have-hit against the upper tier's ghost list.
    fn note_upper_ghost(&self, inner: &mut TierInner<UpperValue>, key: &BlockKey) {
        if !self.adaptive {
            return;
        }
        if let Some(charge) = inner.ghost_take(key) {
            self.ghost_hits_decompressed.fetch_add(1, Ordering::Relaxed);
            self.ghost_bytes_decompressed
                .fetch_add(charge as u64, Ordering::Relaxed);
        }
    }

    /// Looks up a decompressed block, marking it recently used on a hit.
    /// A miss votes for neither tier here: whether it represents unmet
    /// *decompressed* demand depends on whether the lower tier serves it,
    /// which [`take_compressed`] resolves.
    ///
    /// [`take_compressed`]: BlockCache::take_compressed
    pub fn get(&self, tablet_id: u64, block_index: u32) -> Option<Arc<Block>> {
        let key = (tablet_id, block_index);
        let shard = &self.upper[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        let &idx = inner.map.get(&key)?;
        let slot = inner.slots[idx].as_mut().expect("map points at live slot");
        match &slot.value {
            UpperValue::Block { block, .. } => {
                let block = block.clone();
                slot.referenced = true;
                Some(block)
            }
            UpperValue::Footer(_) => None,
        }
    }

    /// Removes and returns a block's compressed bytes from the lower
    /// tier. The caller decompresses and re-admits the block to the
    /// upper tier (which carries the compressed form along), keeping the
    /// tiers exclusive.
    ///
    /// This is also where the adaptive split's demand signal resolves.
    /// The two ghost votes are mutually exclusive per access, so they
    /// cannot cancel each other out:
    ///
    /// * lower serves the block and the upper ghost remembers it — a
    ///   larger *decompressed* tier would have saved this decompression;
    /// * neither tier has it but the lower ghost remembers it — a larger
    ///   *compressed* tier would have saved the disk read the caller is
    ///   about to pay. (An access that is a full miss in both tiers and
    ///   both ghosts votes for neither.)
    pub fn take_compressed(&self, tablet_id: u64, block_index: u32) -> Option<CompressedBlock> {
        let key = (tablet_id, block_index);
        let shard = &self.lower[self.shard_idx(key)];
        let taken = {
            let mut inner = shard.inner.lock();
            match inner.remove_key(&key) {
                Some(slot) => {
                    shard.bytes.store(inner.bytes, Ordering::Relaxed);
                    Some(slot.value)
                }
                None => {
                    if self.adaptive {
                        if let Some(charge) = inner.ghost_take(&key) {
                            self.ghost_hits_compressed.fetch_add(1, Ordering::Relaxed);
                            self.ghost_bytes_compressed
                                .fetch_add(charge as u64 * GHOST_DISK_WEIGHT, Ordering::Relaxed);
                        }
                    }
                    None
                }
            }
        };
        // Lower-tier hit: the access still pays a decompression the upper
        // tier would have spared. Taken after the lower lock is released —
        // the admission paths nest upper-then-lower, never the reverse.
        if taken.is_some() && self.adaptive {
            let upper = &self.upper[self.shard_idx(key)];
            let mut inner = upper.inner.lock();
            self.note_upper_ghost(&mut inner, &key);
        }
        taken
    }

    /// Admits a decompressed block, charged by its decompressed size plus
    /// the retained compressed bytes, evicting colder entries to fit.
    /// Evicted blocks demote their compressed form to the lower tier;
    /// evicted footers count against their owner's `footer_evictions`.
    /// Blocks too large for one shard's slice (and keys already present)
    /// skip the upper tier; their compressed bytes go straight down.
    pub fn insert(
        &self,
        tablet_id: u64,
        block_index: u32,
        block: Arc<Block>,
        compressed: Option<CompressedBlock>,
        owner: &Arc<TableStats>,
    ) {
        let key = (tablet_id, block_index);
        let charge = block.byte_size() + compressed.as_ref().map_or(0, |c| c.bytes.len());
        let upper_capacity = self.upper_shard_capacity.load(Ordering::Relaxed);
        if charge > upper_capacity {
            if let Some(c) = compressed {
                self.insert_compressed(key, c, owner);
            }
            return;
        }
        let shard = &self.upper[self.shard_idx(key)];
        let mut victims = Vec::new();
        let mut rejected = None;
        {
            let mut inner = shard.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                // Lost a race with another miss on the same block.
                inner.slots[idx].as_mut().expect("live slot").referenced = true;
            } else if inner.evict_until_fits(charge, upper_capacity, self.ghost_cap(), &mut victims)
            {
                // New entries start unreferenced: a block read once and
                // never touched again is the first to go, while anything
                // re-read earns its second chance. This is what makes
                // single-pass traffic that does reach the cache (e.g. a
                // one-off wide query) cheap to absorb.
                inner.insert_slot(Slot {
                    key,
                    value: UpperValue::Block { block, compressed },
                    charge,
                    owner: owner.clone(),
                    referenced: false,
                });
            } else {
                rejected = compressed;
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        if let Some(c) = rejected {
            self.insert_compressed(key, c, owner);
        }
        self.settle_upper_victims(victims);
    }

    /// Admits a tablet footer under its own charge class, evicting colder
    /// entries (blocks or other footers) to fit. A footer too large for
    /// one shard's slice is not admitted and will reload from disk on
    /// each use — bounded memory wins over pinning at pathological sizes.
    pub fn insert_footer(
        &self,
        tablet_id: u64,
        footer: Arc<TabletFooter>,
        owner: &Arc<TableStats>,
    ) {
        let key = (tablet_id, FOOTER_SLOT);
        let charge = footer.approx_byte_size();
        let upper_capacity = self.upper_shard_capacity.load(Ordering::Relaxed);
        if charge > upper_capacity {
            return;
        }
        let shard = &self.upper[self.shard_idx(key)];
        let mut victims = Vec::new();
        {
            let mut inner = shard.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                inner.slots[idx].as_mut().expect("live slot").referenced = true;
            } else if inner.evict_until_fits(charge, upper_capacity, self.ghost_cap(), &mut victims)
            {
                inner.insert_slot(Slot {
                    key,
                    value: UpperValue::Footer(footer),
                    charge,
                    owner: owner.clone(),
                    referenced: false,
                });
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        self.settle_upper_victims(victims);
    }

    /// Looks up a cached footer, marking it recently used on a hit. A
    /// miss on a ghosted footer counts as upper-tier demand, same as a
    /// block: the reload it forces is three seeks of avoidable work.
    pub fn get_footer(&self, tablet_id: u64) -> Option<Arc<TabletFooter>> {
        let key = (tablet_id, FOOTER_SLOT);
        let shard = &self.upper[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        let Some(&idx) = inner.map.get(&key) else {
            self.note_upper_ghost(&mut inner, &key);
            return None;
        };
        let slot = inner.slots[idx].as_mut().expect("map points at live slot");
        match &slot.value {
            UpperValue::Footer(f) => {
                let f = f.clone();
                slot.referenced = true;
                Some(f)
            }
            UpperValue::Block { .. } => None,
        }
    }

    /// True when `tablet_id`'s footer is currently resident, without
    /// touching its reference bit (observation only).
    pub fn footer_resident(&self, tablet_id: u64) -> bool {
        let key = (tablet_id, FOOTER_SLOT);
        let shard = &self.upper[self.shard_idx(key)];
        shard.inner.lock().map.contains_key(&key)
    }

    /// Charges upper-tier evictions to their owners and demotes evicted
    /// blocks' compressed bytes into the lower tier. Called after the
    /// upper shard lock is released, so tier locks never nest.
    fn settle_upper_victims(&self, victims: Vec<Slot<UpperValue>>) {
        for victim in victims {
            match victim.value {
                UpperValue::Block { block, compressed } => {
                    TableStats::add(&victim.owner.cache_evicted_bytes, block.byte_size() as u64);
                    drop(block);
                    if let Some(c) = compressed {
                        self.insert_compressed(victim.key, c, &victim.owner);
                    }
                }
                UpperValue::Footer(_) => {
                    TableStats::add(&victim.owner.footer_evictions, 1);
                }
            }
        }
    }

    /// Admits compressed block bytes to the lower tier, evicting colder
    /// compressed entries to fit. Lower-tier evictions leave the cache
    /// for good.
    fn insert_compressed(&self, key: BlockKey, value: CompressedBlock, owner: &Arc<TableStats>) {
        let charge = value.bytes.len();
        let lower_capacity = self.lower_shard_capacity.load(Ordering::Relaxed);
        if charge > lower_capacity {
            return;
        }
        let shard = &self.lower[self.shard_idx(key)];
        let mut inner = shard.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            inner.slots[idx].as_mut().expect("live slot").referenced = true;
            return;
        }
        let mut dropped = Vec::new();
        if inner.evict_until_fits(charge, lower_capacity, self.ghost_cap(), &mut dropped) {
            inner.insert_slot(Slot {
                key,
                value,
                charge,
                owner: owner.clone(),
                referenced: false,
            });
        }
        shard.bytes.store(inner.bytes, Ordering::Relaxed);
    }

    /// Drops every cached entry of `tablet_id` — decompressed blocks,
    /// compressed blocks, and its footer (the tablet's file is being
    /// deleted). Not counted as eviction in the owner's stats.
    pub fn invalidate_tablet(&self, tablet_id: u64) {
        for shard in self.upper.iter() {
            let mut inner = shard.inner.lock();
            let keys: Vec<BlockKey> = inner
                .map
                .keys()
                .filter(|k| k.0 == tablet_id)
                .copied()
                .collect();
            for key in keys {
                inner.remove_key(&key);
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
        for shard in self.lower.iter() {
            let mut inner = shard.inner.lock();
            let keys: Vec<BlockKey> = inner
                .map
                .keys()
                .filter(|k| k.0 == tablet_id)
                .copied()
                .collect();
            for key in keys {
                inner.remove_key(&key);
            }
            shard.bytes.store(inner.bytes, Ordering::Relaxed);
        }
    }

    /// Current bytes held across both tiers (decompressed blocks with
    /// their retained compressed forms, footers, and demoted compressed
    /// blocks). Each shard's slice is enforced under its lock, so this
    /// can never exceed [`BlockCache::capacity`].
    pub fn bytes_used(&self) -> usize {
        self.decompressed_bytes_used() + self.compressed_bytes_used()
    }

    /// Current upper-tier bytes (decompressed blocks + footers).
    pub fn decompressed_bytes_used(&self) -> usize {
        self.upper
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Current lower-tier bytes (demoted compressed blocks).
    pub fn compressed_bytes_used(&self) -> usize {
        self.lower
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// The total byte budget across both tiers. Per-tier budgets divide
    /// evenly across shards, rounding *down* — so this is at most (never
    /// more than) the configured joint budget, and small budgets shrink
    /// the shard count (see [`MIN_SHARD_SLICE`]) rather than rounding a
    /// shard's slice to zero.
    pub fn capacity(&self) -> usize {
        // `shard_total` is fixed at construction, so the joint budget is
        // stable even mid-rebalance when the two tier slices are being
        // restored one after the other.
        self.shard_total * self.upper.len()
    }

    /// The upper (decompressed + footer) tier's byte budget.
    pub fn decompressed_capacity(&self) -> usize {
        self.upper_shard_capacity.load(Ordering::Relaxed) * self.upper.len()
    }

    /// The lower (compressed) tier's byte budget.
    pub fn compressed_capacity(&self) -> usize {
        self.lower_shard_capacity.load(Ordering::Relaxed) * self.lower.len()
    }

    /// True when the tier split is ghost-list driven (built with
    /// [`BlockCache::new_adaptive`]).
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The compressed tier's current share of the joint budget, in
    /// [0, 1]. For a static cache this is simply the configured split.
    pub fn split_fraction(&self) -> f64 {
        if self.shard_total == 0 {
            return 0.0;
        }
        self.lower_shard_capacity.load(Ordering::Relaxed) as f64 / self.shard_total as f64
    }

    /// Cumulative upper-tier (decompressed) ghost hits.
    pub fn ghost_hits_decompressed(&self) -> u64 {
        self.ghost_hits_decompressed.load(Ordering::Relaxed)
    }

    /// Cumulative lower-tier (compressed) ghost hits.
    pub fn ghost_hits_compressed(&self) -> u64 {
        self.ghost_hits_compressed.load(Ordering::Relaxed)
    }

    /// Number of rebalances that moved budget between the tiers.
    pub fn rebalance_count(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Retunes the tier split from the ghost-hit tallies accumulated
    /// since the last call, then trims whichever tier shrank (upper-tier
    /// victims still demote their compressed bytes downward, into the
    /// room that just opened). Moves a bounded step — between 1/64 and
    /// 1/8 of the joint budget, scaled by the demand imbalance — toward
    /// the tier with more byte-weighted would-have-hits, never pushing
    /// either tier below its 1/8 floor. Returns true when budget moved.
    ///
    /// Called from `Db::maintain`, so the split adapts at maintenance
    /// cadence without any hot-path cost beyond the ghost bookkeeping.
    pub fn rebalance(&self) -> bool {
        if !self.adaptive || self.shard_total == 0 {
            return false;
        }
        let up_demand = self.ghost_bytes_decompressed.swap(0, Ordering::Relaxed);
        let down_demand = self.ghost_bytes_compressed.swap(0, Ordering::Relaxed);
        if up_demand == down_demand {
            return false; // includes the idle case: no signal, no churn
        }
        let floor = self.shard_total / 8;
        let min_step = (self.shard_total / 64).max(1);
        let max_step = (self.shard_total / 8).max(min_step);
        let imbalance = (up_demand.abs_diff(down_demand) as usize) / self.upper.len();
        let step = imbalance.clamp(min_step, max_step);
        let upper_cap = self.upper_shard_capacity.load(Ordering::Relaxed);
        let lower_cap = self.lower_shard_capacity.load(Ordering::Relaxed);
        let (new_upper, new_lower) = if up_demand > down_demand {
            let take = step.min(lower_cap.saturating_sub(floor));
            (upper_cap + take, lower_cap - take)
        } else {
            let take = step.min(upper_cap.saturating_sub(floor));
            (upper_cap - take, lower_cap + take)
        };
        if new_upper == upper_cap {
            return false; // the loser is already at its floor
        }
        // Publish both slices before trimming; growth is harmless to see
        // early, and the shrink is enforced shard by shard below.
        self.upper_shard_capacity
            .store(new_upper, Ordering::Relaxed);
        self.lower_shard_capacity
            .store(new_lower, Ordering::Relaxed);
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        let ghost_cap = self.ghost_cap();
        if new_upper < upper_cap {
            for shard in self.upper.iter() {
                let mut victims = Vec::new();
                {
                    let mut inner = shard.inner.lock();
                    inner.evict_until_fits(0, new_upper, ghost_cap, &mut victims);
                    shard.bytes.store(inner.bytes, Ordering::Relaxed);
                }
                self.settle_upper_victims(victims);
            }
        } else {
            for shard in self.lower.iter() {
                let mut inner = shard.inner.lock();
                let mut dropped = Vec::new();
                inner.evict_until_fits(0, new_lower, ghost_cap, &mut dropped);
                shard.bytes.store(inner.bytes, Ordering::Relaxed);
            }
        }
        true
    }

    /// Number of upper-tier entries currently cached (blocks + footers).
    pub fn entry_count(&self) -> usize {
        self.upper.iter().map(|s| s.inner.lock().map.len()).sum()
    }

    /// Number of lower-tier (compressed block) entries currently cached.
    pub fn compressed_entry_count(&self) -> usize {
        self.lower.iter().map(|s| s.inner.lock().map.len()).sum()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.upper.len())
            .field("capacity", &self.capacity())
            .field("decompressed_capacity", &self.decompressed_capacity())
            .field("compressed_capacity", &self.compressed_capacity())
            .field("bytes_used", &self.bytes_used())
            .field("entries", &self.entry_count())
            .field("compressed_entries", &self.compressed_entry_count())
            .field("adaptive", &self.adaptive)
            .field("split_fraction", &self.split_fraction())
            .field("rebalances", &self.rebalance_count())
            .finish()
    }
}

/// A tablet reader's connection to the shared cache: the cache, the
/// reader's never-reused tablet id, and the owning table's stats.
#[derive(Clone)]
pub(crate) struct CacheHandle {
    pub(crate) cache: Arc<BlockCache>,
    pub(crate) tablet_id: u64,
    pub(crate) stats: Arc<TableStats>,
}

impl CacheHandle {
    /// Builds a handle with a freshly allocated tablet id.
    pub(crate) fn register(cache: Arc<BlockCache>, stats: Arc<TableStats>) -> CacheHandle {
        let tablet_id = cache.register_tablet();
        CacheHandle {
            cache,
            tablet_id,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;

    fn block_of_size(approx: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new();
        let payload = vec![0u8; approx.saturating_sub(32)];
        b.add(b"key", &payload);
        Arc::new(Block::parse(b.finish()).unwrap())
    }

    /// A stand-in compressed form, `approx` bytes long.
    fn compressed_of_size(approx: usize) -> CompressedBlock {
        CompressedBlock {
            bytes: vec![0u8; approx].into(),
            uncompressed_len: (approx * 3) as u32,
        }
    }

    fn stats() -> Arc<TableStats> {
        Arc::new(TableStats::default())
    }

    #[test]
    fn hit_returns_same_block() {
        let cache = BlockCache::new(1 << 20, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        assert!(cache.get(tid, 0).is_none());
        let b = block_of_size(1000);
        cache.insert(tid, 0, b.clone(), None, &st);
        let hit = cache.get(tid, 0).expect("cached");
        assert!(Arc::ptr_eq(&b, &hit));
        assert_eq!(cache.entry_count(), 1);
        assert_eq!(cache.bytes_used(), b.byte_size());
    }

    #[test]
    fn eviction_respects_budget_and_charges_owner() {
        let cache = BlockCache::new(10_000, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..64u32 {
            cache.insert(tid, i, block_of_size(1000), None, &st);
            assert!(cache.bytes_used() <= cache.capacity());
        }
        assert!(cache.entry_count() < 64);
        assert!(st.snapshot().cache_evicted_bytes > 0);
    }

    #[test]
    fn clock_keeps_recently_used_entries() {
        // Capacity for ~4 one-KB blocks in one shard.
        let cache = BlockCache::new(4200, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..4u32 {
            cache.insert(tid, i, block_of_size(1000), None, &st);
        }
        // Keep block 0 hot while streaming new blocks through.
        for i in 4..40u32 {
            assert!(cache.get(tid, 0).is_some(), "hot block evicted at {i}");
            cache.insert(tid, i, block_of_size(1000), None, &st);
        }
        assert!(cache.get(tid, 0).is_some());
    }

    #[test]
    fn oversize_blocks_are_not_admitted() {
        let cache = BlockCache::new(4096, 0, 4); // shard clamp: one 4 kB shard
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(100_000), None, &st);
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn small_budgets_still_cache() {
        // A budget below the requested shard count must clamp to fewer
        // shards with real capacity, not floor every shard to zero.
        let cache = BlockCache::new(4096, 0, 64);
        assert_eq!(cache.capacity(), 4096);
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(tid, 0, block_of_size(1000), None, &st);
        assert!(cache.get(tid, 0).is_some(), "small budget must still cache");
    }

    #[test]
    fn evicted_blocks_demote_to_compressed_tier() {
        // Upper fits ~2 entries (1000 decompressed + 200 compressed each);
        // lower fits all the compressed forms.
        let cache = BlockCache::new(2500, 4096, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..8u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(200)),
                &st,
            );
        }
        assert!(cache.entry_count() <= 2);
        assert!(
            cache.compressed_entry_count() > 0,
            "evictions must demote compressed bytes"
        );
        assert!(cache.bytes_used() <= cache.capacity());
        // Promote one demoted block: its compressed bytes leave the lower
        // tier (exclusive tiers) and the caller re-admits up top.
        let demoted = (0..8u32)
            .find(|&i| cache.get(tid, i).is_none())
            .expect("something was evicted");
        let before = cache.compressed_entry_count();
        let c = cache.take_compressed(tid, demoted).expect("demoted entry");
        assert_eq!(cache.compressed_entry_count(), before - 1);
        cache.insert(tid, demoted, block_of_size(1000), Some(c), &st);
        assert!(cache.get(tid, demoted).is_some());
        assert!(cache.bytes_used() <= cache.capacity());
    }

    #[test]
    fn zero_compressed_budget_discards_evictions() {
        let cache = BlockCache::new(2500, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..8u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(200)),
                &st,
            );
        }
        assert_eq!(cache.compressed_entry_count(), 0);
        assert_eq!(cache.compressed_bytes_used(), 0);
    }

    #[test]
    fn footers_cache_evict_and_count() {
        let schema = crate::schema::Schema::new(
            vec![
                crate::schema::ColumnDef::new("k", crate::value::ColumnType::I64),
                crate::schema::ColumnDef::new("ts", crate::value::ColumnType::Timestamp),
            ],
            &["k", "ts"],
        )
        .unwrap();
        let footer = |nblocks: usize| {
            Arc::new(TabletFooter {
                schema: schema.clone(),
                min_ts: 0,
                max_ts: 1,
                row_count: 10,
                bloom: None,
                format: crate::block::BlockFormat::Row,
                blocks: (0..nblocks)
                    .map(|i| crate::tablet::BlockIndexEntry {
                        offset: i as u64 * 100,
                        compressed_len: 100,
                        uncompressed_len: 300,
                        crc: None,
                        rows: 0,
                        zones: Vec::new(),
                        last_key: vec![0u8; 16],
                    })
                    .collect(),
            })
        };
        let cache = BlockCache::new(4096, 0, 1);
        let st = stats();
        let a = cache.register_tablet();
        cache.insert_footer(a, footer(4), &st);
        assert!(cache.footer_resident(a));
        assert!(cache.get_footer(a).is_some());
        assert!(cache.bytes_used() >= footer(4).approx_byte_size());
        // Flood with more footers than fit; someone gets evicted and the
        // owner is charged a footer eviction (a future 3-seek reload).
        let mut ids = vec![a];
        for _ in 0..40 {
            let t = cache.register_tablet();
            cache.insert_footer(t, footer(4), &st);
            ids.push(t);
        }
        assert!(cache.bytes_used() <= cache.capacity());
        assert!(st.snapshot().footer_evictions > 0);
        assert!(ids.iter().any(|&t| !cache.footer_resident(t)));
    }

    #[test]
    fn invalidate_tablet_removes_only_that_tablet() {
        let cache = BlockCache::new(1 << 20, 1 << 20, 2);
        let st = stats();
        let (a, b) = (cache.register_tablet(), cache.register_tablet());
        for i in 0..8u32 {
            cache.insert(a, i, block_of_size(500), Some(compressed_of_size(100)), &st);
            cache.insert(b, i, block_of_size(500), Some(compressed_of_size(100)), &st);
        }
        cache.insert_compressed((a, 100), compressed_of_size(100), &st);
        cache.insert_compressed((b, 100), compressed_of_size(100), &st);
        cache.invalidate_tablet(a);
        for i in 0..8u32 {
            assert!(cache.get(a, i).is_none());
            assert!(cache.get(b, i).is_some());
        }
        assert!(cache.take_compressed(a, 100).is_none());
        assert!(cache.take_compressed(b, 100).is_some());
        // Invalidation is not an eviction.
        assert_eq!(st.snapshot().cache_evicted_bytes, 0);
        assert_eq!(st.snapshot().footer_evictions, 0);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let cache = BlockCache::new(0, 0, 0);
        let st = stats();
        let tid = cache.register_tablet();
        cache.insert(
            tid,
            0,
            block_of_size(100),
            Some(compressed_of_size(50)),
            &st,
        );
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.compressed_entry_count(), 0);
        assert!(cache.get(tid, 0).is_none());
    }

    #[test]
    fn static_cache_keeps_no_ghosts_and_never_rebalances() {
        let cache = BlockCache::new(2500, 0, 1);
        let st = stats();
        let tid = cache.register_tablet();
        for i in 0..8u32 {
            cache.insert(tid, i, block_of_size(1000), None, &st);
        }
        // Re-read everything through the full path (upper lookup, then
        // lower); misses on evicted blocks must not register ghost hits
        // because the static cache remembers nothing.
        for i in 0..8u32 {
            if cache.get(tid, i).is_none() {
                let _ = cache.take_compressed(tid, i);
            }
        }
        assert_eq!(cache.ghost_hits_decompressed(), 0);
        assert_eq!(cache.ghost_hits_compressed(), 0);
        assert!(!cache.rebalance());
        assert_eq!(cache.rebalance_count(), 0);
    }

    #[test]
    fn ghost_votes_resolve_by_serving_tier() {
        // Adaptive, 128 kB joint budget, 1 shard; upper slice gets most.
        let cache = BlockCache::new_adaptive(128 << 10, 0.25, 1);
        assert!(cache.is_adaptive());
        let st = stats();
        let tid = cache.register_tablet();
        // Stream blocks carrying compressed forms: upper evictions demote
        // into the lower tier, whose own evictions ghost in turn. The
        // oldest keys end up in neither tier, a middle band compressed
        // only, the newest decompressed.
        for i in 0..256u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(400)),
                &st,
            );
        }
        // Re-read every key the way the tablet reader does: upper lookup
        // first, lower only on an upper miss.
        for i in 0..256u32 {
            if cache.get(tid, i).is_none() {
                let _ = cache.take_compressed(tid, i);
            }
        }
        assert!(
            cache.ghost_hits_decompressed() > 0,
            "lower-served re-reads of upper-ghosted blocks must vote upper"
        );
        assert!(
            cache.ghost_hits_compressed() > 0,
            "disk-bound re-reads of lower-ghosted blocks must vote lower"
        );
        // Votes consume their ghost entry: repeating the oldest key's
        // full miss does not vote again.
        let upper_votes = cache.ghost_hits_decompressed();
        let lower_votes = cache.ghost_hits_compressed();
        assert!(cache.get(tid, 0).is_none());
        assert!(cache.take_compressed(tid, 0).is_none());
        assert_eq!(cache.ghost_hits_decompressed(), upper_votes);
        assert_eq!(cache.ghost_hits_compressed(), lower_votes);
    }

    #[test]
    fn rebalance_moves_budget_toward_demand_within_floors() {
        let cache = BlockCache::new_adaptive(256 << 10, 0.5, 1);
        let joint = cache.capacity();
        let st = stats();
        let tid = cache.register_tablet();
        // One-sided upper demand: every block's compressed form is small
        // enough that the lower tier holds all demotions (so nothing ever
        // ghosts there), while re-reads served compressed vote upper.
        let press = |cache: &BlockCache| {
            for i in 0..512u32 {
                cache.insert(
                    tid,
                    i,
                    block_of_size(1000),
                    Some(compressed_of_size(200)),
                    &st,
                );
            }
            for i in 0..512u32 {
                if cache.get(tid, i).is_none() {
                    let _ = cache.take_compressed(tid, i);
                }
            }
        };
        press(&cache);
        assert!(cache.ghost_hits_decompressed() > 0);
        assert_eq!(cache.ghost_hits_compressed(), 0);
        let before = cache.decompressed_capacity();
        assert!(cache.rebalance(), "one-sided demand must move budget");
        assert!(cache.decompressed_capacity() > before);
        assert_eq!(
            cache.decompressed_capacity() + cache.compressed_capacity(),
            joint,
            "joint budget is invariant"
        );
        assert_eq!(cache.rebalance_count(), 1);
        // No new signal since: the next rebalance is a no-op.
        assert!(!cache.rebalance());
        // Keep pressing one-sided demand; the split converges at the
        // loser's floor instead of starving it to zero.
        for _ in 0..64 {
            press(&cache);
            cache.rebalance();
        }
        let floor = joint / 8;
        assert!(cache.compressed_capacity() >= floor);
        assert!(cache.bytes_used() <= cache.capacity());
    }

    #[test]
    fn rebalance_shrinking_upper_demotes_into_lower() {
        let cache = BlockCache::new_adaptive(256 << 10, 0.25, 1);
        let st = stats();
        let tid = cache.register_tablet();
        // Pin a resident working set in the upper tier (with compressed
        // forms, so a later trim has something to demote). It fits the
        // initial upper slice, so it generates no ghost traffic itself.
        for i in 0..64u32 {
            cache.insert(
                tid,
                i,
                block_of_size(1000),
                Some(compressed_of_size(400)),
                &st,
            );
        }
        let upper_used_before = cache.decompressed_bytes_used();
        // One-sided lower demand: churn compressed-only entries through
        // the lower tier until repeated rebalances shrink the upper slice
        // below its resident bytes.
        for _ in 0..6 {
            for i in 0..512u32 {
                cache.insert_compressed((tid, 1_000 + i), compressed_of_size(400), &st);
            }
            for i in 0..512u32 {
                let _ = cache.take_compressed(tid, 1_000 + i);
            }
            cache.rebalance();
        }
        assert!(cache.ghost_hits_compressed() > 0);
        assert!(cache.rebalance_count() > 0);
        assert!(
            cache.decompressed_capacity() < upper_used_before,
            "lower demand must shrink the upper slice below its old residency"
        );
        // The trim demoted pinned blocks' compressed forms down rather
        // than dropping them.
        assert!(
            (0..64u32).any(|i| cache.take_compressed(tid, i).is_some()),
            "shrinking the upper tier must demote evicted blocks' compressed forms"
        );
        assert!(cache.decompressed_bytes_used() <= cache.decompressed_capacity());
        assert!(cache.bytes_used() <= cache.capacity());
    }

    #[test]
    fn adaptive_split_clamps_to_tier_floors() {
        let cache = BlockCache::new_adaptive(256 << 10, 0.0, 1);
        let joint = cache.capacity();
        assert!(
            cache.compressed_capacity() >= joint / 8,
            "a zero initial fraction must still leave the lower tier its floor slice"
        );
        let cache = BlockCache::new_adaptive(256 << 10, 1.0, 1);
        assert!(cache.decompressed_capacity() >= joint / 8);
    }

    #[test]
    fn concurrent_inserts_never_exceed_budget() {
        let cache = Arc::new(BlockCache::new(64 << 10, 16 << 10, 4));
        let st = stats();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = cache.clone();
            let st = st.clone();
            handles.push(std::thread::spawn(move || {
                let tid = cache.register_tablet();
                for i in 0..200u32 {
                    cache.insert(
                        tid,
                        i,
                        block_of_size(1000),
                        Some(compressed_of_size(250)),
                        &st,
                    );
                    let _ = cache.get(tid, i.wrapping_sub(t as u32));
                    assert!(cache.bytes_used() <= cache.capacity());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.bytes_used() <= cache.capacity());
    }
}
